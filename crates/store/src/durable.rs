//! The durable store: a segmented write-ahead log implementing
//! [`srm::Persistence`].
//!
//! # Invariants
//!
//! * **Append-only.** A name is written at most once; SRM's "the name
//!   always refers to the same data" means the log never needs updates.
//! * **Only the tail is volatile.** Segment rotation syncs the outgoing
//!   segment, so a crash can lose at most the unsynced suffix of the
//!   newest segment — bounded by the [`FsyncPolicy`]. A rotation whose
//!   sync fails is abandoned (the append errors and the segment stays
//!   the tail for retry) rather than promoting unsynced records to
//!   durable.
//! * **Snapshot = compaction.** A snapshot rewrites a [`Catalog`] marker
//!   plus every live ADU record into a fresh synced segment, then deletes
//!   all older segments. Replay order is segment order, so a rehydrate
//!   after compaction sees the catalog first and the (identical) records
//!   after it.
//! * **Torn tails self-heal.** Rehydrate walks each segment record by
//!   record; at the first length/CRC violation it truncates that segment
//!   to the valid prefix and stops scanning it. Everything before the
//!   tear — and every other segment — survives.
//!
//! [`Catalog`]: crate::record::Record::Catalog

use std::collections::BTreeMap;
use std::time::Instant;

use bytes::Bytes;
use obs::metrics::{Histo, MetricsRegistry};
use srm::{AduName, Persistence, PersistenceStats, Rehydrated};

use crate::backend::Backend;
use crate::record::{Loc, Record};

/// When appended records are forced onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: zero loss on crash, slowest.
    Always,
    /// Sync after every `n` appends (and on rotation/flush): a crash
    /// loses at most `n - 1` records.
    EveryN(u64),
    /// Sync only on rotation, snapshot, and clean shutdown.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI grammar: `always`, `never`, or `every=N`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every=").map(str::parse) {
                Some(Ok(n)) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "bad fsync policy '{other}' (want always, never, or every=N)"
                )),
            },
        }
    }
}

/// Tuning knobs for the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the tail exceeds this many bytes.
    pub segment_bytes: u64,
    /// Snapshot + compact after this many appends; `None` disables.
    pub snapshot_every: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: FsyncPolicy::EveryN(8),
            segment_bytes: 1 << 20,
            snapshot_every: Some(4096),
        }
    }
}

/// Latency probes for the store's four slow paths. Only the wall-clock
/// runtime attaches these (the simulator must stay deterministic, and
/// `Instant::now` is never read unless probes are present).
#[derive(Debug, Clone)]
pub struct StoreProbes {
    /// Seconds per WAL append (encode + backend write, sync excluded).
    pub append: Histo,
    /// Seconds per physical sync.
    pub fsync: Histo,
    /// Seconds per snapshot/compaction pass.
    pub snapshot: Histo,
    /// Seconds per rehydrate replay.
    pub rehydrate: Histo,
}

impl StoreProbes {
    /// Resolve the four histograms from a registry under `store.*`.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        StoreProbes {
            append: reg.histogram("store.append_s"),
            fsync: reg.histogram("store.fsync_s"),
            snapshot: reg.histogram("store.snapshot_s"),
            rehydrate: reg.histogram("store.rehydrate_s"),
        }
    }
}

/// Segmented write-ahead log of named ADUs. See the module docs for the
/// invariants; see [`srm::Persistence`] for the contract it fulfills.
#[derive(Debug)]
pub struct DurableStore {
    backend: Box<dyn Backend>,
    cfg: StoreConfig,
    /// Live records: name → where its record starts.
    index: BTreeMap<AduName, Loc>,
    /// Active segment id (`None` until the first append or rehydrate).
    tail: Option<u64>,
    tail_bytes: u64,
    unsynced: u64,
    since_snapshot: u64,
    /// The temporally last name appended (or recovered) — what the member
    /// was working on. Survives compaction via the [`Catalog`] record.
    ///
    /// [`Catalog`]: crate::record::Record::Catalog
    last_appended: Option<AduName>,
    stats: PersistenceStats,
    probes: Option<StoreProbes>,
    /// Most recently read segment, to serve clustered disk fetches
    /// without re-reading (invalidated by compaction/crash).
    read_cache: Option<(u64, Vec<u8>)>,
    scratch: Vec<u8>,
}

impl DurableStore {
    /// A store over `backend` with `cfg`. Call [`srm::AduStore::rehydrate`]
    /// (or [`srm::agent::SrmAgent::attach_durable_store`], which does) to
    /// replay existing contents before use.
    pub fn new(backend: Box<dyn Backend>, cfg: StoreConfig) -> Self {
        DurableStore {
            backend,
            cfg,
            index: BTreeMap::new(),
            tail: None,
            tail_bytes: 0,
            unsynced: 0,
            since_snapshot: 0,
            last_appended: None,
            stats: PersistenceStats::default(),
            probes: None,
            read_cache: None,
            scratch: Vec::new(),
        }
    }

    /// Attach latency probes (wall-clock runtime only).
    pub fn set_probes(&mut self, probes: StoreProbes) {
        self.probes = Some(probes);
    }

    /// Start timing iff probes are attached.
    fn t0(&self) -> Option<Instant> {
        self.probes.as_ref().map(|_| Instant::now())
    }

    fn observe(&self, t0: Option<Instant>, pick: impl Fn(&StoreProbes) -> &Histo) {
        if let (Some(p), Some(t0)) = (&self.probes, t0) {
            pick(p).record(t0.elapsed().as_secs_f64());
        }
    }

    fn do_sync(&mut self) {
        let Some(tail) = self.tail else { return };
        let t0 = self.t0();
        if self.backend.sync(tail).is_err() {
            self.stats.io_errors += 1;
            return;
        }
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        self.observe(t0, |p| &p.fsync);
    }

    /// Ensure there is a tail segment with room for `need` more bytes,
    /// rotating (sync old, create next) when full. Returns the tail id.
    fn tail_for(&mut self, need: u64) -> std::io::Result<u64> {
        match self.tail {
            Some(id) if self.tail_bytes == 0 || self.tail_bytes + need <= self.cfg.segment_bytes => {
                Ok(id)
            }
            Some(id) => {
                // Rotation syncs the outgoing segment: everything but the
                // tail is always durable. If that sync fails the rotation
                // is abandoned — the segment stays the tail with
                // `unsynced` intact, so flush() or the next append retries
                // instead of silently promoting unsynced records to
                // durable.
                if self.backend.sync(id).is_err() {
                    // The caller counts the io_error when this propagates.
                    return Err(std::io::Error::other("segment rotation sync failed"));
                }
                self.stats.fsyncs += 1;
                self.unsynced = 0;
                let next = id + 1;
                self.backend.create_segment(next)?;
                self.tail = Some(next);
                self.tail_bytes = 0;
                self.stats.segments += 1;
                Ok(next)
            }
            None => {
                self.backend.create_segment(1)?;
                self.tail = Some(1);
                self.tail_bytes = 0;
                self.stats.segments += 1;
                Ok(1)
            }
        }
    }

    /// Read a segment through the one-entry cache.
    fn segment_bytes(&mut self, id: u64) -> std::io::Result<&[u8]> {
        let stale = self.read_cache.as_ref().map(|(c, _)| *c) != Some(id);
        if stale {
            let buf = self.backend.read_segment(id)?;
            self.read_cache = Some((id, buf));
        }
        Ok(&self.read_cache.as_ref().expect("just cached").1)
    }

    /// Decode the ADU record for `name` at `loc`, refreshing the cache
    /// once if the cached copy predates the record.
    fn read_at(&mut self, name: &AduName, loc: Loc) -> Option<Bytes> {
        for refresh in [false, true] {
            if refresh {
                self.read_cache = None;
            }
            let Ok(buf) = self.segment_bytes(loc.segment) else {
                self.stats.io_errors += 1;
                return None;
            };
            if let Ok(Some((Record::Adu { name: n, payload }, _))) =
                Record::decode_at(buf, loc.offset as usize)
            {
                if n == *name {
                    return Some(payload);
                }
            }
        }
        None
    }

    /// Snapshot + compact: rewrite a catalog marker and every live record
    /// into a fresh synced segment, then delete all older segments.
    pub fn snapshot(&mut self) {
        let Some(tail) = self.tail else { return };
        let t0 = self.t0();
        // Materialize live records (grouped by segment via the cache).
        let entries: Vec<(AduName, Loc)> = self.index.iter().map(|(n, l)| (*n, *l)).collect();
        let mut live: Vec<(AduName, Bytes)> = Vec::with_capacity(entries.len());
        for (name, loc) in entries {
            if let Some(payload) = self.read_at(&name, loc) {
                live.push((name, payload));
            }
        }
        let new_id = tail + 1;
        let mut buf = Vec::new();
        // The rewrite below is in name order; the catalog marker carries
        // the temporal "last appended" so replay can still restore it.
        Record::Catalog { live: live.len() as u64, last: self.last_appended }
            .encode_into(&mut buf);
        let mut new_index = BTreeMap::new();
        for (name, payload) in live {
            let offset = buf.len() as u64;
            Record::Adu { name, payload }.encode_into(&mut buf);
            new_index.insert(name, Loc { segment: new_id, offset });
        }
        let old: Vec<u64> = self.backend.list_segments().unwrap_or_default();
        let written = self.backend.create_segment(new_id).is_ok()
            && self.backend.append(new_id, &buf).is_ok()
            && self.backend.sync(new_id).is_ok();
        if !written {
            // Leave the old segments alone; the log is intact, just
            // uncompacted.
            self.stats.io_errors += 1;
            let _ = self.backend.remove_segment(new_id);
            self.since_snapshot = 0;
            return;
        }
        for id in old.into_iter().filter(|id| *id != new_id) {
            if self.backend.remove_segment(id).is_err() {
                self.stats.io_errors += 1;
            }
        }
        self.index = new_index;
        self.tail = Some(new_id);
        self.tail_bytes = buf.len() as u64;
        self.unsynced = 0;
        self.since_snapshot = 0;
        self.read_cache = None;
        self.stats.snapshots += 1;
        self.stats.fsyncs += 1;
        self.stats.segments = 1;
        self.observe(t0, |p| &p.snapshot);
    }

    /// The tuning knobs this store runs with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }
}

impl Persistence for DurableStore {
    fn persist(&mut self, name: AduName, payload: &Bytes) -> bool {
        if self.index.contains_key(&name) {
            return true; // already durable; the name refers to the same data
        }
        let t0 = self.t0();
        self.scratch.clear();
        let rec = Record::Adu { name, payload: payload.clone() };
        let len = rec.encode_into(&mut self.scratch) as u64;
        let Ok(tail) = self.tail_for(len) else {
            self.stats.io_errors += 1;
            return false;
        };
        let offset = self.tail_bytes;
        if self.backend.append(tail, &self.scratch).is_err() {
            // A partial append leaves a torn tail; the CRC framing makes
            // the next rehydrate cut it off cleanly.
            self.stats.io_errors += 1;
            return false;
        }
        self.index.insert(name, Loc { segment: tail, offset });
        self.tail_bytes += len;
        self.last_appended = Some(name);
        self.stats.appends += 1;
        self.stats.bytes_appended += len;
        self.stats.live_records += 1;
        self.observe(t0, |p| &p.append);
        match self.cfg.fsync {
            FsyncPolicy::Always => self.do_sync(),
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.do_sync();
                }
            }
            FsyncPolicy::Never => self.unsynced += 1,
        }
        self.since_snapshot += 1;
        if self.cfg.snapshot_every.is_some_and(|every| self.since_snapshot >= every) {
            self.snapshot();
        }
        true
    }

    fn read(&mut self, name: &AduName) -> Option<Bytes> {
        let loc = *self.index.get(name)?;
        let payload = self.read_at(name, loc)?;
        self.stats.reads += 1;
        Some(payload)
    }

    fn flush(&mut self) {
        if self.unsynced > 0 {
            self.do_sync();
        }
    }

    fn crash(&mut self) {
        self.backend.drop_volatile();
        self.index.clear();
        self.read_cache = None;
        self.tail = None;
        self.tail_bytes = 0;
        self.unsynced = 0;
        self.since_snapshot = 0;
        self.last_appended = None;
        self.stats.live_records = 0;
        self.stats.segments = 0;
    }

    fn rehydrate(&mut self) -> Rehydrated {
        let t0 = self.t0();
        self.index.clear();
        self.read_cache = None;
        let mut truncated = 0u64;
        let ids = match self.backend.list_segments() {
            Ok(ids) => ids,
            Err(_) => {
                self.stats.io_errors += 1;
                Vec::new()
            }
        };
        let mut last_len = 0u64;
        let mut last_appended = None;
        let mut tail_ok = true;
        for &id in &ids {
            let buf = match self.backend.read_segment(id) {
                Ok(b) => b,
                Err(_) => {
                    self.stats.io_errors += 1;
                    tail_ok = false;
                    continue;
                }
            };
            tail_ok = true;
            let mut off = 0usize;
            // Records rewritten by compaction sit in name order, not
            // append order; the catalog marker says how many follow it
            // (excluded from last-appended tracking) and carries the
            // pre-snapshot temporal value itself.
            let mut compacted = 0u64;
            loop {
                match Record::decode_at(&buf, off) {
                    Ok(None) => break,
                    Ok(Some((Record::Adu { name, .. }, next))) => {
                        // First record wins: a name refers to one payload.
                        self.index
                            .entry(name)
                            .or_insert(Loc { segment: id, offset: off as u64 });
                        if compacted > 0 {
                            compacted -= 1;
                        } else {
                            // Log order is temporal outside compacted
                            // runs: remember what the member was last
                            // working on.
                            last_appended = Some(name);
                        }
                        off = next;
                    }
                    Ok(Some((Record::Catalog { live, last }, next))) => {
                        compacted = live;
                        if last.is_some() {
                            last_appended = last;
                        }
                        off = next;
                    }
                    Err(at) => {
                        // Torn or corrupt: keep the valid prefix, drop the
                        // rest of this segment.
                        truncated += (buf.len() - at) as u64;
                        if self.backend.truncate_segment(id, at as u64).is_err() {
                            self.stats.io_errors += 1;
                        }
                        off = at;
                        break;
                    }
                }
            }
            last_len = off as u64;
        }
        self.tail = ids.last().copied();
        // An unreadable tail segment has an unknown append position: mark
        // it full so the next append rotates to a fresh segment instead of
        // recording offsets into bytes we cannot see.
        self.tail_bytes = if tail_ok { last_len } else { self.cfg.segment_bytes };
        self.last_appended = last_appended;
        self.unsynced = 0;
        self.since_snapshot = 0;
        self.stats.segments = ids.len() as u64;
        self.stats.live_records = self.index.len() as u64;
        self.observe(t0, |p| &p.rehydrate);
        Rehydrated {
            names: self.index.keys().copied().collect(),
            truncated_bytes: truncated,
            segments: ids.len() as u64,
            last_appended,
        }
    }

    fn stats(&self) -> PersistenceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, MemBackend};
    use srm::{PageId, SeqNo, SourceId};
    use std::io;
    use std::sync::{Arc, Mutex};

    fn name(seq: u64) -> AduName {
        AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(seq))
    }

    fn payload(seq: u64) -> Bytes {
        Bytes::from(format!("payload-{seq}").into_bytes())
    }

    fn store(disk: &MemBackend, cfg: StoreConfig) -> DurableStore {
        DurableStore::new(Box::new(disk.clone()), cfg)
    }

    /// I/O fault injection around a [`MemBackend`]: fail the next N syncs
    /// and/or make one segment unreadable.
    #[derive(Debug, Clone, Default)]
    struct FaultState {
        fail_syncs: u64,
        unreadable: Option<u64>,
    }

    #[derive(Debug, Clone)]
    struct FaultBackend {
        inner: MemBackend,
        faults: Arc<Mutex<FaultState>>,
    }

    impl FaultBackend {
        fn new(inner: MemBackend) -> Self {
            FaultBackend { inner, faults: Arc::default() }
        }
    }

    impl Backend for FaultBackend {
        fn list_segments(&mut self) -> io::Result<Vec<u64>> {
            self.inner.list_segments()
        }
        fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
            if self.faults.lock().expect("faults").unreadable == Some(id) {
                return Err(io::Error::other("injected read failure"));
            }
            self.inner.read_segment(id)
        }
        fn create_segment(&mut self, id: u64) -> io::Result<()> {
            self.inner.create_segment(id)
        }
        fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
            self.inner.append(id, data)
        }
        fn sync(&mut self, id: u64) -> io::Result<()> {
            {
                let mut f = self.faults.lock().expect("faults");
                if f.fail_syncs > 0 {
                    f.fail_syncs -= 1;
                    return Err(io::Error::other("injected sync failure"));
                }
            }
            self.inner.sync(id)
        }
        fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
            self.inner.truncate_segment(id, len)
        }
        fn remove_segment(&mut self, id: u64) -> io::Result<()> {
            self.inner.remove_segment(id)
        }
        fn drop_volatile(&mut self) {
            self.inner.drop_volatile()
        }
    }

    #[test]
    fn append_reopen_replay() {
        let disk = MemBackend::new();
        let mut s = store(&disk, StoreConfig { fsync: FsyncPolicy::Always, ..Default::default() });
        for seq in 0..10 {
            assert!(s.persist(name(seq), &payload(seq)));
        }
        drop(s);
        let mut s2 = store(&disk, StoreConfig::default());
        let r = s2.rehydrate();
        assert_eq!(r.names.len(), 10);
        assert_eq!(r.truncated_bytes, 0);
        for seq in 0..10 {
            assert_eq!(s2.read(&name(seq)).unwrap(), payload(seq));
        }
    }

    #[test]
    fn crash_drops_only_unsynced_tail() {
        let disk = MemBackend::new();
        let mut s = store(
            &disk,
            StoreConfig { fsync: FsyncPolicy::EveryN(4), snapshot_every: None, ..Default::default() },
        );
        // 10 appends with sync-every-4: records 0..8 synced, 8..10 volatile.
        for seq in 0..10 {
            s.persist(name(seq), &payload(seq));
        }
        s.crash();
        let r = s.rehydrate();
        assert_eq!(r.names.len(), 8, "zero loss up to the last fsync");
        assert!(s.read(&name(7)).is_some());
        assert!(s.read(&name(8)).is_none());
        // The name can be persisted again after the crash.
        assert!(s.persist(name(8), &payload(8)));
        assert_eq!(s.read(&name(8)).unwrap(), payload(8));
    }

    #[test]
    fn rotation_keeps_everything_but_tail_synced() {
        let disk = MemBackend::new();
        let mut s = store(
            &disk,
            StoreConfig {
                fsync: FsyncPolicy::Never,
                segment_bytes: 64, // force rotation every couple of records
                snapshot_every: None,
            },
        );
        for seq in 0..20 {
            s.persist(name(seq), &payload(seq));
        }
        assert!(s.stats().segments > 1, "rotation happened");
        s.crash();
        let r = s.rehydrate();
        // fsync=never: only rotation synced; everything except the records
        // still sitting in the final segment's unsynced tail survives.
        assert!(r.names.len() >= 18, "lost {} records", 20 - r.names.len());
        assert!(r.names.len() < 20, "the unsynced tail must be gone");
    }

    #[test]
    fn snapshot_compacts_to_one_segment_and_preserves_reads() {
        let disk = MemBackend::new();
        let mut s = store(
            &disk,
            StoreConfig {
                fsync: FsyncPolicy::Always,
                segment_bytes: 64,
                snapshot_every: Some(15),
            },
        );
        for seq in 0..20 {
            s.persist(name(seq), &payload(seq));
        }
        let st = s.stats();
        assert_eq!(st.snapshots, 1);
        assert_eq!(st.live_records, 20);
        for seq in 0..20 {
            assert_eq!(s.read(&name(seq)).unwrap(), payload(seq), "seq {seq}");
        }
        // Replay after compaction sees the same world.
        s.crash();
        let r = s.rehydrate();
        assert_eq!(r.names.len(), 20);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let disk = MemBackend::new();
        let mut s = store(&disk, StoreConfig { fsync: FsyncPolicy::Always, ..Default::default() });
        for seq in 0..5 {
            s.persist(name(seq), &payload(seq));
        }
        // Tear 3 bytes off the durable image: record 4 becomes partial.
        let seg = disk.last_segment().unwrap();
        disk.tear_tail(seg, 3);
        s.crash();
        let r = s.rehydrate();
        assert_eq!(r.names.len(), 4);
        assert!(r.truncated_bytes > 0);
        // The log keeps working after the truncation: the lost record can
        // be re-persisted (e.g. recovered from the group) and now survives.
        assert!(s.persist(name(4), &payload(4)));
        s.crash();
        assert_eq!(s.rehydrate().names.len(), 5, "re-append is durable");
    }

    #[test]
    fn bit_flip_truncates_from_corrupt_record() {
        let disk = MemBackend::new();
        let mut s = store(&disk, StoreConfig { fsync: FsyncPolicy::Always, ..Default::default() });
        let mut offsets = Vec::new();
        for seq in 0..5 {
            offsets.push(s.stats().bytes_appended);
            s.persist(name(seq), &payload(seq));
        }
        // Flip a bit inside record 3's body.
        let seg = disk.last_segment().unwrap();
        disk.corrupt_byte(seg, offsets[3] as usize + 12, 0x20);
        s.crash();
        let r = s.rehydrate();
        assert_eq!(r.names.len(), 3, "records 0..3 survive, 3.. are cut");
        assert!(r.truncated_bytes > 0);
    }

    #[test]
    fn read_through_stale_cache_after_appends() {
        let disk = MemBackend::new();
        let mut s = store(
            &disk,
            StoreConfig { fsync: FsyncPolicy::Never, snapshot_every: None, ..Default::default() },
        );
        s.persist(name(0), &payload(0));
        // Warm the read cache while the tail segment holds one record.
        assert_eq!(s.read(&name(0)).unwrap(), payload(0));
        s.persist(name(1), &payload(1));
        s.persist(name(2), &payload(2));
        // Record 2's offset is past the cached copy; the refresh retry
        // must serve it (this used to panic on an out-of-range slice).
        assert_eq!(s.read(&name(2)).unwrap(), payload(2));
    }

    #[test]
    fn rotation_sync_failure_keeps_tail_retrying() {
        let disk = MemBackend::new();
        let fb = FaultBackend::new(disk.clone());
        let faults = fb.faults.clone();
        let mut s = DurableStore::new(
            Box::new(fb),
            StoreConfig { fsync: FsyncPolicy::Never, segment_bytes: 64, snapshot_every: None },
        );
        s.persist(name(0), &payload(0));
        // The next persist must rotate; fail the rotation's sync. The
        // append is rejected rather than pretending record 0 is durable.
        faults.lock().expect("faults").fail_syncs = 1;
        assert!(!s.persist(name(1), &payload(1)));
        assert_eq!(s.stats().io_errors, 1);
        // Once the device recovers, the retried rotation syncs record 0
        // for real before the tail moves on.
        assert!(s.persist(name(1), &payload(1)));
        s.crash();
        let r = s.rehydrate();
        assert!(r.names.contains(&name(0)), "rotated-out record survived the crash");
    }

    #[test]
    fn unreadable_tail_segment_rotates_instead_of_blind_appends() {
        let disk = MemBackend::new();
        let fb = FaultBackend::new(disk.clone());
        let faults = fb.faults.clone();
        let mut s = DurableStore::new(
            Box::new(fb),
            StoreConfig { fsync: FsyncPolicy::Always, segment_bytes: 100, snapshot_every: None },
        );
        let big = Bytes::from(vec![7u8; 60]);
        s.persist(name(0), &payload(0)); // 46 B record → segment 1
        s.persist(name(1), &big); // 97 B record → rotates to segment 2
        let tail = disk.last_segment().unwrap();
        assert_eq!(tail, 2);
        s.crash();
        faults.lock().expect("faults").unreadable = Some(tail);
        let r = s.rehydrate();
        assert_eq!(r.names.len(), 1, "the unreadable tail's record is missing for now");
        // The tail's real append position is unknown (97 B, vs the 46 B
        // the previous segment would suggest): the next append must go to
        // a fresh segment, not a made-up offset.
        s.persist(name(2), &payload(2));
        assert_eq!(s.read(&name(2)).unwrap(), payload(2));
        faults.lock().expect("faults").unreadable = None;
        s.crash();
        s.rehydrate();
        assert_eq!(s.read(&name(2)).unwrap(), payload(2), "offset matches the real file");
        assert_eq!(s.read(&name(1)).unwrap(), big, "tail records reappear once readable");
    }

    #[test]
    fn compaction_preserves_temporal_last_appended() {
        let disk = MemBackend::new();
        let mut s = store(
            &disk,
            StoreConfig { fsync: FsyncPolicy::Always, snapshot_every: Some(3), ..Default::default() },
        );
        // Append in descending name order so temporal order and the
        // compacted rewrite's name order disagree.
        for seq in [5u64, 4, 3] {
            s.persist(name(seq), &payload(seq));
        }
        assert_eq!(s.stats().snapshots, 1);
        s.crash();
        let r = s.rehydrate();
        assert_eq!(r.last_appended, Some(name(3)), "temporally last, not highest name");
        // Appends after the snapshot resume temporal tracking.
        s.persist(name(1), &payload(1));
        s.crash();
        assert_eq!(s.rehydrate().last_appended, Some(name(1)));
    }

    #[test]
    fn duplicate_persist_is_idempotent() {
        let disk = MemBackend::new();
        let mut s = store(&disk, StoreConfig { fsync: FsyncPolicy::Always, ..Default::default() });
        assert!(s.persist(name(0), &payload(0)));
        let appended = s.stats().bytes_appended;
        assert!(s.persist(name(0), &payload(0)));
        assert_eq!(s.stats().bytes_appended, appended, "no second record");
        assert_eq!(s.stats().live_records, 1);
    }
}

//! # srm-store — durable ADU storage beneath `srm::store`
//!
//! SRM's core bet is that *persistently named* ADUs let any member
//! reconstruct and re-serve session state from any point (paper §II).
//! This crate makes the name literal: a segmented, CRC-framed write-ahead
//! log of `(source, page, seq) → payload` records that survives the
//! process, so
//!
//! * a killed `srm-node` **rehydrates** on restart and rejoins as a
//!   repair-capable member instead of a blank late joiner,
//! * repair requests older than the in-memory window are served **from
//!   disk** ([`srm::AduStore::fetch`] reads through the cache), and
//! * resident memory stops growing with session length — old payloads
//!   spill to the log and stay recoverable.
//!
//! The pieces:
//!
//! * [`record`] — `[u32 len][u32 crc32][u8 kind][body]` framing; a torn or
//!   bit-flipped record cleanly ends the valid prefix.
//! * [`backend`] — segment storage as a trait: [`DirBackend`] (real files,
//!   `srm-node --store DIR`) and [`MemBackend`] (deterministic in-memory
//!   disk with crash/tear/corrupt hooks for the fault-injected simulator).
//! * [`durable`] — [`DurableStore`], the WAL itself: append, fsync policy,
//!   segment rotation, snapshot-as-compaction, torn-tail truncation, and
//!   replay. It implements [`srm::Persistence`], the seam `srm::AduStore`
//!   reads and writes through.
//!
//! Durability is **off by default** everywhere: no simulator scenario,
//! golden trace, figure CSV, or benchmark changes unless a backend is
//! explicitly attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod crc;
pub mod durable;
pub mod record;

pub use backend::{Backend, DirBackend, MemBackend};
pub use crc::crc32;
pub use durable::{DurableStore, FsyncPolicy, StoreConfig, StoreProbes};

//! WAL record framing: length-prefixed, CRC-guarded records.
//!
//! On-disk layout of one record (all integers little-endian):
//!
//! ```text
//! [u32 len][u32 crc32][u8 kind][body: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the body; `crc32` covers the same span.
//! A reader that hits a record whose length runs past the segment end, or
//! whose checksum does not match, treats everything from that offset on as
//! a torn tail — appends are atomic only up to what the OS actually made
//! it to disk, so the last record of a crashed process may be partial.
//!
//! Record kinds:
//!
//! * [`Record::Adu`] — one named payload: `source u64 | page.creator u64 |
//!   page.number u32 | seq u64 | payload`.
//! * [`Record::Catalog`] — snapshot marker heading a compacted segment,
//!   carrying the count of live ADU records re-written after it and,
//!   optionally, the temporally last-appended name at snapshot time
//!   (compaction rewrites records in name order, so log position alone
//!   can no longer tell).

use crate::crc::crc32;
use bytes::Bytes;
use srm::{AduName, PageId, SeqNo, SourceId};

/// Framing overhead before the kind byte: `len` + `crc`.
pub const HEADER_BYTES: usize = 8;
/// Fixed part of an ADU body: source, page creator, page number, seq.
const ADU_FIXED: usize = 8 + 8 + 4 + 8;

/// Record kind tags.
const KIND_ADU: u8 = 1;
const KIND_CATALOG: u8 = 2;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A named application data unit.
    Adu {
        /// The ADU's persistent name.
        name: AduName,
        /// Its payload.
        payload: Bytes,
    },
    /// Snapshot marker: this segment starts with a compacted catalog of
    /// `live` ADU records.
    Catalog {
        /// Number of live ADU records re-written after this marker.
        live: u64,
        /// The temporally last-appended name when the snapshot was taken.
        /// The rewritten records that follow are in name order, so replay
        /// reads the pre-snapshot "what was the member working on" from
        /// here instead of from log position.
        last: Option<AduName>,
    },
}

fn encode_name(name: &AduName, out: &mut Vec<u8>) {
    out.extend_from_slice(&name.source.0.to_le_bytes());
    out.extend_from_slice(&name.page.creator.0.to_le_bytes());
    out.extend_from_slice(&name.page.number.to_le_bytes());
    out.extend_from_slice(&name.seq.0.to_le_bytes());
}

fn decode_name(body: &[u8]) -> AduName {
    let source = SourceId(u64::from_le_bytes(body[0..8].try_into().expect("8")));
    let creator = SourceId(u64::from_le_bytes(body[8..16].try_into().expect("8")));
    let number = u32::from_le_bytes(body[16..20].try_into().expect("4"));
    let seq = SeqNo(u64::from_le_bytes(body[20..28].try_into().expect("8")));
    AduName::new(source, PageId::new(creator, number), seq)
}

impl Record {
    /// Serialize into `out`, returning the encoded length.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match self {
            Record::Adu { name, payload } => {
                let len = 1 + ADU_FIXED + payload.len();
                out.extend_from_slice(&(len as u32).to_le_bytes());
                out.extend_from_slice(&[0u8; 4]); // crc placeholder
                out.push(KIND_ADU);
                encode_name(name, out);
                out.extend_from_slice(payload);
            }
            Record::Catalog { live, last } => {
                let len = 1 + 8 + if last.is_some() { ADU_FIXED } else { 0 };
                out.extend_from_slice(&(len as u32).to_le_bytes());
                out.extend_from_slice(&[0u8; 4]);
                out.push(KIND_CATALOG);
                out.extend_from_slice(&live.to_le_bytes());
                if let Some(name) = last {
                    encode_name(name, out);
                }
            }
        }
        let crc = crc32(&out[start + HEADER_BYTES..]);
        out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        out.len() - start
    }

    /// Decode the record starting at `buf[offset..]`.
    ///
    /// `Ok(Some((record, next_offset)))` on success, `Ok(None)` at or past
    /// the end of the buffer (a caller holding a stale copy of a growing
    /// segment may ask for an offset beyond what it has — that is "no
    /// record here", not a tear), `Err(offset)` when the bytes at `offset`
    /// are torn or corrupt (the valid prefix ends there).
    pub fn decode_at(buf: &[u8], offset: usize) -> Result<Option<(Record, usize)>, usize> {
        if offset >= buf.len() {
            return Ok(None);
        }
        let rest = &buf[offset..];
        if rest.len() < HEADER_BYTES {
            return Err(offset); // torn header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || rest.len() < HEADER_BYTES + len {
            return Err(offset); // torn body (or zeroed preallocation)
        }
        let span = &rest[HEADER_BYTES..HEADER_BYTES + len];
        if crc32(span) != crc {
            return Err(offset); // bit flip
        }
        let body = &span[1..];
        let rec = match span[0] {
            KIND_ADU if body.len() >= ADU_FIXED => Record::Adu {
                name: decode_name(body),
                payload: Bytes::copy_from_slice(&body[ADU_FIXED..]),
            },
            KIND_CATALOG if body.len() == 8 || body.len() == 8 + ADU_FIXED => Record::Catalog {
                live: u64::from_le_bytes(body[0..8].try_into().expect("8")),
                last: (body.len() > 8).then(|| decode_name(&body[8..])),
            },
            _ => return Err(offset), // unknown kind or malformed body
        };
        Ok(Some((rec, offset + HEADER_BYTES + len)))
    }
}

/// Where an ADU record's payload sits inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Segment id.
    pub segment: u64,
    /// Byte offset of the record (its length prefix) within the segment.
    pub offset: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adu(seq: u64, payload: &'static [u8]) -> Record {
        Record::Adu {
            name: AduName::new(
                SourceId(7),
                PageId::new(SourceId(7), 3),
                SeqNo(seq),
            ),
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn round_trip_sequence() {
        let mut buf = Vec::new();
        let records = vec![
            adu(0, b"alpha"),
            Record::Catalog { live: 2, last: None },
            Record::Catalog {
                live: 2,
                last: Some(AduName::new(SourceId(9), PageId::new(SourceId(9), 1), SeqNo(4))),
            },
            adu(1, b""),
        ];
        for r in &records {
            r.encode_into(&mut buf);
        }
        let mut off = 0;
        let mut out = Vec::new();
        while let Some((r, next)) = Record::decode_at(&buf, off).expect("valid") {
            out.push(r);
            off = next;
        }
        assert_eq!(out, records);
        assert_eq!(off, buf.len());
    }

    #[test]
    fn torn_tail_reports_valid_prefix() {
        let mut buf = Vec::new();
        adu(0, b"kept").encode_into(&mut buf);
        let end_of_first = buf.len();
        adu(1, b"torn away").encode_into(&mut buf);
        buf.truncate(buf.len() - 3);
        let (_, next) = Record::decode_at(&buf, 0).expect("first ok").expect("some");
        assert_eq!(next, end_of_first);
        assert_eq!(Record::decode_at(&buf, next), Err(end_of_first));
    }

    #[test]
    fn decode_past_end_is_clean_end() {
        let mut buf = Vec::new();
        adu(0, b"x").encode_into(&mut buf);
        // A stale reader may hold fewer bytes than the offset it was
        // handed; that must read as "no record here", not panic.
        assert_eq!(Record::decode_at(&buf, buf.len() + 41), Ok(None));
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut buf = Vec::new();
        adu(0, b"payload").encode_into(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert_eq!(Record::decode_at(&buf, 0), Err(0));
    }
}

//! Property tests on the write-ahead log: for *any* record mix, segment
//! size, fsync cadence, and snapshot cadence —
//!
//! * a flushed log replays exactly (append → reopen → replay);
//! * tearing bytes off the tail or flipping a stored bit never yields
//!   wrong data: every surviving record reads back byte-identically and
//!   the damage is confined to a truncated suffix;
//! * an `AduStore` with a bounded cache serves every inserted payload
//!   byte-identically through [`srm::AduStore::fetch`], no matter what
//!   was evicted to disk.

use bytes::Bytes;
use proptest::prelude::*;
use srm::{AduName, AduStore, PageId, Persistence, SeqNo, SourceId};
use srm_store::{DurableStore, FsyncPolicy, MemBackend, StoreConfig};
use std::collections::BTreeMap;

/// Raw material for one ADU: stream selector + payload bytes.
type RawAdu = (u8, u8, Vec<u8>);

/// Assign per-stream ascending sequence numbers so names are unique.
fn build_adus(raw: Vec<RawAdu>) -> Vec<(AduName, Bytes)> {
    let mut next: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    raw.into_iter()
        .map(|(src, page, payload)| {
            let seq = next.entry((src, page)).or_insert(0);
            let name = AduName::new(
                SourceId(src as u64 + 1),
                PageId::new(SourceId(src as u64 + 1), page as u32),
                SeqNo(*seq),
            );
            *seq += 1;
            (name, Bytes::from(payload))
        })
        .collect()
}

fn arb_adus() -> impl Strategy<Value = Vec<RawAdu>> {
    prop::collection::vec(
        (0u8..3, 0u8..2, prop::collection::vec(any::<u8>(), 0..48)),
        1..40,
    )
}

fn arb_config() -> impl Strategy<Value = StoreConfig> {
    (
        prop_oneof![
            Just(FsyncPolicy::Always),
            (1u64..8).prop_map(FsyncPolicy::EveryN),
            Just(FsyncPolicy::Never),
        ],
        64u64..512,
        prop::option::of(1u64..32),
    )
        .prop_map(|(fsync, segment_bytes, snapshot_every)| StoreConfig {
            fsync,
            segment_bytes,
            snapshot_every,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flushed_log_replays_exactly(raw in arb_adus(), cfg in arb_config()) {
        let adus = build_adus(raw);
        let disk = MemBackend::new();
        let mut s = DurableStore::new(Box::new(disk.clone()), cfg);
        for (name, payload) in &adus {
            prop_assert!(s.persist(*name, payload));
        }
        s.flush();
        // Reopen from the shared disk in a fresh store instance.
        let mut s2 = DurableStore::new(Box::new(disk), cfg);
        let r = s2.rehydrate();
        prop_assert_eq!(r.truncated_bytes, 0);
        prop_assert_eq!(r.names.len(), adus.len());
        for (name, payload) in &adus {
            let read = s2.read(name);
            prop_assert_eq!(read, Some(payload.clone()));
        }
    }

    #[test]
    fn tail_damage_never_yields_wrong_data(
        raw in arb_adus(),
        cfg in arb_config(),
        tear in 0usize..64,
        flip in prop::option::of((0u64..4096, 1u8..=255)),
    ) {
        let adus = build_adus(raw);
        let disk = MemBackend::new();
        let mut s = DurableStore::new(Box::new(disk.clone()), cfg);
        for (name, payload) in &adus {
            s.persist(*name, payload);
        }
        s.flush();
        let last = disk.last_segment().expect("at least one segment");
        disk.tear_tail(last, tear);
        if let Some((off, mask)) = flip {
            disk.corrupt_byte(last, off as usize, mask);
        }
        s.crash();
        let r = s.rehydrate();
        let expected: BTreeMap<AduName, Bytes> = adus.into_iter().collect();
        for name in &r.names {
            let read = s.read(name);
            let want = expected.get(name).cloned();
            prop_assert_eq!(read, want, "surviving record must be byte-identical");
        }
        // A second replay of the repaired log is clean and idempotent.
        s.crash();
        let r2 = s.rehydrate();
        prop_assert_eq!(r2.truncated_bytes, 0, "truncation already healed the log");
        prop_assert_eq!(r2.names, r.names);
    }

    #[test]
    fn bounded_cache_serves_everything_byte_identically(
        raw in arb_adus(),
        cache in 1usize..4,
        cfg in arb_config(),
    ) {
        let adus = build_adus(raw);
        let mut st = AduStore::new();
        st.cache_per_stream = Some(cache);
        st.attach_persistence(Box::new(DurableStore::new(
            Box::new(MemBackend::new()),
            cfg,
        )));
        for (name, payload) in &adus {
            prop_assert!(st.insert(*name, payload.clone()));
        }
        for (name, payload) in &adus {
            prop_assert!(st.has(name), "evicted ADU still held by name");
            let fetched = st.fetch(name);
            prop_assert_eq!(
                fetched,
                Some(payload.clone()),
                "fetch must read through to the log"
            );
        }
    }
}

//! # srm-toolkit — the Section IX-D toolkit, in Rust
//!
//! The paper closes by arguing that "an ALF protocol architecture does not
//! necessarily preclude substantial code re-use" and sketches an SRM
//! toolkit: a base implementing the generic framework, derived classes
//! supplying application semantics. This crate is that toolkit:
//!
//! - [`tool`]: the generic [`SrmTool`] base (an [`srm::SrmAgent`] plus the
//!   pump) and the [`SrmApplication`] trait the derived application
//!   implements — its ADU codec, delivery handling, and page policy;
//! - [`news`]: Usenet-style article distribution with converging reply
//!   threads (one of Section III-D's suggested applications);
//! - [`routes`]: routing-protocol updates with per-origin latest-wins
//!   semantics and a derived best-route RIB (the other suggestion).
//!
//! The `wb` crate is morally the third derived application; it predates
//! the trait and keeps its own shape, exactly as the paper describes wb's
//! relationship to the later toolkit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod news;
pub mod routes;
pub mod tool;

pub use news::{Article, NewsApp, NewsTool};
pub use routes::{Prefix, Route, RouteApp, RouteTool, RouteUpdate};
pub use tool::{PageFetch, SrmApplication, SrmTool};

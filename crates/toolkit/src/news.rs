//! Usenet-style news distribution over SRM — one of the "potential
//! applications for SRM other than wb" the paper names (Section III-D:
//! "routing protocol updates, Usenet news, and adaptive web caches").
//!
//! Articles are immutable, uniquely named ADUs; a reply references its
//! parent by ADU name, and every member independently assembles the same
//! thread forest regardless of arrival order (replies arriving before
//! their parents simply wait in the forest until the parent shows up —
//! the same patching idea as wb's deletes).

use crate::tool::{SrmApplication, SrmTool};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use srm::{AduName, PageId, SeqNo, SourceId};
use std::collections::BTreeMap;

/// A news article.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Article {
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// The article this replies to, if any.
    pub references: Option<AduName>,
}

impl Article {
    /// Encode as an ADU payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32 + self.subject.len() + self.body.len());
        match &self.references {
            None => b.put_u8(0),
            Some(r) => {
                b.put_u8(1);
                b.put_u64(r.source.0);
                b.put_u64(r.page.creator.0);
                b.put_u32(r.page.number);
                b.put_u64(r.seq.0);
            }
        }
        b.put_u32(self.subject.len() as u32);
        b.put_slice(self.subject.as_bytes());
        b.put_u32(self.body.len() as u32);
        b.put_slice(self.body.as_bytes());
        b.freeze()
    }

    /// Decode; `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Article> {
        if buf.is_empty() {
            return None;
        }
        let references = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.len() < 28 {
                    return None;
                }
                Some(AduName::new(
                    SourceId(buf.get_u64()),
                    PageId::new(SourceId(buf.get_u64()), buf.get_u32()),
                    SeqNo(buf.get_u64()),
                ))
            }
            _ => return None,
        };
        let take_string = |buf: &mut Bytes| -> Option<String> {
            if buf.len() < 4 {
                return None;
            }
            let n = buf.get_u32() as usize;
            if n > buf.len() {
                return None;
            }
            String::from_utf8(buf.split_to(n).to_vec()).ok()
        };
        let subject = take_string(&mut buf)?;
        let body = take_string(&mut buf)?;
        Some(Article {
            subject,
            body,
            references,
        })
    }
}

/// The assembled view: every article plus the reply forest.
#[derive(Debug, Default)]
pub struct NewsApp {
    /// All articles by name.
    pub articles: BTreeMap<AduName, Article>,
}

impl NewsApp {
    /// Direct replies to `parent`, ascending by name.
    pub fn replies_to(&self, parent: &AduName) -> Vec<&AduName> {
        self.articles
            .iter()
            .filter(|(_, a)| a.references.as_ref() == Some(parent))
            .map(|(n, _)| n)
            .collect()
    }

    /// Thread roots (articles with no parent, or whose parent is unknown —
    /// the latter become proper children once the parent arrives).
    pub fn roots(&self) -> Vec<&AduName> {
        self.articles
            .iter()
            .filter(|(_, a)| match &a.references {
                None => true,
                Some(p) => !self.articles.contains_key(p),
            })
            .map(|(n, _)| n)
            .collect()
    }

    /// A canonical digest of the whole forest, for convergence checks.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (n, a) in &self.articles {
            mix(n.source.0);
            mix(n.seq.0);
            for byte in a.subject.bytes().chain(a.body.bytes()) {
                mix(byte as u64);
            }
            if let Some(r) = &a.references {
                mix(r.source.0);
                mix(r.seq.0);
            }
        }
        h
    }
}

impl SrmApplication for NewsApp {
    type Item = Article;
    fn decode(&self, _name: AduName, payload: &Bytes) -> Option<Article> {
        Article::decode(payload.clone())
    }
    fn on_item(&mut self, name: AduName, item: Article) {
        self.articles.entry(name).or_insert(item);
    }
}

/// A news node: the toolkit base specialized with [`NewsApp`].
pub type NewsTool = SrmTool<NewsApp>;

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: u64, q: u64) -> AduName {
        AduName::new(SourceId(s), PageId::new(SourceId(0), 0), SeqNo(q))
    }

    fn art(subject: &str, parent: Option<AduName>) -> Article {
        Article {
            subject: subject.into(),
            body: format!("body of {subject}"),
            references: parent,
        }
    }

    #[test]
    fn article_codec_roundtrips() {
        for a in [
            art("hello", None),
            art("re: hello", Some(name(1, 0))),
            Article {
                subject: String::new(),
                body: String::new(),
                references: None,
            },
        ] {
            assert_eq!(Article::decode(a.encode()), Some(a));
        }
    }

    #[test]
    fn malformed_articles_rejected() {
        assert_eq!(Article::decode(Bytes::new()), None);
        assert_eq!(Article::decode(Bytes::from_static(&[9])), None);
        let good = art("x", Some(name(1, 0))).encode();
        for cut in 1..good.len() {
            // Truncations either fail or decode to a shorter valid read —
            // never panic.
            let _ = Article::decode(good.slice(0..cut));
        }
    }

    #[test]
    fn threads_assemble_in_any_order() {
        let root_n = name(1, 0);
        let reply_n = name(2, 0);
        let nested_n = name(3, 0);
        let root = art("root", None);
        let reply = art("re: root", Some(root_n));
        let nested = art("re: re: root", Some(reply_n));
        // Forward order.
        let mut a = NewsApp::default();
        a.on_item(root_n, root.clone());
        a.on_item(reply_n, reply.clone());
        a.on_item(nested_n, nested.clone());
        // Reverse order (replies before parents).
        let mut b = NewsApp::default();
        b.on_item(nested_n, nested);
        assert_eq!(b.roots().len(), 1, "orphan reply is a provisional root");
        b.on_item(reply_n, reply);
        b.on_item(root_n, root);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.roots(), vec![&root_n]);
        assert_eq!(b.replies_to(&root_n), vec![&reply_n]);
        assert_eq!(b.replies_to(&reply_n), vec![&nested_n]);
    }
}

//! Routing-protocol updates over SRM — the second "potential application"
//! Section III-D names.
//!
//! Each origin announces and withdraws prefixes on its own ADU stream;
//! because names are ordered per origin, "latest update wins" is
//! well-defined per (origin, prefix) even under arbitrary reordering and
//! repair. Every member then computes the same RIB: per prefix, the
//! lowest-metric live announcement (ties to the smaller origin).

use crate::tool::{SrmApplication, SrmTool};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use srm::{AduName, SourceId};
use std::collections::BTreeMap;

/// An IPv4-style prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address.
    pub addr: u32,
    /// Prefix length in bits.
    pub len: u8,
}

/// One route update ADU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteUpdate {
    /// The prefix being announced or withdrawn.
    pub prefix: Prefix,
    /// Next hop (opaque id).
    pub next_hop: u32,
    /// Path metric; lower is better.
    pub metric: u32,
    /// True for a withdrawal.
    pub withdrawn: bool,
}

impl RouteUpdate {
    /// Encode as an ADU payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(self.prefix.addr);
        b.put_u8(self.prefix.len);
        b.put_u32(self.next_hop);
        b.put_u32(self.metric);
        b.put_u8(self.withdrawn as u8);
        b.freeze()
    }

    /// Decode; `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<RouteUpdate> {
        if buf.len() != 14 {
            return None;
        }
        let prefix = Prefix {
            addr: buf.get_u32(),
            len: buf.get_u8(),
        };
        if prefix.len > 32 {
            return None;
        }
        let next_hop = buf.get_u32();
        let metric = buf.get_u32();
        let withdrawn = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return None,
        };
        Some(RouteUpdate {
            prefix,
            next_hop,
            metric,
            withdrawn,
        })
    }
}

/// A chosen route in the RIB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The announcing origin.
    pub origin: SourceId,
    /// Next hop.
    pub next_hop: u32,
    /// Metric.
    pub metric: u32,
}

/// The route-update application: per-origin latest state plus the derived
/// RIB.
#[derive(Debug, Default)]
pub struct RouteApp {
    /// Latest update per (origin, prefix), with the ADU seq that carried it
    /// (per-origin names are ordered, so "latest" is exact).
    latest: BTreeMap<(SourceId, Prefix), (u64, RouteUpdate)>,
}

impl RouteApp {
    /// The best live route per prefix: lowest metric, ties to the smaller
    /// origin id.
    pub fn rib(&self) -> BTreeMap<Prefix, Route> {
        let mut rib: BTreeMap<Prefix, Route> = BTreeMap::new();
        for (&(origin, prefix), &(_, u)) in &self.latest {
            if u.withdrawn {
                continue;
            }
            let cand = Route {
                origin,
                next_hop: u.next_hop,
                metric: u.metric,
            };
            rib.entry(prefix)
                .and_modify(|best| {
                    if (cand.metric, cand.origin) < (best.metric, best.origin) {
                        *best = cand;
                    }
                })
                .or_insert(cand);
        }
        rib
    }

    /// Canonical digest of the RIB, for convergence checks.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (p, r) in self.rib() {
            mix(p.addr as u64);
            mix(p.len as u64);
            mix(r.origin.0);
            mix(r.next_hop as u64);
            mix(r.metric as u64);
        }
        h
    }
}

impl SrmApplication for RouteApp {
    type Item = RouteUpdate;
    fn decode(&self, _name: AduName, payload: &Bytes) -> Option<RouteUpdate> {
        RouteUpdate::decode(payload.clone())
    }
    fn on_item(&mut self, name: AduName, item: RouteUpdate) {
        let key = (name.source, item.prefix);
        let e = self.latest.entry(key).or_insert((name.seq.0, item));
        // Per-origin sequence numbers order the updates; repairs may arrive
        // late and must not roll state back.
        if name.seq.0 >= e.0 {
            *e = (name.seq.0, item);
        }
    }
}

/// A routing node: the toolkit base specialized with [`RouteApp`].
pub type RouteTool = SrmTool<RouteApp>;

#[cfg(test)]
mod tests {
    use super::*;
    use srm::{PageId, SeqNo};

    fn p(addr: u32, len: u8) -> Prefix {
        Prefix { addr, len }
    }

    fn nm(origin: u64, seq: u64) -> AduName {
        AduName::new(
            SourceId(origin),
            PageId::new(SourceId(origin), 0),
            SeqNo(seq),
        )
    }

    fn ann(prefix: Prefix, next_hop: u32, metric: u32) -> RouteUpdate {
        RouteUpdate {
            prefix,
            next_hop,
            metric,
            withdrawn: false,
        }
    }

    #[test]
    fn codec_roundtrips_and_validates() {
        let u = ann(p(0x0a000000, 8), 7, 100);
        assert_eq!(RouteUpdate::decode(u.encode()), Some(u));
        let w = RouteUpdate {
            withdrawn: true,
            ..u
        };
        assert_eq!(RouteUpdate::decode(w.encode()), Some(w));
        assert_eq!(RouteUpdate::decode(Bytes::from_static(&[0; 13])), None);
        assert_eq!(RouteUpdate::decode(Bytes::from_static(&[0; 15])), None);
        // Prefix length 33 is invalid.
        let mut bad = u.encode().to_vec();
        bad[4] = 33;
        assert_eq!(RouteUpdate::decode(Bytes::from(bad)), None);
    }

    #[test]
    fn best_route_selection() {
        let mut app = RouteApp::default();
        let pre = p(0xc0a80000, 16);
        app.on_item(nm(1, 0), ann(pre, 11, 20));
        app.on_item(nm(2, 0), ann(pre, 22, 10));
        let rib = app.rib();
        assert_eq!(rib[&pre].origin, SourceId(2));
        assert_eq!(rib[&pre].metric, 10);
        // Metric tie goes to the smaller origin.
        app.on_item(nm(1, 1), ann(pre, 11, 10));
        assert_eq!(app.rib()[&pre].origin, SourceId(1));
    }

    #[test]
    fn withdrawal_and_out_of_order_repairs() {
        let mut app = RouteApp::default();
        let pre = p(0x0a000000, 8);
        // Seq 1 (withdraw) arrives before seq 0 (announce) — a repair
        // delivered late must not resurrect the route.
        app.on_item(
            nm(1, 1),
            RouteUpdate {
                prefix: pre,
                next_hop: 9,
                metric: 5,
                withdrawn: true,
            },
        );
        app.on_item(nm(1, 0), ann(pre, 9, 5));
        assert!(app.rib().is_empty(), "withdraw (seq 1) outranks announce (seq 0)");
        // A genuinely newer announce brings it back.
        app.on_item(nm(1, 2), ann(pre, 9, 4));
        assert_eq!(app.rib()[&pre].metric, 4);
    }

    #[test]
    fn digest_is_order_independent() {
        let pre_a = p(0x0a000000, 8);
        let pre_b = p(0x0b000000, 8);
        let updates = [
            (nm(1, 0), ann(pre_a, 1, 10)),
            (nm(2, 0), ann(pre_b, 2, 20)),
            (nm(1, 1), ann(pre_b, 1, 15)),
        ];
        let mut fwd = RouteApp::default();
        for (n, u) in updates {
            fwd.on_item(n, u);
        }
        let mut rev = RouteApp::default();
        for (n, u) in updates.into_iter().rev() {
            rev.on_item(n, u);
        }
        assert_eq!(fwd.digest(), rev.digest());
    }
}

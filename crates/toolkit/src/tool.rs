//! The generic half of the SRM toolkit (Section IX-D).
//!
//! "We are developing a object-oriented SRM toolkit that in a base class
//! implements the SRM framework described in Section III and in a derived
//! subclass reflects application semantics like those described in Section
//! II-C. For example, the application portion of the SRM class hierarchy
//! determines the packet generation order and priority … At the same time,
//! the SRM base class handles the more generic SRM functionality like the
//! timer adaptation algorithms and the basic request/repair event
//! scheduling."
//!
//! In Rust the "base class" is [`SrmTool`] (owning the [`SrmAgent`]) and
//! the "derived subclass" is any [`SrmApplication`] implementation: it
//! supplies the namespace semantics (its ADU codec), consumes delivered
//! items, and may react to newly discovered pages. Everything else —
//! session messages, distance estimation, loss detection, request/repair
//! timers, adaptation, local recovery — comes from the framework.

use bytes::Bytes;
use netsim::{Application, Ctx, GroupId, Packet};
use srm::{AduName, PageId, SourceId, SrmAgent, SrmConfig};

/// The application-specific half an SRM-based tool supplies (the ALF
/// contract: the app owns its namespace and data semantics).
pub trait SrmApplication {
    /// The application's decoded data unit.
    type Item;

    /// Decode an ADU payload. `None` marks it corrupt/unusable (counted,
    /// never delivered).
    fn decode(&self, name: AduName, payload: &Bytes) -> Option<Self::Item>;

    /// A decoded item arrived (original, repair, or reconstruction).
    /// Ordering is whatever the network produced — idempotence and
    /// ordering semantics are the application's business.
    fn on_item(&mut self, name: AduName, item: Self::Item);

    /// A previously unknown page was discovered via a catalog. The default
    /// asks the framework to fetch its state (most tools want the data).
    fn on_page_discovered(&mut self, page: PageId) -> PageFetch {
        let _ = page;
        PageFetch::Fetch
    }
}

/// Reaction to a discovered page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageFetch {
    /// Request the page's state (and recover its data).
    Fetch,
    /// Ignore it.
    Skip,
}

/// The generic SRM tool: framework + application.
pub struct SrmTool<A: SrmApplication> {
    /// The SRM framework engine ("base class").
    pub agent: SrmAgent,
    /// The application semantics ("derived class").
    pub app: A,
    /// Payloads that failed the application's decoder.
    pub corrupt_items: u64,
}

impl<A: SrmApplication> SrmTool<A> {
    /// Assemble a tool for member `id` on `group`.
    pub fn new(id: SourceId, group: GroupId, cfg: SrmConfig, app: A) -> Self {
        SrmTool {
            agent: SrmAgent::new(id, group, cfg),
            app,
            corrupt_items: 0,
        }
    }

    /// Originate one application item already encoded as `payload` on
    /// `page`, delivering it locally as well (the member sees its own
    /// data). Returns the ADU name.
    pub fn publish(&mut self, ctx: &mut Ctx<'_>, page: PageId, payload: Bytes) -> AduName {
        let name = self.agent.send_data(ctx, page, payload.clone());
        if let Some(item) = self.app.decode(name, &payload) {
            self.app.on_item(name, item);
        }
        name
    }

    /// Late-join: fetch the session's history.
    pub fn fetch_history(&mut self, ctx: &mut Ctx<'_>) {
        self.agent.request_page_catalog(ctx);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for d in self.agent.take_delivered() {
            match self.app.decode(d.name, &d.payload) {
                Some(item) => self.app.on_item(d.name, item),
                None => self.corrupt_items += 1,
            }
        }
        for page in self.agent.take_discovered_pages() {
            if self.app.on_page_discovered(page) == PageFetch::Fetch {
                self.agent.request_page_state(ctx, page);
            }
        }
    }
}

impl<A: SrmApplication> Application for SrmTool<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.agent.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        self.agent.on_packet(ctx, pkt);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.agent.on_timer(ctx, token);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::generators::chain;
    use netsim::{NodeId, SimTime, Simulator};

    /// Minimal derived app: bytes are stored verbatim.
    struct Collect {
        items: Vec<(AduName, Vec<u8>)>,
    }

    impl SrmApplication for Collect {
        type Item = Vec<u8>;
        fn decode(&self, _name: AduName, payload: &Bytes) -> Option<Vec<u8>> {
            if payload.is_empty() {
                None // "corrupt"
            } else {
                Some(payload.to_vec())
            }
        }
        fn on_item(&mut self, name: AduName, item: Vec<u8>) {
            self.items.push((name, item));
        }
    }

    #[test]
    fn tool_delivers_items_and_counts_corruption() {
        let g = GroupId(3);
        let mut sim: Simulator<SrmTool<Collect>> = Simulator::new(chain(2), 4);
        for i in 0..2u64 {
            let mut t = SrmTool::new(
                SourceId(i),
                g,
                SrmConfig::fixed(2),
                Collect { items: vec![] },
            );
            t.agent.session_enabled = false;
            t.agent.set_current_page(PageId::new(SourceId(0), 0));
            sim.install(NodeId(i as u32), t);
            sim.join(NodeId(i as u32), g);
        }
        let page = PageId::new(SourceId(0), 0);
        sim.exec(NodeId(0), |t, ctx| {
            t.publish(ctx, page, Bytes::from_static(b"hello"));
            t.publish(ctx, page, Bytes::new()); // decodes as corrupt
        });
        assert!(sim.run_until_idle(SimTime::from_secs(100)));
        let t0 = sim.app(NodeId(0)).unwrap();
        assert_eq!(t0.app.items.len(), 1, "publisher sees its own good item");
        let t1 = sim.app(NodeId(1)).unwrap();
        assert_eq!(t1.app.items.len(), 1);
        assert_eq!(t1.app.items[0].1, b"hello".to_vec());
        assert_eq!(t1.corrupt_items, 1);
    }
}

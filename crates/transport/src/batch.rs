//! Batched socket backends: many datagrams per syscall.
//!
//! The runtime's datapath cost at flood rates is dominated by syscalls —
//! one `recv_from` and one `send_to` per frame. [`BatchSocket`] abstracts
//! the socket so the recv thread can drain **up to N datagrams per
//! syscall** and the reactor can flush a whole wakeup's queued sends in
//! one call:
//!
//! - [`MmsgSocket`] (Linux): `recvmmsg(2)` / `sendmmsg(2)` through a
//!   minimal hand-declared FFI surface (the workspace builds offline, so
//!   no `libc` crate; the declarations match the stable 64-bit Linux ABI).
//!   `recvmmsg` runs with `MSG_WAITFORONE`: it blocks for the first
//!   datagram under the socket's read timeout — preserving the supervised
//!   recv loop's heartbeat — then drains whatever else is already queued
//!   without blocking again.
//! - [`PortableSocket`] (everywhere): the one-at-a-time fallback, which
//!   still receives into pooled slabs (fixing the old per-frame `Vec`
//!   allocation) and shares the batched send accounting path.
//!
//! Both backends fill [`PoolBuf`]s from the shared [`BufferPool`], so the
//! choice of backend changes *how many* syscalls move the bytes, never
//! what the reactor observes: the equivalence test in
//! `tests/transport_batch.rs` holds the two to identical delivered frame
//! sequences.

use crate::pool::{BufferPool, PoolBuf};
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Upper bound on frames per syscall, either direction (the kernel caps
/// `vlen` at `UIO_MAXIOV` anyway; 256 keeps the FFI scratch arrays at a
/// comfortable ~50KB of stack while letting a busy single-core host — where
/// every syscall is also a potential context switch — move big batches).
pub const MAX_BATCH: usize = 256;

/// Tuning for the batched datapath, carried in
/// [`NodeOptions`](crate::NodeOptions).
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Max datagrams drained per receive syscall (clamped to
    /// [`MAX_BATCH`]; 1 behaves like the portable backend).
    pub recv_batch: usize,
    /// Max frames per send syscall when flushing the reactor's queue.
    pub send_batch: usize,
    /// Receive-pool slabs. Each slab holds one max-size UDP datagram;
    /// more slabs let more frames ride the `recv → reactor` channel
    /// without falling back to heap buffers.
    pub pool_slabs: usize,
    /// Bound on the reactor's inbound channel (datagrams + commands).
    /// Datagrams beyond it are shed (and counted) instead of growing the
    /// queue without limit under flood.
    pub inbound_capacity: usize,
    /// Max channel events the reactor handles per wakeup before it
    /// revisits timers and flushes sends — the coalescing window.
    pub inbound_drain: usize,
    /// Run the node's recv and reactor threads under `SCHED_BATCH`
    /// (Linux): the scheduler stops letting every datagram arrival
    /// preempt the burst that produced it, so on busy (especially
    /// single-core) hosts the datapath moves timeslice-sized batches
    /// instead of context-switching per frame. Timer fidelity degrades
    /// by at most a scheduling slice, far below SRM's timer scales.
    pub batch_sched: bool,
    /// Requested kernel socket buffer size (`SO_RCVBUF`/`SO_SNDBUF`),
    /// applied at spawn where the platform allows (Linux; silently
    /// clamped to `net.core.{r,w}mem_max`). Batched senders burst far
    /// faster than the old syscall-per-frame path, so the receive buffer
    /// is what absorbs a flush while the receiver drains.
    pub socket_bufs: usize,
    /// Force the portable one-at-a-time backend even where `mmsg` is
    /// available (the equivalence test and `--batch 0` use this).
    pub force_portable: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            recv_batch: 32,
            send_batch: 32,
            pool_slabs: 64,
            inbound_capacity: 4096,
            inbound_drain: 256,
            batch_sched: true,
            socket_bufs: 4 * 1024 * 1024,
            force_portable: false,
        }
    }
}

/// Put the calling thread under the `SCHED_BATCH` policy (Linux; no-op
/// elsewhere, and harmless if the kernel refuses). Batch threads do not
/// get wakeup-preemption priority, which is exactly right for the
/// datapath threads: a flood burst runs to the end of its timeslice and
/// its receivers then drain the whole accumulation in a few syscalls.
pub fn enter_batch_scheduling() {
    #[cfg(target_os = "linux")]
    ffi::set_batch_scheduling();
}

/// Ask the kernel for `bytes`-sized socket buffers on `sock` (both
/// directions). Best-effort: platforms without the hook, or kernels that
/// clamp the request, leave the socket usable with its default buffers.
/// Clones of `sock` share the underlying socket, so one call at spawn
/// covers the recv thread and the send path.
pub fn configure_socket_buffers(sock: &UdpSocket, bytes: usize) {
    #[cfg(target_os = "linux")]
    ffi::set_buffer_sizes(sock, bytes);
    #[cfg(not(target_os = "linux"))]
    let _ = (sock, bytes);
}

/// One outgoing frame of a flush batch.
#[derive(Clone, Copy, Debug)]
pub struct SendFrame<'a> {
    /// Where it goes.
    pub dest: SocketAddr,
    /// The encoded envelope bytes.
    pub data: &'a [u8],
}

/// One received buffer: a single datagram, or — when the kernel handed us
/// a `UDP_GRO`-coalesced super-datagram — several equal-size frames
/// back-to-back. `seg_size == 0` means the buffer is one frame; otherwise
/// split at `seg_size` boundaries (the final frame may be shorter).
#[derive(Debug)]
pub struct RecvFrame {
    /// The filled buffer.
    pub buf: PoolBuf,
    /// Coalesced segment size, 0 for a plain datagram.
    pub seg_size: u32,
}

impl RecvFrame {
    /// How many logical frames this buffer carries.
    pub fn frame_count(&self) -> usize {
        let len = self.buf.len();
        match self.seg_size as usize {
            0 => 1,
            s => len.div_ceil(s).max(1),
        }
    }
}

/// A socket that moves datagrams in batches.
///
/// `recv_batch` blocks for the first datagram under the socket's
/// configured read timeout (timeouts surface as
/// [`io::ErrorKind::WouldBlock`]/`TimedOut`, exactly like `recv_from`),
/// appends up to `max` filled buffers to `out`, and returns how many
/// arrived (a buffer may carry several coalesced frames — see
/// [`RecvFrame`]). `send_batch` attempts every frame and pushes one
/// result per frame onto `results` in order — per-destination accounting
/// stays exact even when the kernel takes many frames in one syscall.
pub trait BatchSocket: Send {
    /// Receive up to `max` datagrams into pooled buffers.
    fn recv_batch(
        &mut self,
        pool: &BufferPool,
        max: usize,
        out: &mut Vec<RecvFrame>,
    ) -> io::Result<usize>;

    /// Send every frame, appending one outcome per frame to `results`.
    fn send_batch(&mut self, frames: &[SendFrame<'_>], results: &mut Vec<io::Result<()>>);

    /// Stable name for logs and metrics (`"mmsg"` or `"portable"`).
    fn backend_name(&self) -> &'static str;
}

/// Build the best backend for this platform (or the portable one when
/// `opts.force_portable` is set).
pub fn make_backend(sock: UdpSocket, opts: &BatchOptions) -> Box<dyn BatchSocket> {
    #[cfg(target_os = "linux")]
    {
        if !opts.force_portable {
            return Box::new(MmsgSocket::new(sock));
        }
    }
    let _ = opts;
    Box::new(PortableSocket::new(sock))
}

/// The portable one-datagram-per-syscall backend.
///
/// Still pooled: a dry pool falls back to receiving into a persistent
/// scratch slab and copying out only the filled prefix (the old path's
/// copy, without its per-frame allocation).
pub struct PortableSocket {
    sock: UdpSocket,
    scratch: Vec<u8>,
}

impl PortableSocket {
    /// Wrap an already-configured socket.
    pub fn new(sock: UdpSocket) -> Self {
        PortableSocket {
            sock,
            scratch: vec![0u8; crate::runtime::MAX_DATAGRAM],
        }
    }
}

impl BatchSocket for PortableSocket {
    fn recv_batch(
        &mut self,
        pool: &BufferPool,
        _max: usize,
        out: &mut Vec<RecvFrame>,
    ) -> io::Result<usize> {
        match pool.try_take() {
            Some(mut buf) => {
                let (n, _from) = self.sock.recv_from(buf.slab_mut())?;
                buf.set_filled(n);
                out.push(RecvFrame { buf, seg_size: 0 });
            }
            None => {
                let (n, _from) = self.sock.recv_from(&mut self.scratch)?;
                pool.note_miss();
                out.push(RecvFrame {
                    buf: PoolBuf::copied_from(&self.scratch[..n]),
                    seg_size: 0,
                });
            }
        }
        Ok(1)
    }

    fn send_batch(&mut self, frames: &[SendFrame<'_>], results: &mut Vec<io::Result<()>>) {
        for f in frames {
            results.push(self.sock.send_to(f.data, f.dest).map(|_| ()));
        }
    }

    fn backend_name(&self) -> &'static str {
        "portable"
    }
}

/// Most segments one `UDP_SEGMENT` send may carry (the kernel's
/// `UDP_MAX_SEGMENTS`).
#[cfg(target_os = "linux")]
const GSO_MAX_SEGS: usize = 64;
/// Byte budget for one GSO super-datagram, under the UDP length field
/// with room for headers.
#[cfg(target_os = "linux")]
const GSO_MAX_BYTES: usize = 60_000;

/// The Linux `recvmmsg`/`sendmmsg` backend, with UDP generic segmentation
/// offload on top: a run of equal-size frames to one destination goes to
/// the kernel as a *single* `sendmsg` carrying a `UDP_SEGMENT` control
/// message — one traversal of the UDP stack for up to `GSO_MAX_SEGS`
/// frames — and the receive side opts into `UDP_GRO`, so such a run
/// arrives as one coalesced buffer ([`RecvFrame::seg_size`]).
#[cfg(target_os = "linux")]
pub struct MmsgSocket {
    sock: UdpSocket,
    /// Pooled slabs checked out and waiting to be filled; topped up from
    /// the pool each call, so unconsumed slabs carry over syscall-free.
    ready: Vec<PoolBuf>,
    scratch: Vec<u8>,
    /// Cleared the first time the kernel rejects a `UDP_SEGMENT` send;
    /// every later run falls back to `sendmmsg` silently.
    gso_ok: bool,
}

#[cfg(target_os = "linux")]
impl MmsgSocket {
    /// Wrap an already-configured socket, opting it into `UDP_GRO`
    /// (best-effort: an old kernel just never coalesces).
    pub fn new(sock: UdpSocket) -> Self {
        ffi::enable_gro(&sock);
        MmsgSocket {
            sock,
            ready: Vec::new(),
            scratch: vec![0u8; crate::runtime::MAX_DATAGRAM],
            gso_ok: true,
        }
    }
}

#[cfg(target_os = "linux")]
impl BatchSocket for MmsgSocket {
    fn recv_batch(
        &mut self,
        pool: &BufferPool,
        max: usize,
        out: &mut Vec<RecvFrame>,
    ) -> io::Result<usize> {
        let want = max.clamp(1, MAX_BATCH);
        while self.ready.len() < want {
            match pool.try_take() {
                Some(b) => self.ready.push(b),
                None => break,
            }
        }
        if self.ready.is_empty() {
            // Pool dry: single-buffer fallback through the scratch slab,
            // so a flood that outruns the pool degrades instead of
            // stalling. Must go through `recvmsg` (not `recv_from`): this
            // socket has GRO enabled, and a coalesced buffer read without
            // its control message would silently merge frames.
            let (n, seg) = ffi::recvmsg_single(&self.sock, &mut self.scratch)?;
            pool.note_miss();
            out.push(RecvFrame {
                buf: PoolBuf::copied_from(&self.scratch[..n]),
                seg_size: seg,
            });
            return Ok(1);
        }
        let mut segs = [0u32; MAX_BATCH];
        let got = ffi::recvmmsg_into(&self.sock, &mut self.ready, &mut segs)?;
        for (buf, seg) in self.ready.drain(..got).zip(segs.iter()) {
            out.push(RecvFrame { buf, seg_size: *seg });
        }
        Ok(got)
    }

    fn send_batch(&mut self, frames: &[SendFrame<'_>], results: &mut Vec<io::Result<()>>) {
        let mut i = 0;
        while i < frames.len() {
            // A GSO run: equal-size frames to one destination. Control
            // traffic rarely forms one; a flood is nothing else.
            let len = frames[i].data.len();
            let mut j = i + 1;
            if self.gso_ok && len > 0 && len <= u16::MAX as usize {
                let max_run = GSO_MAX_SEGS.min(GSO_MAX_BYTES / len).max(1);
                while j < frames.len()
                    && j - i < max_run
                    && frames[j].dest == frames[i].dest
                    && frames[j].data.len() == len
                {
                    j += 1;
                }
            }
            if j - i >= 2 {
                match ffi::sendmsg_gso(&self.sock, &frames[i..j], len as u16) {
                    Ok(()) => {
                        for _ in i..j {
                            results.push(Ok(()));
                        }
                        i = j;
                        continue;
                    }
                    Err(e) if is_gso_unsupported(&e) => {
                        // Kernel without UDP_SEGMENT: remember, and let
                        // the run fall through to sendmmsg below.
                        self.gso_ok = false;
                    }
                    Err(e) => {
                        // The whole super-datagram failed as one syscall;
                        // charge every frame in the run.
                        for _ in i..j {
                            results.push(Err(io::Error::new(e.kind(), e.to_string())));
                        }
                        i = j;
                        continue;
                    }
                }
            }
            // No run (or GSO unavailable): take this frame together with
            // everything up to the next GSO-able run via sendmmsg.
            let mut k = i + 1;
            while k < frames.len() {
                let l = frames[k].data.len();
                let run_ahead = self.gso_ok
                    && l > 0
                    && l <= u16::MAX as usize
                    && k + 1 < frames.len()
                    && frames[k + 1].dest == frames[k].dest
                    && frames[k + 1].data.len() == l;
                if run_ahead {
                    break;
                }
                k += 1;
            }
            for chunk in frames[i..k].chunks(MAX_BATCH) {
                ffi::sendmmsg_all(&self.sock, chunk, results);
            }
            i = k;
        }
    }

    fn backend_name(&self) -> &'static str {
        "mmsg"
    }
}

/// Errors that mean "this kernel cannot do `UDP_SEGMENT`", as opposed to
/// a frame-level failure.
#[cfg(target_os = "linux")]
fn is_gso_unsupported(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(code) if code == 22 || code == 95 || code == 92)
    // EINVAL, EOPNOTSUPP, ENOPROTOOPT
}

/// The minimal FFI surface for `recvmmsg`/`sendmmsg`.
///
/// The only `unsafe` in the crate lives here (the crate is otherwise
/// `deny(unsafe_code)`): two syscall wrappers over hand-declared structs
/// matching the 64-bit Linux ABI (x86_64 and aarch64, glibc and musl —
/// the layouts coincide for zero-initialized headers). Size assertions at
/// the call sites guard against drift.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod ffi {
    use super::SendFrame;
    use crate::pool::PoolBuf;
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::unix::io::AsRawFd;

    /// `MSG_WAITFORONE`: block (per `SO_RCVTIMEO`) for the first
    /// datagram, then turn on `MSG_DONTWAIT` for the rest of the batch.
    const MSG_WAITFORONE: i32 = 0x10000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// Big enough for any `sockaddr_in`/`sockaddr_in6`.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage {
        data: [u8; 128],
    }

    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    const SCHED_BATCH: i32 = 3;
    const SOL_UDP: i32 = 17;
    /// `setsockopt`/cmsg codes for UDP generic segmentation offload.
    const UDP_SEGMENT: i32 = 103;
    const UDP_GRO: i32 = 104;
    /// Per-message control buffer: `CMSG_SPACE(sizeof(int))` for the GRO
    /// segment size, with slack for incidental control data.
    const CTRL_LEN: usize = 64;

    #[repr(C)]
    struct SchedParam {
        priority: i32,
    }

    /// `struct cmsghdr` on 64-bit Linux; data follows, aligned to usize.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct CMsgHdr {
        len: usize,
        level: i32,
        ty: i32,
    }

    /// Control buffer aligned like a cmsghdr.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct CtrlBuf {
        data: [u8; CTRL_LEN],
    }

    extern "C" {
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8)
            -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
        fn sched_setscheduler(pid: i32, policy: i32, param: *const SchedParam) -> i32;
        fn sendmsg(fd: i32, msg: *const MsgHdr, flags: i32) -> isize;
        fn recvmsg(fd: i32, msg: *mut MsgHdr, flags: i32) -> isize;
    }

    /// Receive one buffer into `buf`, returning `(len, gro_segment_size)`.
    /// The GRO-aware stand-in for `recv_from`: a coalesced super-buffer
    /// arrives with its segment size instead of silently merged.
    pub(super) fn recvmsg_single(sock: &UdpSocket, buf: &mut [u8]) -> io::Result<(usize, u32)> {
        assert_abi();
        let mut iov = IoVec { base: buf.as_mut_ptr(), len: buf.len() };
        let mut ctrl = CtrlBuf { data: [0; CTRL_LEN] };
        let mut msg = MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: &mut iov,
            iovlen: 1,
            control: ctrl.data.as_mut_ptr(),
            controllen: CTRL_LEN,
            flags: 0,
        };
        loop {
            // SAFETY: every pointer in `msg` references a live local
            // borrowed for the duration of the call.
            let r = unsafe { recvmsg(sock.as_raw_fd(), &mut msg, 0) };
            if r >= 0 {
                return Ok((r as usize, parse_gro_size(&ctrl, msg.controllen)));
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// Opt the socket into receiving GRO-coalesced UDP (best-effort).
    pub(super) fn enable_gro(sock: &UdpSocket) {
        let one: i32 = 1;
        // SAFETY: optval points at a live i32; optlen matches.
        unsafe {
            setsockopt(
                sock.as_raw_fd(),
                SOL_UDP,
                UDP_GRO,
                one.to_ne_bytes().as_ptr(),
                4,
            );
        }
    }

    /// Send a run of equal-size frames to one destination as a single
    /// `UDP_SEGMENT` super-datagram: the iovecs gather the frames, the
    /// control message tells the kernel where the datagram boundaries go,
    /// and the whole run costs one traversal of the UDP stack.
    pub(super) fn sendmsg_gso(
        sock: &UdpSocket,
        run: &[SendFrame<'_>],
        seg: u16,
    ) -> io::Result<()> {
        assert_abi();
        debug_assert!(run.len() <= super::GSO_MAX_SEGS);
        let mut iovecs = [IoVec { base: std::ptr::null_mut(), len: 0 }; super::GSO_MAX_SEGS];
        let n = run.len().min(super::GSO_MAX_SEGS);
        for (iov, f) in iovecs.iter_mut().zip(run.iter().take(n)) {
            // The kernel never writes through a send iovec; the cast only
            // satisfies the shared msghdr layout.
            *iov = IoVec { base: f.data.as_ptr() as *mut u8, len: f.data.len() };
        }
        let mut addr = SockAddrStorage { data: [0; 128] };
        let alen = write_sockaddr(run[0].dest, &mut addr);
        let mut ctrl = CtrlBuf { data: [0; CTRL_LEN] };
        let hdr_len = std::mem::size_of::<CMsgHdr>();
        let cm = CMsgHdr { len: hdr_len + 2, level: SOL_UDP, ty: UDP_SEGMENT };
        ctrl.data[0..8].copy_from_slice(&cm.len.to_ne_bytes());
        ctrl.data[8..12].copy_from_slice(&cm.level.to_ne_bytes());
        ctrl.data[12..16].copy_from_slice(&cm.ty.to_ne_bytes());
        ctrl.data[hdr_len..hdr_len + 2].copy_from_slice(&seg.to_ne_bytes());
        let msg = MsgHdr {
            name: addr.data.as_mut_ptr(),
            namelen: alen,
            iov: iovecs.as_mut_ptr(),
            iovlen: n,
            control: ctrl.data.as_mut_ptr(),
            // CMSG_SPACE(2): header + data, padded to alignment.
            controllen: hdr_len + 8,
            flags: 0,
        };
        loop {
            // SAFETY: every pointer in `msg` references a live local or a
            // frame borrowed for the duration of the call.
            let r = unsafe { sendmsg(sock.as_raw_fd(), &msg, 0) };
            if r >= 0 {
                return Ok(());
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// `SCHED_BATCH` for the calling thread (pid 0); a policy downgrade,
    /// so it needs no privileges and failure costs nothing.
    pub(super) fn set_batch_scheduling() {
        let param = SchedParam { priority: 0 };
        // SAFETY: param is a live, correctly-sized sched_param for the
        // duration of the call; pid 0 targets only the calling thread.
        unsafe {
            sched_setscheduler(0, SCHED_BATCH, &param);
        }
    }

    /// Best-effort `SO_RCVBUF`/`SO_SNDBUF`; the kernel clamps the request
    /// to `net.core.{r,w}mem_max`, so failure is not actionable.
    pub(super) fn set_buffer_sizes(sock: &UdpSocket, bytes: usize) {
        let v = i32::try_from(bytes).unwrap_or(i32::MAX);
        for opt in [SO_RCVBUF, SO_SNDBUF] {
            // SAFETY: optval points at a live i32 for the duration of the
            // call; optlen matches its size.
            unsafe {
                setsockopt(
                    sock.as_raw_fd(),
                    SOL_SOCKET,
                    opt,
                    v.to_ne_bytes().as_ptr(),
                    4,
                );
            }
        }
    }

    /// One layout guard at first use: the hand-declared headers must have
    /// the 64-bit Linux sizes or every syscall below corrupts memory.
    fn assert_abi() {
        assert_eq!(std::mem::size_of::<MsgHdr>(), 56, "msghdr ABI drift");
        assert_eq!(std::mem::size_of::<MMsgHdr>(), 64, "mmsghdr ABI drift");
        assert_eq!(std::mem::size_of::<IoVec>(), 16, "iovec ABI drift");
    }

    fn zeroed_hdr() -> MMsgHdr {
        MMsgHdr {
            hdr: MsgHdr {
                name: std::ptr::null_mut(),
                namelen: 0,
                iov: std::ptr::null_mut(),
                iovlen: 0,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        }
    }

    /// Serialize `dest` into `storage`, returning the sockaddr length.
    fn write_sockaddr(dest: SocketAddr, storage: &mut SockAddrStorage) -> u32 {
        let d = &mut storage.data;
        match dest {
            SocketAddr::V4(a) => {
                d[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                d[2..4].copy_from_slice(&a.port().to_be_bytes());
                d[4..8].copy_from_slice(&a.ip().octets());
                d[8..16].fill(0);
                16
            }
            SocketAddr::V6(a) => {
                d[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                d[2..4].copy_from_slice(&a.port().to_be_bytes());
                d[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                d[8..24].copy_from_slice(&a.ip().octets());
                d[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                28
            }
        }
    }

    /// Fill the leading `bufs` from the socket: blocks for the first
    /// datagram (respecting the socket's read timeout), then drains
    /// whatever else is queued. Returns how many buffers were filled;
    /// `segs[i]` carries the GRO segment size for coalesced buffers
    /// (0 for plain datagrams).
    pub(super) fn recvmmsg_into(
        sock: &UdpSocket,
        bufs: &mut [PoolBuf],
        segs: &mut [u32],
    ) -> io::Result<usize> {
        assert_abi();
        let n = bufs.len().min(super::MAX_BATCH).min(segs.len());
        let mut iovecs = [IoVec { base: std::ptr::null_mut(), len: 0 }; super::MAX_BATCH];
        let mut ctrls = [CtrlBuf { data: [0; CTRL_LEN] }; super::MAX_BATCH];
        let mut hdrs = [zeroed_hdr(); super::MAX_BATCH];
        for (i, buf) in bufs.iter_mut().take(n).enumerate() {
            let slab = buf.slab_mut();
            iovecs[i] = IoVec { base: slab.as_mut_ptr(), len: slab.len() };
            hdrs[i].hdr.iov = &mut iovecs[i];
            hdrs[i].hdr.iovlen = 1;
            hdrs[i].hdr.control = ctrls[i].data.as_mut_ptr();
            hdrs[i].hdr.controllen = CTRL_LEN;
        }
        // SAFETY: `hdrs[..n]` is a valid mmsghdr array; every iovec and
        // control pointer references a distinct live slab or stack buffer
        // borrowed for the duration of the call; no pointer outlives this
        // function.
        let r = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                hdrs.as_mut_ptr(),
                n as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = r as usize;
        for i in 0..got {
            bufs[i].set_filled(hdrs[i].len as usize);
            segs[i] = parse_gro_size(&ctrls[i], hdrs[i].hdr.controllen);
        }
        Ok(got)
    }

    /// Pull the GRO segment size out of a received control buffer, 0 when
    /// absent (i.e. an ordinary single datagram).
    fn parse_gro_size(ctrl: &CtrlBuf, controllen: usize) -> u32 {
        let hdr_len = std::mem::size_of::<CMsgHdr>();
        let mut at = 0usize;
        while at + hdr_len <= controllen.min(CTRL_LEN) {
            let d = &ctrl.data;
            let len = usize::from_ne_bytes(d[at..at + 8].try_into().expect("8 bytes"));
            let level = i32::from_ne_bytes(d[at + 8..at + 12].try_into().expect("4 bytes"));
            let ty = i32::from_ne_bytes(d[at + 12..at + 16].try_into().expect("4 bytes"));
            if len < hdr_len || at + len > CTRL_LEN {
                break;
            }
            if level == SOL_UDP && ty == UDP_GRO && len >= hdr_len + 4 {
                let v = i32::from_ne_bytes(
                    d[at + hdr_len..at + hdr_len + 4].try_into().expect("4 bytes"),
                );
                return u32::try_from(v).unwrap_or(0);
            }
            // CMSG_ALIGN to the next header.
            at += (len + 7) & !7;
        }
        0
    }

    /// Send every frame of `chunk` (at most [`super::MAX_BATCH`]),
    /// pushing one outcome per frame in order. `sendmmsg` stops at the
    /// first failing frame, so the loop records that frame's error and
    /// resumes with the rest — identical per-destination accounting to a
    /// `send_to` loop.
    pub(super) fn sendmmsg_all(
        sock: &UdpSocket,
        chunk: &[SendFrame<'_>],
        results: &mut Vec<io::Result<()>>,
    ) {
        assert_abi();
        let n = chunk.len().min(super::MAX_BATCH);
        let mut iovecs = [IoVec { base: std::ptr::null_mut(), len: 0 }; super::MAX_BATCH];
        let mut hdrs = [zeroed_hdr(); super::MAX_BATCH];
        let mut addrs = [SockAddrStorage { data: [0; 128] }; super::MAX_BATCH];
        for i in 0..n {
            let f = &chunk[i];
            // The kernel never writes through a send iovec; the cast only
            // satisfies the shared msghdr layout.
            iovecs[i] = IoVec { base: f.data.as_ptr() as *mut u8, len: f.data.len() };
            let alen = write_sockaddr(f.dest, &mut addrs[i]);
            hdrs[i].hdr.name = addrs[i].data.as_mut_ptr();
            hdrs[i].hdr.namelen = alen;
            hdrs[i].hdr.iov = &mut iovecs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        let mut done = 0usize;
        while done < n {
            // SAFETY: as in `recvmmsg_into`; name/iov pointers reference
            // the stack arrays above, which outlive the call.
            let r = unsafe {
                sendmmsg(
                    sock.as_raw_fd(),
                    hdrs.as_mut_ptr().wrapping_add(done),
                    (n - done) as u32,
                    0,
                )
            };
            if r > 0 {
                for _ in 0..r as usize {
                    results.push(Ok(()));
                }
                done += r as usize;
            } else {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                // The first unsent frame caused this error; charge it and
                // move on so the rest of the batch still goes out.
                results.push(Err(e));
                done += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let to = b.local_addr().unwrap();
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        (a, b, to)
    }

    /// Split received buffers into logical frames (undoing GRO coalescing).
    fn flatten(got: &[RecvFrame]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        for r in got {
            match r.seg_size as usize {
                0 => frames.push(r.buf.to_vec()),
                s => frames.extend(r.buf.chunks(s).map(|c| c.to_vec())),
            }
        }
        frames
    }

    fn exercise_backend(
        mut tx: Box<dyn BatchSocket>,
        mut rx: Box<dyn BatchSocket>,
        to: SocketAddr,
        frames: Vec<Vec<u8>>,
    ) {
        let send: Vec<SendFrame<'_>> =
            frames.iter().map(|f| SendFrame { dest: to, data: f }).collect();
        let mut results = Vec::new();
        tx.send_batch(&send, &mut results);
        assert_eq!(results.len(), frames.len());
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");

        let pool = BufferPool::new(4, 2048);
        let mut got: Vec<RecvFrame> = Vec::new();
        while got.iter().map(RecvFrame::frame_count).sum::<usize>() < frames.len() {
            rx.recv_batch(&pool, 8, &mut got).unwrap();
        }
        assert_eq!(flatten(&got), frames, "delivered sequence differs");
    }

    fn varied_frames() -> Vec<Vec<u8>> {
        (0..10u8).map(|i| vec![i; 3 + i as usize]).collect()
    }

    #[test]
    fn portable_roundtrip_preserves_order_and_bytes() {
        let (a, b, to) = pair();
        exercise_backend(
            Box::new(PortableSocket::new(a)),
            Box::new(PortableSocket::new(b)),
            to,
            varied_frames(),
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_roundtrip_preserves_order_and_bytes() {
        let (a, b, to) = pair();
        exercise_backend(
            Box::new(MmsgSocket::new(a)),
            Box::new(MmsgSocket::new(b)),
            to,
            varied_frames(),
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_gso_run_roundtrips_equal_size_frames() {
        // Equal-size frames to one destination form a GSO run on the send
        // side; whether the receiver sees one coalesced buffer (GRO) or
        // kernel-segmented datagrams, the flattened sequence must match.
        let (a, b, to) = pair();
        let frames: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 100]).collect();
        exercise_backend(
            Box::new(MmsgSocket::new(a)),
            Box::new(MmsgSocket::new(b)),
            to,
            frames,
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_pool_dry_falls_back_to_exact_copies() {
        let (a, b, to) = pair();
        let mut tx = MmsgSocket::new(a);
        let mut rx = MmsgSocket::new(b);
        let pool = BufferPool::new(1, 2048);
        let _hold = pool.try_take().unwrap(); // keep the pool dry
        let data = b"starved".to_vec();
        let mut results = Vec::new();
        tx.send_batch(&[SendFrame { dest: to, data: &data }], &mut results);
        assert!(results[0].is_ok());
        let mut got = Vec::new();
        rx.recv_batch(&pool, 4, &mut got).unwrap();
        assert_eq!(&*got[0].buf, b"starved");
        assert!(pool.stats().1 >= 1, "dry pool must count a miss");
    }

    #[test]
    fn batch_options_defaults_are_generous() {
        let o = BatchOptions::default();
        assert!(o.recv_batch >= 16 && o.recv_batch <= MAX_BATCH);
        assert!(o.inbound_capacity >= 1024);
        assert!(!o.force_portable);
    }
}

//! `srm-hub` — host many SRM sessions in one process over one socket.
//!
//! ```text
//! srm-hub --bind 127.0.0.1:7500 --control 127.0.0.1:7600 --shards 4
//! echo '{"cmd":"create","group":1,"peers":["127.0.0.1:7401"]}' | srm-hub --bind 127.0.0.1:7500
//! ```
//!
//! The hub binds one UDP socket and demultiplexes inbound frames by group
//! id onto a fixed pool of shard reactors, each hosting many SRM agents —
//! the paper's light-weight sessions (§I) made literal: adding a session
//! adds an agent, a timer wheel, and an RNG, never a socket or a thread.
//!
//! Control is line-JSON (see `srm_transport::control`): one command per
//! line on **stdin** and/or a local **TCP listener** (`--control`), one
//! reply line each. `bash` can drive the TCP surface with `/dev/tcp`
//! redirection — no client required:
//!
//! ```text
//! exec 3<>/dev/tcp/127.0.0.1/7600
//! echo '{"cmd":"create","group":3,"peers":["127.0.0.1:7401"],"rate":65536}' >&3
//! read -r reply <&3
//! ```
//!
//! `{"cmd":"stop"}` drains every group (final session message, WAL flush)
//! and exits the process; `--duration` bounds the run for scripts.

use srm_transport::hub::{Hub, HubOptions};
use srm_transport::{handle_line, parse_command, Command, HubHandle};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: srm-hub --bind ADDR [--control ADDR] [--shards N] [--seed N]
               [--store DIR] [--batch N] [--pool N]
               [--stats-file FILE] [--stats-interval F]
               [--duration SECS] [--quiet]

  --bind A          the shared UDP socket every hosted group sends and
                    receives on (required)
  --control A       local TCP address for the line-JSON control plane;
                    stdin always accepts the same commands
  --shards N        shard reactor threads; groups hash onto them (default 4)
  --seed N          hub seed; each group's RNG derives from it (default 1)
  --store DIR       durable ADU stores: group G logs under DIR/G/
  --batch N         frames per recv/send syscall (default 32; 0 forces the
                    portable one-at-a-time backend)
  --pool N          receive/send buffer-pool slabs (default 64)
  --stats-file F    append a metrics-snapshot JSONL line to F every
                    --stats-interval seconds (flushed per line)
  --stats-interval  seconds between snapshots (default 1)
  --duration SECS   exit after this long (default: run until stop/EOF)
  --quiet           do not echo control replies to stderr

commands (one JSON object per line, one reply line each):
  {\"cmd\":\"create\",\"group\":G,\"peers\":[\"IP:PORT\",..],\"id\":N,\"members\":N,
   \"rate\":BYTES_PER_SEC,\"burst\":BYTES,\"dist_ms\":MS}
  {\"cmd\":\"join\", ...}    idempotent create
  {\"cmd\":\"send\",\"group\":G,\"text\":\"...\",\"count\":N}
  {\"cmd\":\"drain\",\"group\":G}
  {\"cmd\":\"stats\"}
  {\"cmd\":\"stop\"}         drain all groups and exit";

fn die(msg: &str) -> ! {
    eprintln!("srm-hub: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    bind: SocketAddr,
    control: Option<SocketAddr>,
    shards: usize,
    seed: u64,
    store: Option<PathBuf>,
    batch: Option<usize>,
    pool: Option<usize>,
    stats_file: Option<String>,
    stats_interval: f64,
    duration: Option<f64>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let mut bind = None;
    let mut control = None;
    let mut shards = 4usize;
    let mut seed = 1u64;
    let mut store = None;
    let mut batch = None;
    let mut pool = None;
    let mut stats_file = None;
    let mut stats_interval = 1.0f64;
    let mut duration = None;
    let mut quiet = false;
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--bind" => {
                bind = Some(
                    next(&mut argv, "--bind")
                        .parse()
                        .unwrap_or_else(|_| die("--bind must be host:port")),
                )
            }
            "--control" => {
                control = Some(
                    next(&mut argv, "--control")
                        .parse()
                        .unwrap_or_else(|_| die("--control must be host:port")),
                )
            }
            "--shards" => {
                let n: usize = next(&mut argv, "--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards must be an integer"));
                if !(1..=64).contains(&n) {
                    die("--shards must be in 1..=64");
                }
                shards = n;
            }
            "--seed" => {
                seed = next(&mut argv, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer"))
            }
            "--store" => store = Some(PathBuf::from(next(&mut argv, "--store"))),
            "--batch" => {
                batch = Some(
                    next(&mut argv, "--batch")
                        .parse()
                        .unwrap_or_else(|_| die("--batch must be an integer")),
                )
            }
            "--pool" => {
                let n: usize = next(&mut argv, "--pool")
                    .parse()
                    .unwrap_or_else(|_| die("--pool must be an integer"));
                if n == 0 {
                    die("--pool must be at least 1");
                }
                pool = Some(n);
            }
            "--stats-file" => stats_file = Some(next(&mut argv, "--stats-file")),
            "--stats-interval" => {
                stats_interval = next(&mut argv, "--stats-interval")
                    .parse()
                    .unwrap_or_else(|_| die("--stats-interval must be seconds"));
                if stats_interval <= 0.0 {
                    die("--stats-interval must be positive");
                }
            }
            "--duration" => {
                duration = Some(
                    next(&mut argv, "--duration")
                        .parse()
                        .unwrap_or_else(|_| die("--duration must be seconds")),
                )
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    Args {
        bind: bind.unwrap_or_else(|| die("--bind is required")),
        control,
        shards,
        seed,
        store,
        batch,
        pool,
        stats_file,
        stats_interval,
        duration,
        quiet,
    }
}

/// Execute one control line, echo the reply to its writer, and flag a
/// `stop` so the main loop can exit after the drain.
fn serve_line(hub: &HubHandle, line: &str, out: &mut dyn std::io::Write, quit: &AtomicBool, quiet: bool) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let is_stop = matches!(parse_command(line), Ok(Command::Stop));
    let reply = handle_line(hub, line);
    let _ = writeln!(out, "{reply}").and_then(|()| out.flush());
    if !quiet {
        eprintln!("srm-hub: {reply}");
    }
    if is_stop {
        quit.store(true, Ordering::Relaxed);
    }
}

/// One TCP control connection: read command lines, write reply lines.
fn serve_conn(hub: HubHandle, stream: TcpStream, quit: Arc<AtomicBool>, quiet: bool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        serve_line(&hub, &line, &mut writer, &quit, quiet);
        if quit.load(Ordering::Relaxed) {
            break;
        }
    }
}

fn main() {
    let args = parse_args();
    let registry = args.stats_file.is_some().then(obs::MetricsRegistry::new);
    let mut opts = HubOptions {
        shards: args.shards,
        seed: args.seed,
        metrics: registry.clone(),
        store_root: args.store.clone(),
        ..HubOptions::default()
    };
    match args.batch {
        Some(0) => opts.batch.force_portable = true,
        Some(n) => {
            opts.batch.recv_batch = n;
            opts.batch.send_batch = n;
        }
        None => {}
    }
    if let Some(n) = args.pool {
        opts.batch.pool_slabs = n;
    }

    let hub = match Hub::spawn(args.bind, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("srm-hub: cannot start on {}: {e}", args.bind);
            std::process::exit(1);
        }
    };
    eprintln!(
        "srm-hub: {} shards on {}{}",
        hub.shards(),
        hub.local_addr(),
        match args.control {
            Some(c) => format!(", control on {c}"),
            None => ", control on stdin".to_string(),
        }
    );

    let quit = Arc::new(AtomicBool::new(false));

    // Stats emitter: one flushed JSONL line per interval (same contract as
    // srm-node's --stats-file: interruption loses at most one interval).
    let stats_stop = Arc::new(AtomicBool::new(false));
    let stats_thread = registry.map(|reg| {
        let stop = Arc::clone(&stats_stop);
        let path = args.stats_file.clone().expect("stats file set with registry");
        let interval = Duration::from_secs_f64(args.stats_interval);
        let stats_hub = hub.clone();
        std::thread::spawn(move || {
            let mut file = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("srm-hub: {path}: {e}");
                    return;
                }
            };
            loop {
                let stopping = stop.load(Ordering::Relaxed);
                // stats() refreshes the hub-level registry mirrors before
                // the snapshot is taken.
                let _ = stats_hub.stats();
                let snap = reg.snapshot();
                let _ = writeln!(file, "{}", snap.to_json_line()).and_then(|()| file.flush());
                if stopping {
                    return;
                }
                let until = Instant::now() + interval;
                while Instant::now() < until && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        })
    });

    // TCP control surface: non-blocking accept loop so it can notice quit;
    // each connection gets its own serving thread.
    let tcp_thread = args.control.map(|addr| {
        let listener = TcpListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot bind control {addr}: {e}")));
        listener
            .set_nonblocking(true)
            .expect("nonblocking accept is settable");
        let hub = hub.clone();
        let quit = Arc::clone(&quit);
        let quiet = args.quiet;
        std::thread::spawn(move || {
            while !quit.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let hub = hub.clone();
                        let quit = Arc::clone(&quit);
                        std::thread::spawn(move || serve_conn(hub, stream, quit, quiet));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        })
    });

    // Stdin control surface. EOF does NOT quit (scripts often run the hub
    // with stdin closed); only `stop`, `--duration`, or a signal end it.
    {
        let hub = hub.clone();
        let quit = Arc::clone(&quit);
        let quiet = args.quiet;
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            let mut out = std::io::stdout();
            loop {
                line.clear();
                match stdin.read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => serve_line(&hub, &line, &mut out, &quit, quiet),
                }
            }
        });
    }

    let deadline = args
        .duration
        .map(|d| Instant::now() + Duration::from_secs_f64(d.max(0.0)));
    while !quit.load(Ordering::Relaxed) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Orderly exit: drain every still-hosted group (stop already did this;
    // drains are idempotent on an empty hub), then join the threads.
    let drained = hub.drain_all();
    let st = hub.stats();
    hub.shutdown();
    if let Some(t) = tcp_thread {
        quit.store(true, Ordering::Relaxed);
        let _ = t.join();
    }
    if let Some(t) = stats_thread {
        stats_stop.store(true, Ordering::Relaxed);
        let _ = t.join();
    }
    eprintln!(
        "srm-hub: done — groups_drained={} frames_attempted={} frames_sent={} send_errors={} \
         rx_frames={} unjoined={} overflow={}",
        drained.groups,
        st.frames_attempted,
        st.frames_sent,
        st.send_errors,
        st.rx_frames,
        st.rx_unjoined_group,
        st.inbound_overflow
    );
}

//! `srm-node` — run one SRM session member over live UDP sockets.
//!
//! ```text
//! srm-node join --id 2 --bind 127.0.0.1:7402 --peers 127.0.0.1:7401,127.0.0.1:7403
//! srm-node send --id 1 --bind 127.0.0.1:7401 --peers ... --text "draw a blue line"
//! srm-node join --id 3 --bind 0.0.0.0:7400 --mcast 239.66.66.0:7400
//! ```
//!
//! `join` participates (receives, answers requests, repairs); `send`
//! additionally multicasts each `--text` as one ADU. Both run for
//! `--duration` seconds, print delivered ADUs, and with `--trace FILE`
//! write the node's obs recovery timeline as JSONL on exit.

use bytes::Bytes;
use netsim::GroupId;
use srm_transport::{Mode, Node, NodeOptions};
use srm::{PageId, SourceId, SrmConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: srm-node <join|send> --id N --bind ADDR (--peers A,B,.. | --mcast ADDR)
                [--group N] [--members N] [--text STRING]... [--duration SECS]
                [--trace FILE] [--seed N] [--quiet]

  join        participate in the session (receive, request, repair)
  send        also multicast each --text as one ADU
  --id N      this member's source id (unique small integer, required)
  --bind A    local socket address, e.g. 127.0.0.1:7401 (required)
  --peers L   comma-separated peer addresses: loopback/unicast mesh mode
  --mcast A   base multicast group address, e.g. 239.66.66.0:7400
  --group N   SRM group id (default 1)
  --members N expected session size, sets timer constants (default 3)
  --duration  seconds to stay in the session (default 10)
  --trace F   write this node's obs timeline to F as JSONL on exit
  --seed N    timer RNG seed (default derived from --id)
  --drop-data N  force-drop this node's Nth outgoing DATA frame (0-based),
              to demo loss recovery on a clean network
  --quiet     do not print delivered ADUs";

struct Args {
    send_mode: bool,
    id: u64,
    bind: SocketAddr,
    mode: Mode,
    group: u32,
    members: usize,
    texts: Vec<String>,
    duration: f64,
    trace: Option<String>,
    seed: Option<u64>,
    drop_data: Option<u64>,
    quiet: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("srm-node: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_default();
    let send_mode = match cmd.as_str() {
        "join" => false,
        "send" => true,
        "-h" | "--help" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        other => die(&format!("unknown command {other:?}")),
    };
    let mut id = None;
    let mut bind = None;
    let mut peers: Option<Vec<SocketAddr>> = None;
    let mut mcast: Option<SocketAddr> = None;
    let mut group = 1u32;
    let mut members = 3usize;
    let mut texts = Vec::new();
    let mut duration = 10.0f64;
    let mut trace = None;
    let mut seed = None;
    let mut drop_data = None;
    let mut quiet = false;

    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--id" => {
                id = Some(
                    next(&mut argv, "--id")
                        .parse()
                        .unwrap_or_else(|_| die("--id must be an integer")),
                )
            }
            "--bind" => {
                bind = Some(
                    next(&mut argv, "--bind")
                        .parse()
                        .unwrap_or_else(|_| die("--bind must be host:port")),
                )
            }
            "--peers" => {
                let list = next(&mut argv, "--peers");
                let parsed: Result<Vec<SocketAddr>, _> =
                    list.split(',').map(|p| p.trim().parse()).collect();
                peers = Some(parsed.unwrap_or_else(|_| die("--peers must be host:port,host:port")));
            }
            "--mcast" => {
                mcast = Some(
                    next(&mut argv, "--mcast")
                        .parse()
                        .unwrap_or_else(|_| die("--mcast must be group-ip:port")),
                )
            }
            "--group" => {
                group = next(&mut argv, "--group")
                    .parse()
                    .unwrap_or_else(|_| die("--group must be an integer"))
            }
            "--members" => {
                members = next(&mut argv, "--members")
                    .parse()
                    .unwrap_or_else(|_| die("--members must be an integer"))
            }
            "--text" => texts.push(next(&mut argv, "--text")),
            "--duration" => {
                duration = next(&mut argv, "--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration must be seconds"))
            }
            "--trace" => trace = Some(next(&mut argv, "--trace")),
            "--seed" => {
                seed = Some(
                    next(&mut argv, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed must be an integer")),
                )
            }
            "--drop-data" => {
                drop_data = Some(
                    next(&mut argv, "--drop-data")
                        .parse()
                        .unwrap_or_else(|_| die("--drop-data must be an integer")),
                )
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let id = id.unwrap_or_else(|| die("--id is required"));
    let bind = bind.unwrap_or_else(|| die("--bind is required"));
    let mode = match (peers, mcast) {
        (Some(p), None) => Mode::Mesh { peers: p },
        (None, Some(SocketAddr::V4(base))) => Mode::Multicast { base },
        (None, Some(_)) => die("--mcast must be an IPv4 group address"),
        (Some(_), Some(_)) => die("--peers and --mcast are mutually exclusive"),
        (None, None) => die("one of --peers or --mcast is required"),
    };
    if send_mode && texts.is_empty() {
        die("send needs at least one --text");
    }
    Args {
        send_mode,
        id,
        bind,
        mode,
        group,
        members,
        texts,
        duration,
        trace,
        seed,
        drop_data,
        quiet,
    }
}

fn main() {
    let args = parse_args();
    let source = SourceId(args.id);
    let cfg = SrmConfig::fixed(args.members);
    let mut opts = NodeOptions::new(source, GroupId(args.group), cfg);
    opts.trace = args.trace.is_some();
    if let Some(s) = args.seed {
        opts.seed = s;
    }
    if let Some(n) = args.drop_data {
        opts.loss = srm_transport::LossPolicy::none().drop_nth(netsim::flow::DATA, n);
    }

    let node = match Node::spawn(args.bind, args.mode, opts) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("srm-node: cannot start on {}: {e}", args.bind);
            std::process::exit(1);
        }
    };
    eprintln!(
        "srm-node: member {} on {} (group {}), running {:.1}s",
        args.id, args.bind, args.group, args.duration
    );

    if args.send_mode {
        let page = PageId::new(source, 0);
        for t in &args.texts {
            let name = node.send_data(page, Bytes::from(t.clone().into_bytes()));
            eprintln!("srm-node: sent {name}");
        }
    }

    let deadline = Instant::now() + Duration::from_secs_f64(args.duration.max(0.0));
    while Instant::now() < deadline {
        for d in node.take_delivered() {
            if !args.quiet {
                let text = String::from_utf8_lossy(&d.payload);
                let how = if d.via_repair { "repair" } else { "data" };
                println!("{} [{how}] {text}", d.name);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut agent = node.shutdown();
    let m = &agent.metrics;
    eprintln!(
        "srm-node: done — data_sent={} requests_sent={} repairs_sent={} session_sent={}",
        m.data_sent, m.requests_sent, m.repairs_sent, m.session_sent
    );
    if let Some(path) = args.trace {
        let tl = srm_transport::harvest_timeline(std::slice::from_mut(&mut agent));
        match std::fs::write(&path, tl.to_jsonl()) {
            Ok(()) => eprintln!("srm-node: trace: wrote {} events to {path}", tl.len()),
            Err(e) => {
                eprintln!("srm-node: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! `srm-node` — run one SRM session member over live UDP sockets.
//!
//! ```text
//! srm-node join --id 2 --bind 127.0.0.1:7402 --peers 127.0.0.1:7401,127.0.0.1:7403
//! srm-node send --id 1 --bind 127.0.0.1:7401 --peers ... --text "draw a blue line"
//! srm-node join --id 3 --bind 0.0.0.0:7400 --mcast 239.66.66.0:7400
//! srm-node soak --nodes 4 --secs 6 --chaos "loss=0.15,burst=0.9@1s+2s"
//! ```
//!
//! `join` participates (receives, answers requests, repairs); `send`
//! additionally multicasts each `--text` as one ADU. Both run for
//! `--duration` seconds, print delivered ADUs, and with `--trace FILE`
//! write the node's obs timeline as JSONL. `--chaos SPEC` applies a
//! scripted chaos plan to the node's send path.
//!
//! `monitor` joins the group **read-only**: it never sends a frame, and
//! reconstructs per-member health — highest-seq lag, RTT from timestamp
//! echoes, alive/suspect/dead, loss — purely from the session messages it
//! receives (Section III-A is the observability substrate). On a unicast
//! mesh the senders must list the monitor's address among their `--peers`;
//! with `--mcast` it simply joins the group address.
//!
//! `soak` runs the whole chaos-soak harness in-process: a 3–5 node
//! loopback mesh under a scripted chaos plan, asserting eventual delivery
//! after heal, zero reactor deaths, bounded queue growth, and full frame
//! accounting. Exit status 1 means an invariant was violated.
//!
//! ## Output files survive interruption
//!
//! std-only Rust has no signal handling, so instead of buffering output
//! until a clean exit, every sink is **incremental**: `--stats-file` lines
//! are flushed per interval, `--trace` chunks are drained from the reactor
//! and appended roughly once a second, and `monitor --out` flushes per
//! refresh. Killing the process (SIGINT included) loses at most the last
//! partial interval. For an *orderly* early exit, type `quit` on stdin:
//! the node leaves the session before `--duration`, drains every sink,
//! and flushes the WAL, losing nothing at all.
//!
//! ## Durability
//!
//! `--store DIR` appends every ADU this node holds to a CRC-framed
//! write-ahead log under DIR and replays it on the next start, so a
//! killed member restarts repair-capable instead of blank. Repairs for
//! payloads evicted from the in-memory cache (`--store-cache`) are
//! served from the log.

use bytes::Bytes;
use netsim::GroupId;
use srm_transport::{
    Envelope, GroupMonitor, Mode, Node, NodeOptions, SoakOptions, StoreOptions, WallClock,
};
use srm::{LivenessConfig, PageId, SourceId, SrmConfig};
use std::io::Write as _;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: srm-node <join|send> --id N --bind ADDR (--peers A,B,.. | --mcast ADDR)
                [--group N] [--members N] [--text STRING]... [--duration SECS]
                [--trace FILE] [--trace-cap N] [--seed N] [--chaos SPEC]
                [--stats-file FILE] [--stats-addr ADDR] [--stats-interval F]
                [--store DIR] [--fsync always|never|every=N]
                [--store-cache N] [--snapshot-every N]
                [--batch N] [--pool N] [--quiet]
       srm-node monitor --bind ADDR [--mcast ADDR] [--group N] [--members N]
                [--duration SECS] [--refresh F] [--out FILE]
                [--suspect F] [--dead F] [--quiet]
       srm-node soak [--nodes N] [--secs F] [--adus N] [--chaos SPEC]
                [--seed N] [--settle F] [--group N] [--trace FILE]

  join        participate in the session (receive, request, repair)
  send        also multicast each --text as one ADU
  monitor     passively observe the group: derive per-member health from
              received session messages; never transmits a frame
  soak        run an in-process multi-node chaos soak and report invariants
  --id N      this member's source id (unique small integer, required)
  --bind A    local socket address, e.g. 127.0.0.1:7401 (required)
  --peers L   comma-separated peer addresses: loopback/unicast mesh mode
  --mcast A   base multicast group address, e.g. 239.66.66.0:7400
  --group N   SRM group id (default 1)
  --members N expected session size, sets timer constants (default 3)
  --duration  seconds to stay in the session (default 10)
  --trace F   write the obs timeline to F as JSONL on exit
  --seed N    timer + chaos RNG seed (default derived from --id)
  --drop-data N  force-drop this node's Nth outgoing DATA frame (0-based),
              to demo loss recovery on a clean network
  --chaos S   scripted chaos spec, e.g.
              loss=0.1,dup=0.05,reorder=0.2:40ms,burst=0.9@1s+2s,blackhole=2@1s+3s
              (blackhole peer indexes are 1-based into --peers)
  --quiet     do not print delivered ADUs (monitor: no health table)
  --trace-cap N     bound the in-memory trace ring to N events (default
              65536 when tracing; 0 = unbounded, the simulator's mode)
  --stats-file F    append a versioned metrics-snapshot JSONL line to F
              every --stats-interval seconds (flushed per line)
  --stats-addr A    send a Prometheus-style text exposition to UDP A
              every --stats-interval seconds
  --stats-interval  seconds between metric snapshots (default 1)
  --store DIR durable ADU store: log every ADU to a write-ahead log under
              DIR and rehydrate it on the next start, so a killed member
              restarts repair-capable (off by default)
  --fsync P   WAL fsync policy: always, never, or every=N (default every=8)
  --store-cache N   keep at most N payloads per stream in RAM; older
              repairs are served from the log (default: keep all resident)
  --snapshot-every N  compact the log every N appends (0 = never)
  --batch N   frames per recv/send syscall on the batched datapath
              (default 32; 0 forces the portable one-at-a-time backend)
  --pool N    receive/send buffer-pool slabs (default 64); more slabs
              absorb bigger floods before falling back to heap buffers
  Typing `quit` on stdin leaves the session early but cleanly: sinks
  drain and the WAL flushes before exit.
  monitor only:
  --refresh F render the group-health table (and append an --out line)
              every F seconds (default 1)
  --out F     append one monitor JSONL line per refresh to F
  --suspect F silence (in nominal session intervals) before a member is
              suspect (default 3)
  --dead F    silence before a member is dead (default 8)
  soak only:
  --nodes N   mesh size (default 3)
  --secs F    scripted phase seconds (default 6)
  --adus N    ADUs each member publishes (default 4)
  --settle F  post-heal recovery budget in seconds (default 30)
  --group N   multicast group the mesh runs on (default 1)";

struct Args {
    send_mode: bool,
    id: u64,
    bind: SocketAddr,
    mode: Mode,
    group: u32,
    members: usize,
    texts: Vec<String>,
    duration: f64,
    trace: Option<String>,
    trace_cap: Option<usize>,
    seed: Option<u64>,
    drop_data: Option<u64>,
    chaos: Option<String>,
    stats_file: Option<String>,
    stats_addr: Option<SocketAddr>,
    stats_interval: f64,
    store: Option<StoreOptions>,
    batch: Option<usize>,
    pool: Option<usize>,
    quiet: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("srm-node: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_default();
    let send_mode = match cmd.as_str() {
        "join" => false,
        "send" => true,
        "monitor" => run_monitor(argv),
        "soak" => run_soak(argv),
        "-h" | "--help" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        other => die(&format!("unknown command {other:?}")),
    };
    let mut id = None;
    let mut bind = None;
    let mut peers: Option<Vec<SocketAddr>> = None;
    let mut mcast: Option<SocketAddr> = None;
    let mut group = 1u32;
    let mut members = 3usize;
    let mut texts = Vec::new();
    let mut duration = 10.0f64;
    let mut trace = None;
    let mut trace_cap = None;
    let mut seed = None;
    let mut drop_data = None;
    let mut chaos = None;
    let mut stats_file = None;
    let mut stats_addr = None;
    let mut stats_interval = 1.0f64;
    let mut store_dir: Option<String> = None;
    let mut fsync: Option<String> = None;
    let mut store_cache: Option<usize> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut batch: Option<usize> = None;
    let mut pool: Option<usize> = None;
    let mut quiet = false;

    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--id" => {
                id = Some(
                    next(&mut argv, "--id")
                        .parse()
                        .unwrap_or_else(|_| die("--id must be an integer")),
                )
            }
            "--bind" => {
                bind = Some(
                    next(&mut argv, "--bind")
                        .parse()
                        .unwrap_or_else(|_| die("--bind must be host:port")),
                )
            }
            "--peers" => {
                let list = next(&mut argv, "--peers");
                let parsed: Result<Vec<SocketAddr>, _> =
                    list.split(',').map(|p| p.trim().parse()).collect();
                peers = Some(parsed.unwrap_or_else(|_| die("--peers must be host:port,host:port")));
            }
            "--mcast" => {
                mcast = Some(
                    next(&mut argv, "--mcast")
                        .parse()
                        .unwrap_or_else(|_| die("--mcast must be group-ip:port")),
                )
            }
            "--group" => {
                group = next(&mut argv, "--group")
                    .parse()
                    .unwrap_or_else(|_| die("--group must be an integer"))
            }
            "--members" => {
                members = next(&mut argv, "--members")
                    .parse()
                    .unwrap_or_else(|_| die("--members must be an integer"))
            }
            "--text" => texts.push(next(&mut argv, "--text")),
            "--duration" => {
                duration = next(&mut argv, "--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration must be seconds"))
            }
            "--trace" => trace = Some(next(&mut argv, "--trace")),
            "--trace-cap" => {
                trace_cap = Some(
                    next(&mut argv, "--trace-cap")
                        .parse()
                        .unwrap_or_else(|_| die("--trace-cap must be an integer")),
                )
            }
            "--stats-file" => stats_file = Some(next(&mut argv, "--stats-file")),
            "--stats-addr" => {
                stats_addr = Some(
                    next(&mut argv, "--stats-addr")
                        .parse()
                        .unwrap_or_else(|_| die("--stats-addr must be host:port")),
                )
            }
            "--stats-interval" => {
                stats_interval = next(&mut argv, "--stats-interval")
                    .parse()
                    .unwrap_or_else(|_| die("--stats-interval must be seconds"));
                if stats_interval <= 0.0 {
                    die("--stats-interval must be positive");
                }
            }
            "--seed" => {
                seed = Some(
                    next(&mut argv, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed must be an integer")),
                )
            }
            "--drop-data" => {
                drop_data = Some(
                    next(&mut argv, "--drop-data")
                        .parse()
                        .unwrap_or_else(|_| die("--drop-data must be an integer")),
                )
            }
            "--chaos" => chaos = Some(next(&mut argv, "--chaos")),
            "--store" => store_dir = Some(next(&mut argv, "--store")),
            "--fsync" => fsync = Some(next(&mut argv, "--fsync")),
            "--store-cache" => {
                let n: usize = next(&mut argv, "--store-cache")
                    .parse()
                    .unwrap_or_else(|_| die("--store-cache must be an integer"));
                if n == 0 {
                    die("--store-cache must be at least 1");
                }
                store_cache = Some(n);
            }
            "--snapshot-every" => {
                snapshot_every = Some(
                    next(&mut argv, "--snapshot-every")
                        .parse()
                        .unwrap_or_else(|_| die("--snapshot-every must be an integer")),
                )
            }
            "--batch" => {
                batch = Some(
                    next(&mut argv, "--batch")
                        .parse()
                        .unwrap_or_else(|_| die("--batch must be an integer")),
                )
            }
            "--pool" => {
                let n: usize = next(&mut argv, "--pool")
                    .parse()
                    .unwrap_or_else(|_| die("--pool must be an integer"));
                if n == 0 {
                    die("--pool must be at least 1");
                }
                pool = Some(n);
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let id = id.unwrap_or_else(|| die("--id is required"));
    let bind = bind.unwrap_or_else(|| die("--bind is required"));
    let mode = match (peers, mcast) {
        (Some(p), None) => Mode::Mesh { peers: p },
        (None, Some(SocketAddr::V4(base))) => Mode::Multicast { base },
        (None, Some(_)) => die("--mcast must be an IPv4 group address"),
        (Some(_), Some(_)) => die("--peers and --mcast are mutually exclusive"),
        (None, None) => die("one of --peers or --mcast is required"),
    };
    if send_mode && texts.is_empty() {
        die("send needs at least one --text");
    }
    let store = match store_dir {
        Some(dir) => {
            let mut so = StoreOptions::new(dir);
            if let Some(p) = &fsync {
                so.config.fsync =
                    srm_store::FsyncPolicy::parse(p).unwrap_or_else(|e| die(&format!("--fsync: {e}")));
            }
            if let Some(n) = snapshot_every {
                // 0 disables snapshot-triggered compaction entirely.
                so.config.snapshot_every = (n > 0).then_some(n);
            }
            so.cache_per_stream = store_cache;
            Some(so)
        }
        None => {
            if fsync.is_some() || store_cache.is_some() || snapshot_every.is_some() {
                die("--fsync/--store-cache/--snapshot-every require --store DIR");
            }
            None
        }
    };
    Args {
        send_mode,
        id,
        bind,
        mode,
        group,
        members,
        texts,
        duration,
        trace,
        trace_cap,
        seed,
        drop_data,
        chaos,
        stats_file,
        stats_addr,
        stats_interval,
        store,
        batch,
        pool,
        quiet,
    }
}

/// Open `path` truncated for incremental appends, or die.
fn create_sink(path: &str) -> std::fs::File {
    std::fs::File::create(path).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Parse the `monitor` subcommand's flags and run the passive observer:
/// receive, decode, feed the [`GroupMonitor`], never send.  Exits 0 after
/// `--duration` seconds (0 = run until killed).
fn run_monitor(mut argv: impl Iterator<Item = String>) -> ! {
    let mut bind: Option<SocketAddr> = None;
    let mut mcast: Option<SocketAddr> = None;
    let mut group = 1u32;
    let mut members = 3usize;
    let mut duration = 0.0f64;
    let mut refresh = 1.0f64;
    let mut out_path: Option<String> = None;
    let mut liveness = LivenessConfig::default();
    let mut quiet = false;
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--bind" => {
                bind = Some(
                    next(&mut argv, "--bind")
                        .parse()
                        .unwrap_or_else(|_| die("--bind must be host:port")),
                )
            }
            "--mcast" => {
                mcast = Some(
                    next(&mut argv, "--mcast")
                        .parse()
                        .unwrap_or_else(|_| die("--mcast must be group-ip:port")),
                )
            }
            "--group" => {
                group = next(&mut argv, "--group")
                    .parse()
                    .unwrap_or_else(|_| die("--group must be an integer"))
            }
            "--members" => {
                members = next(&mut argv, "--members")
                    .parse()
                    .unwrap_or_else(|_| die("--members must be an integer"))
            }
            "--duration" => {
                duration = next(&mut argv, "--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration must be seconds"))
            }
            "--refresh" => {
                refresh = next(&mut argv, "--refresh")
                    .parse()
                    .unwrap_or_else(|_| die("--refresh must be seconds"));
                if refresh <= 0.0 {
                    die("--refresh must be positive");
                }
            }
            "--out" => out_path = Some(next(&mut argv, "--out")),
            "--suspect" => {
                liveness.suspect_after = next(&mut argv, "--suspect")
                    .parse()
                    .unwrap_or_else(|_| die("--suspect must be a number"))
            }
            "--dead" => {
                liveness.dead_after = next(&mut argv, "--dead")
                    .parse()
                    .unwrap_or_else(|_| die("--dead must be a number"))
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown monitor flag {other:?}")),
        }
    }
    let bind = bind.unwrap_or_else(|| die("--bind is required"));
    let socket = UdpSocket::bind(bind).unwrap_or_else(|e| die(&format!("cannot bind {bind}: {e}")));
    if let Some(base) = mcast {
        let SocketAddr::V4(base) = base else { die("--mcast must be an IPv4 group address") };
        // Same group-id → group-address mapping the runtime uses.
        let ip = Ipv4Addr::from(u32::from(*base.ip()).wrapping_add(group));
        socket
            .join_multicast_v4(&ip, &Ipv4Addr::UNSPECIFIED)
            .unwrap_or_else(|e| die(&format!("cannot join {ip}: {e}")));
    }
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout is settable");

    let clock = WallClock::new();
    let cfg = SrmConfig::fixed(members);
    let mut mon = GroupMonitor::new(&cfg, liveness);
    let mut out = out_path.as_deref().map(create_sink);
    eprintln!(
        "srm-node: monitor on {bind} (group {group}), refresh {refresh:.1}s{}",
        if duration > 0.0 { format!(", running {duration:.1}s") } else { String::new() }
    );

    let started = Instant::now();
    let mut next_refresh = started + Duration::from_secs_f64(refresh);
    let mut buf = [0u8; 65_535];
    let mut decode_errors = 0u64;
    loop {
        match socket.recv_from(&mut buf) {
            Ok((n, _)) => match Envelope::decode(&buf[..n]) {
                Ok(env) if env.group == group => {
                    match srm::Message::decode(env.payload.clone()) {
                        Ok(msg) => {
                            if let Some(tr) = mon.observe(clock.now(), &msg) {
                                eprintln!("srm-node: monitor: m{} revived", tr.peer.0);
                            }
                        }
                        Err(_) => decode_errors += 1,
                    }
                }
                Ok(_) => {} // another group's traffic, not ours to judge
                Err(_) => decode_errors += 1,
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => die(&format!("recv: {e}")),
        }
        if Instant::now() >= next_refresh {
            next_refresh += Duration::from_secs_f64(refresh);
            let now = clock.now();
            for tr in mon.sweep(now) {
                let state = match tr.to {
                    srm::PeerState::Alive => "alive",
                    srm::PeerState::Suspect => "suspect",
                    srm::PeerState::Dead => "dead",
                };
                eprintln!("srm-node: monitor: m{} -> {state}", tr.peer.0);
            }
            if !quiet {
                print!("{}", mon.render_table(now));
            }
            if let Some(f) = &mut out {
                // Append-and-flush per refresh so a kill loses at most one
                // interval.
                let line = mon.to_json_line(now);
                if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                    die("monitor --out: write failed");
                }
            }
        }
        if duration > 0.0 && started.elapsed() >= Duration::from_secs_f64(duration) {
            break;
        }
    }
    if decode_errors > 0 {
        eprintln!("srm-node: monitor: {decode_errors} undecodable datagram(s) ignored");
    }
    std::process::exit(0);
}

/// Parse the `soak` subcommand's flags, run the harness, print the report,
/// and exit (status 1 on any invariant violation).
fn run_soak(mut argv: impl Iterator<Item = String>) -> ! {
    let mut opts = SoakOptions::default();
    let mut trace_path: Option<String> = None;
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--nodes" => {
                opts.nodes = next(&mut argv, "--nodes")
                    .parse()
                    .unwrap_or_else(|_| die("--nodes must be an integer"));
                if !(2..=16).contains(&opts.nodes) {
                    die("--nodes must be in 2..=16");
                }
            }
            "--secs" => {
                let secs: f64 = next(&mut argv, "--secs")
                    .parse()
                    .unwrap_or_else(|_| die("--secs must be seconds"));
                opts.duration = Duration::from_secs_f64(secs.max(0.1));
            }
            "--adus" => {
                opts.adus_per_node = next(&mut argv, "--adus")
                    .parse()
                    .unwrap_or_else(|_| die("--adus must be an integer"));
            }
            "--chaos" => opts.chaos = next(&mut argv, "--chaos"),
            "--seed" => {
                opts.seed = next(&mut argv, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer"));
            }
            "--settle" => {
                let secs: f64 = next(&mut argv, "--settle")
                    .parse()
                    .unwrap_or_else(|_| die("--settle must be seconds"));
                opts.settle = Duration::from_secs_f64(secs.max(0.0));
            }
            "--group" => {
                opts.group = next(&mut argv, "--group")
                    .parse()
                    .unwrap_or_else(|_| die("--group must be a group id"));
            }
            "--trace" => {
                trace_path = Some(next(&mut argv, "--trace"));
                opts.trace = true;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown soak flag {other:?}")),
        }
    }
    eprintln!(
        "srm-node: soak — {} nodes, {:.1}s scripted, chaos `{}`, seed {}",
        opts.nodes,
        opts.duration.as_secs_f64(),
        opts.chaos,
        opts.seed
    );
    let report = match srm_transport::soak::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srm-node: soak failed to run: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    print!("{}", report.summary.render("chaos soak"));
    if let (Some(path), Some(tl)) = (trace_path, &report.timeline) {
        match std::fs::write(&path, tl.to_jsonl()) {
            Ok(()) => eprintln!("srm-node: trace: wrote {} events to {path}", tl.len()),
            Err(e) => {
                eprintln!("srm-node: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(if report.violations().is_empty() { 0 } else { 1 });
}

/// Default in-memory trace ring when `--trace` is on and `--trace-cap` is
/// not given: enough for minutes of traffic, bounded against soaks.
const DEFAULT_TRACE_CAP: usize = 65_536;

fn main() {
    let args = parse_args();
    let source = SourceId(args.id);
    let cfg = SrmConfig::fixed(args.members);
    let mut opts = NodeOptions::new(source, GroupId(args.group), cfg);
    opts.trace = args.trace.is_some();
    if opts.trace {
        // 0 means unbounded — the simulator/golden mode.
        opts.trace_capacity = match args.trace_cap {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_TRACE_CAP),
        };
    }
    let registry = (args.stats_file.is_some() || args.stats_addr.is_some())
        .then(obs::MetricsRegistry::new);
    opts.metrics = registry.clone();
    if let Some(s) = args.seed {
        opts.seed = s;
    }
    if let Some(n) = args.drop_data {
        opts.loss = srm_transport::LossPolicy::none().drop_nth(netsim::flow::DATA, n);
    }
    if let Some(spec) = &args.chaos {
        let peers = match &args.mode {
            Mode::Mesh { peers } => peers.clone(),
            Mode::Multicast { .. } => Vec::new(),
        };
        match srm_transport::parse_spec(spec, &peers) {
            Ok(plan) => opts.chaos = Some(plan),
            Err(e) => die(&format!("--chaos: {e}")),
        }
        // Chaos without liveness tracking hides half the story.
        opts.liveness = Some(srm::LivenessConfig::default());
    }
    opts.store = args.store.clone();
    match args.batch {
        // 0 keeps the pooled datapath but moves one datagram per syscall.
        Some(0) => opts.batch.force_portable = true,
        Some(n) => {
            opts.batch.recv_batch = n;
            opts.batch.send_batch = n;
        }
        None => {}
    }
    if let Some(n) = args.pool {
        opts.batch.pool_slabs = n;
    }

    let node = match Node::spawn(args.bind, args.mode, opts) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("srm-node: cannot start on {}: {e}", args.bind);
            std::process::exit(1);
        }
    };
    eprintln!(
        "srm-node: member {} on {} (group {}), running {:.1}s",
        args.id, args.bind, args.group, args.duration
    );

    if args.send_mode {
        let page = PageId::new(source, 0);
        for t in &args.texts {
            let name = node.send_data(page, Bytes::from(t.clone().into_bytes()));
            eprintln!("srm-node: sent {name}");
        }
    }

    // Stats emitter: one line (and/or one UDP exposition) per interval,
    // flushed immediately so interruption loses at most one interval.
    let stats_stop = Arc::new(AtomicBool::new(false));
    let stats_thread = registry.clone().map(|reg| {
        let stop = Arc::clone(&stats_stop);
        let file_path = args.stats_file.clone();
        let sink_addr = args.stats_addr;
        let interval = Duration::from_secs_f64(args.stats_interval);
        std::thread::spawn(move || {
            let mut file = file_path.as_deref().map(create_sink);
            let sock = sink_addr.map(|_| {
                UdpSocket::bind("0.0.0.0:0").expect("ephemeral stats socket binds")
            });
            loop {
                let stopping = stop.load(Ordering::Relaxed);
                let snap = reg.snapshot();
                if let Some(f) = &mut file {
                    let _ = writeln!(f, "{}", snap.to_json_line()).and_then(|()| f.flush());
                }
                if let (Some(s), Some(addr)) = (&sock, sink_addr) {
                    let _ = s.send_to(snap.render_prometheus("srm").as_bytes(), addr);
                }
                if stopping {
                    // That snapshot was the final, post-shutdown one.
                    return;
                }
                // Sleep in short slices so shutdown emits promptly.
                let until = Instant::now() + interval;
                while Instant::now() < until && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        })
    });

    let mut trace_sink = args.trace.as_deref().map(create_sink);
    let mut trace_events = 0usize;
    // Drain the reactor's trace rings into the file roughly once a second.
    let drain_trace = |node: &srm_transport::NodeHandle,
                           sink: &mut Option<std::fs::File>,
                           total: &mut usize| {
        let Some(f) = sink.as_mut() else { return };
        let (member, events, transport) =
            node.exec(|a, _| (a.id.0, a.obs.take_events(), a.transport_obs.take_events()));
        let mut tl = obs::Timeline::new();
        tl.add_member(member, events);
        tl.add_transport(member, transport);
        if tl.is_empty() {
            return;
        }
        *total += tl.len();
        if write!(f, "{}", tl.to_jsonl()).and_then(|()| f.flush()).is_err() {
            eprintln!("srm-node: trace write failed");
        }
    };

    // `quit` on stdin requests an orderly early exit: the main loop ends,
    // sinks drain, and shutdown flushes the WAL — nothing is lost. EOF
    // alone does NOT quit (scripts often run nodes with stdin closed), so
    // the reader thread just parks until the process exits.
    let quit = Arc::new(AtomicBool::new(false));
    {
        let quit = Arc::clone(&quit);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {
                        let cmd = line.trim();
                        if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("q") {
                            quit.store(true, Ordering::Relaxed);
                            return;
                        }
                        if !cmd.is_empty() {
                            eprintln!("srm-node: unknown stdin command {cmd:?} (try `quit`)");
                        }
                    }
                }
            }
        });
    }

    let deadline = Instant::now() + Duration::from_secs_f64(args.duration.max(0.0));
    let mut next_drain = Instant::now() + Duration::from_secs(1);
    // Joiners follow the first page they see (the whiteboard model): their
    // session messages then report that page's state, which both drives
    // the group's gap detection and gives a passive monitor its lag signal.
    let mut following = args.send_mode;
    while Instant::now() < deadline && !quit.load(Ordering::Relaxed) {
        for d in node.take_delivered() {
            if !following {
                following = true;
                let page = d.name.page;
                node.exec(move |a, _| a.set_current_page(page));
            }
            if !args.quiet {
                let text = String::from_utf8_lossy(&d.payload);
                let how = if d.via_repair { "repair" } else { "data" };
                println!("{} [{how}] {text}", d.name);
            }
        }
        if Instant::now() >= next_drain {
            next_drain += Duration::from_secs(1);
            drain_trace(&node, &mut trace_sink, &mut trace_events);
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    if quit.load(Ordering::Relaxed) {
        eprintln!("srm-node: quit — leaving the session cleanly");
    }
    // Final trace drain while the reactor still answers exec.
    drain_trace(&node, &mut trace_sink, &mut trace_events);
    let mut agent = node.shutdown();
    let m = &agent.metrics;
    eprintln!(
        "srm-node: done — data_sent={} requests_sent={} repairs_sent={} session_sent={}",
        m.data_sent, m.requests_sent, m.repairs_sent, m.session_sent
    );
    if let Some(ps) = agent.store().persistence_stats() {
        eprintln!(
            "srm-node: store — appends={} bytes={} fsyncs={} snapshots={} disk_reads={} segments={} live={}",
            ps.appends, ps.bytes_appended, ps.fsyncs, ps.snapshots, ps.reads, ps.segments, ps.live_records
        );
    }
    if let Some(f) = &mut trace_sink {
        // Whatever accumulated between the last drain and shutdown.
        let tl = srm_transport::harvest_timeline(std::slice::from_mut(&mut agent));
        trace_events += tl.len();
        if write!(f, "{}", tl.to_jsonl()).and_then(|()| f.flush()).is_err() {
            eprintln!("srm-node: trace write failed");
            std::process::exit(1);
        }
        eprintln!(
            "srm-node: trace: wrote {} events to {}",
            trace_events,
            args.trace.as_deref().unwrap_or("-")
        );
    }
    if let Some(t) = stats_thread {
        stats_stop.store(true, Ordering::Relaxed);
        let _ = t.join();
        eprintln!("srm-node: stats: final snapshot flushed");
    }
}

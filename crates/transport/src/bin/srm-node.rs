//! `srm-node` — run one SRM session member over live UDP sockets.
//!
//! ```text
//! srm-node join --id 2 --bind 127.0.0.1:7402 --peers 127.0.0.1:7401,127.0.0.1:7403
//! srm-node send --id 1 --bind 127.0.0.1:7401 --peers ... --text "draw a blue line"
//! srm-node join --id 3 --bind 0.0.0.0:7400 --mcast 239.66.66.0:7400
//! srm-node soak --nodes 4 --secs 6 --chaos "loss=0.15,burst=0.9@1s+2s"
//! ```
//!
//! `join` participates (receives, answers requests, repairs); `send`
//! additionally multicasts each `--text` as one ADU. Both run for
//! `--duration` seconds, print delivered ADUs, and with `--trace FILE`
//! write the node's obs timeline as JSONL on exit. `--chaos SPEC` applies
//! a scripted chaos plan to the node's send path.
//!
//! `soak` runs the whole chaos-soak harness in-process: a 3–5 node
//! loopback mesh under a scripted chaos plan, asserting eventual delivery
//! after heal, zero reactor deaths, bounded queue growth, and full frame
//! accounting. Exit status 1 means an invariant was violated.

use bytes::Bytes;
use netsim::GroupId;
use srm_transport::{Mode, Node, NodeOptions, SoakOptions};
use srm::{PageId, SourceId, SrmConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: srm-node <join|send> --id N --bind ADDR (--peers A,B,.. | --mcast ADDR)
                [--group N] [--members N] [--text STRING]... [--duration SECS]
                [--trace FILE] [--seed N] [--chaos SPEC] [--quiet]
       srm-node soak [--nodes N] [--secs F] [--adus N] [--chaos SPEC]
                [--seed N] [--settle F] [--trace FILE]

  join        participate in the session (receive, request, repair)
  send        also multicast each --text as one ADU
  soak        run an in-process multi-node chaos soak and report invariants
  --id N      this member's source id (unique small integer, required)
  --bind A    local socket address, e.g. 127.0.0.1:7401 (required)
  --peers L   comma-separated peer addresses: loopback/unicast mesh mode
  --mcast A   base multicast group address, e.g. 239.66.66.0:7400
  --group N   SRM group id (default 1)
  --members N expected session size, sets timer constants (default 3)
  --duration  seconds to stay in the session (default 10)
  --trace F   write the obs timeline to F as JSONL on exit
  --seed N    timer + chaos RNG seed (default derived from --id)
  --drop-data N  force-drop this node's Nth outgoing DATA frame (0-based),
              to demo loss recovery on a clean network
  --chaos S   scripted chaos spec, e.g.
              loss=0.1,dup=0.05,reorder=0.2:40ms,burst=0.9@1s+2s,blackhole=2@1s+3s
              (blackhole peer indexes are 1-based into --peers)
  --quiet     do not print delivered ADUs
  soak only:
  --nodes N   mesh size (default 3)
  --secs F    scripted phase seconds (default 6)
  --adus N    ADUs each member publishes (default 4)
  --settle F  post-heal recovery budget in seconds (default 30)";

struct Args {
    send_mode: bool,
    id: u64,
    bind: SocketAddr,
    mode: Mode,
    group: u32,
    members: usize,
    texts: Vec<String>,
    duration: f64,
    trace: Option<String>,
    seed: Option<u64>,
    drop_data: Option<u64>,
    chaos: Option<String>,
    quiet: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("srm-node: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_default();
    let send_mode = match cmd.as_str() {
        "join" => false,
        "send" => true,
        "soak" => run_soak(argv),
        "-h" | "--help" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        other => die(&format!("unknown command {other:?}")),
    };
    let mut id = None;
    let mut bind = None;
    let mut peers: Option<Vec<SocketAddr>> = None;
    let mut mcast: Option<SocketAddr> = None;
    let mut group = 1u32;
    let mut members = 3usize;
    let mut texts = Vec::new();
    let mut duration = 10.0f64;
    let mut trace = None;
    let mut seed = None;
    let mut drop_data = None;
    let mut chaos = None;
    let mut quiet = false;

    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--id" => {
                id = Some(
                    next(&mut argv, "--id")
                        .parse()
                        .unwrap_or_else(|_| die("--id must be an integer")),
                )
            }
            "--bind" => {
                bind = Some(
                    next(&mut argv, "--bind")
                        .parse()
                        .unwrap_or_else(|_| die("--bind must be host:port")),
                )
            }
            "--peers" => {
                let list = next(&mut argv, "--peers");
                let parsed: Result<Vec<SocketAddr>, _> =
                    list.split(',').map(|p| p.trim().parse()).collect();
                peers = Some(parsed.unwrap_or_else(|_| die("--peers must be host:port,host:port")));
            }
            "--mcast" => {
                mcast = Some(
                    next(&mut argv, "--mcast")
                        .parse()
                        .unwrap_or_else(|_| die("--mcast must be group-ip:port")),
                )
            }
            "--group" => {
                group = next(&mut argv, "--group")
                    .parse()
                    .unwrap_or_else(|_| die("--group must be an integer"))
            }
            "--members" => {
                members = next(&mut argv, "--members")
                    .parse()
                    .unwrap_or_else(|_| die("--members must be an integer"))
            }
            "--text" => texts.push(next(&mut argv, "--text")),
            "--duration" => {
                duration = next(&mut argv, "--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration must be seconds"))
            }
            "--trace" => trace = Some(next(&mut argv, "--trace")),
            "--seed" => {
                seed = Some(
                    next(&mut argv, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed must be an integer")),
                )
            }
            "--drop-data" => {
                drop_data = Some(
                    next(&mut argv, "--drop-data")
                        .parse()
                        .unwrap_or_else(|_| die("--drop-data must be an integer")),
                )
            }
            "--chaos" => chaos = Some(next(&mut argv, "--chaos")),
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let id = id.unwrap_or_else(|| die("--id is required"));
    let bind = bind.unwrap_or_else(|| die("--bind is required"));
    let mode = match (peers, mcast) {
        (Some(p), None) => Mode::Mesh { peers: p },
        (None, Some(SocketAddr::V4(base))) => Mode::Multicast { base },
        (None, Some(_)) => die("--mcast must be an IPv4 group address"),
        (Some(_), Some(_)) => die("--peers and --mcast are mutually exclusive"),
        (None, None) => die("one of --peers or --mcast is required"),
    };
    if send_mode && texts.is_empty() {
        die("send needs at least one --text");
    }
    Args {
        send_mode,
        id,
        bind,
        mode,
        group,
        members,
        texts,
        duration,
        trace,
        seed,
        drop_data,
        chaos,
        quiet,
    }
}

/// Parse the `soak` subcommand's flags, run the harness, print the report,
/// and exit (status 1 on any invariant violation).
fn run_soak(mut argv: impl Iterator<Item = String>) -> ! {
    let mut opts = SoakOptions::default();
    let mut trace_path: Option<String> = None;
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--nodes" => {
                opts.nodes = next(&mut argv, "--nodes")
                    .parse()
                    .unwrap_or_else(|_| die("--nodes must be an integer"));
                if !(2..=16).contains(&opts.nodes) {
                    die("--nodes must be in 2..=16");
                }
            }
            "--secs" => {
                let secs: f64 = next(&mut argv, "--secs")
                    .parse()
                    .unwrap_or_else(|_| die("--secs must be seconds"));
                opts.duration = Duration::from_secs_f64(secs.max(0.1));
            }
            "--adus" => {
                opts.adus_per_node = next(&mut argv, "--adus")
                    .parse()
                    .unwrap_or_else(|_| die("--adus must be an integer"));
            }
            "--chaos" => opts.chaos = next(&mut argv, "--chaos"),
            "--seed" => {
                opts.seed = next(&mut argv, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer"));
            }
            "--settle" => {
                let secs: f64 = next(&mut argv, "--settle")
                    .parse()
                    .unwrap_or_else(|_| die("--settle must be seconds"));
                opts.settle = Duration::from_secs_f64(secs.max(0.0));
            }
            "--trace" => {
                trace_path = Some(next(&mut argv, "--trace"));
                opts.trace = true;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown soak flag {other:?}")),
        }
    }
    eprintln!(
        "srm-node: soak — {} nodes, {:.1}s scripted, chaos `{}`, seed {}",
        opts.nodes,
        opts.duration.as_secs_f64(),
        opts.chaos,
        opts.seed
    );
    let report = match srm_transport::soak::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srm-node: soak failed to run: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    print!("{}", report.summary.render("chaos soak"));
    if let (Some(path), Some(tl)) = (trace_path, &report.timeline) {
        match std::fs::write(&path, tl.to_jsonl()) {
            Ok(()) => eprintln!("srm-node: trace: wrote {} events to {path}", tl.len()),
            Err(e) => {
                eprintln!("srm-node: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(if report.violations().is_empty() { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    let source = SourceId(args.id);
    let cfg = SrmConfig::fixed(args.members);
    let mut opts = NodeOptions::new(source, GroupId(args.group), cfg);
    opts.trace = args.trace.is_some();
    if let Some(s) = args.seed {
        opts.seed = s;
    }
    if let Some(n) = args.drop_data {
        opts.loss = srm_transport::LossPolicy::none().drop_nth(netsim::flow::DATA, n);
    }
    if let Some(spec) = &args.chaos {
        let peers = match &args.mode {
            Mode::Mesh { peers } => peers.clone(),
            Mode::Multicast { .. } => Vec::new(),
        };
        match srm_transport::parse_spec(spec, &peers) {
            Ok(plan) => opts.chaos = Some(plan),
            Err(e) => die(&format!("--chaos: {e}")),
        }
        // Chaos without liveness tracking hides half the story.
        opts.liveness = Some(srm::LivenessConfig::default());
    }

    let node = match Node::spawn(args.bind, args.mode, opts) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("srm-node: cannot start on {}: {e}", args.bind);
            std::process::exit(1);
        }
    };
    eprintln!(
        "srm-node: member {} on {} (group {}), running {:.1}s",
        args.id, args.bind, args.group, args.duration
    );

    if args.send_mode {
        let page = PageId::new(source, 0);
        for t in &args.texts {
            let name = node.send_data(page, Bytes::from(t.clone().into_bytes()));
            eprintln!("srm-node: sent {name}");
        }
    }

    let deadline = Instant::now() + Duration::from_secs_f64(args.duration.max(0.0));
    while Instant::now() < deadline {
        for d in node.take_delivered() {
            if !args.quiet {
                let text = String::from_utf8_lossy(&d.payload);
                let how = if d.via_repair { "repair" } else { "data" };
                println!("{} [{how}] {text}", d.name);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut agent = node.shutdown();
    let m = &agent.metrics;
    eprintln!(
        "srm-node: done — data_sent={} requests_sent={} repairs_sent={} session_sent={}",
        m.data_sent, m.requests_sent, m.repairs_sent, m.session_sent
    );
    if let Some(path) = args.trace {
        let tl = srm_transport::harvest_timeline(std::slice::from_mut(&mut agent));
        match std::fs::write(&path, tl.to_jsonl()) {
            Ok(()) => eprintln!("srm-node: trace: wrote {} events to {path}", tl.len()),
            Err(e) => {
                eprintln!("srm-node: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

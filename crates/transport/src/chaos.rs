//! Scripted chaos injection for the wall-clock transport.
//!
//! The simulator exercises SRM under faults through `netsim`'s `FaultPlan`;
//! a [`ChaosPlan`] is the same scenario vocabulary translated to a live UDP
//! node: Bernoulli and burst loss, duplication, reordering (frames held
//! back on the reactor's delay queue), payload corruption, per-peer
//! blackhole/partition windows, and delay jitter.  A [`ChaosTransport`]
//! decorates any [`srm::Driver`] with the plan's randomized actions; the
//! per-destination blackhole windows are RNG-free and applied on the send
//! fan-out where destinations exist.
//!
//! Determinism: [`ChaosState`] owns its own seeded RNG, separate from the
//! protocol's timer RNG, and [`ChaosState::verdict`] makes a *fixed number
//! of draws per frame* regardless of which actions trigger.  Same seed +
//! same plan + same frame sequence ⇒ the identical action sequence — the
//! property the chaos proptests pin, and what makes a soak failure
//! replayable from its seed.
//!
//! Corruption damages the frame so that the receiving agent's
//! `Message::decode` fails *cleanly and certainly* (the body-tag byte is
//! overwritten with an invalid tag): corrupt frames become counted decode
//! errors rather than a small chance of aliasing into a live message with a
//! phantom ADU name.

use bytes::Bytes;
use netsim::{GroupId, SendOptions, SimDuration, SimTime, TimerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srm::{Clock, Driver, Transport};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;

/// A half-open activity window `[start, end)` on the node's clock axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl Window {
    /// Does `now` fall inside the window?
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

/// A correlated loss episode: while the window is active, frames drop with
/// probability `p` (instead of the plan's base Bernoulli rate) — the live
/// analogue of `FaultPlan::loss_burst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLoss {
    /// When the burst is active.
    pub window: Window,
    /// Drop probability while active.
    pub p: f64,
}

/// A partition window: frames towards `peer` (or every destination when
/// `None`) are silently swallowed while active — the live analogue of
/// `FaultPlan::partition` + `heal`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Blackhole {
    /// When the blackhole is active.
    pub window: Window,
    /// The destination cut off; `None` cuts every destination.
    pub peer: Option<SocketAddr>,
}

impl Blackhole {
    /// Does this window swallow a frame towards `dest` at `now`?
    pub fn matches(&self, now: SimTime, dest: Option<SocketAddr>) -> bool {
        self.window.contains(now) && (self.peer.is_none() || self.peer == dest)
    }
}

/// A scripted chaos schedule for one node's send path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Base Bernoulli per-frame drop probability.
    pub loss_p: f64,
    /// Per-frame duplication probability.
    pub dup_p: f64,
    /// Per-frame corruption probability.
    pub corrupt_p: f64,
    /// Per-frame reorder (hold-back) probability.
    pub reorder_p: f64,
    /// Base hold-back applied to reordered frames.
    pub reorder_delay: SimDuration,
    /// Uniform random extra delay in `[0, jitter)` added to each reordered
    /// frame.
    pub jitter: SimDuration,
    /// Correlated loss episodes.
    pub bursts: Vec<BurstLoss>,
    /// Partition windows.
    pub blackholes: Vec<Blackhole>,
    /// Restrict the whole plan to one multicast group: frames addressed
    /// to any other group pass through untouched *and undrawn* — they
    /// consume no RNG draws, so the verdict stream for the scoped group
    /// is still a pure function of `(seed, plan, that group's frames)`.
    /// `None` (the default, and the pre-hub behaviour) acts on every
    /// frame. This is what lets one hub shard be chaos-soaked while its
    /// neighbours stay clean.
    pub only_group: Option<u32>,
}

impl ChaosPlan {
    /// An empty plan (no chaos).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Set the base Bernoulli drop probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss_p = p;
        self
    }

    /// Set the per-frame duplication probability.
    pub fn duplication(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Set the per-frame corruption probability.
    pub fn corruption(mut self, p: f64) -> Self {
        self.corrupt_p = p;
        self
    }

    /// Reorder frames with probability `p` by holding them back `delay`.
    pub fn reorder(mut self, p: f64, delay: SimDuration) -> Self {
        self.reorder_p = p;
        self.reorder_delay = delay;
        self
    }

    /// Add uniform `[0, jitter)` noise to each hold-back.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Add a correlated loss episode with drop probability `p` over
    /// `[start, end)`.
    pub fn loss_burst(mut self, p: f64, start: SimTime, end: SimTime) -> Self {
        self.bursts.push(BurstLoss { window: Window { start, end }, p });
        self
    }

    /// Cut one peer off over `[start, end)`.
    pub fn blackhole(mut self, peer: SocketAddr, start: SimTime, end: SimTime) -> Self {
        self.blackholes.push(Blackhole {
            window: Window { start, end },
            peer: Some(peer),
        });
        self
    }

    /// Cut every destination off over `[start, end)`.
    pub fn blackhole_all(mut self, start: SimTime, end: SimTime) -> Self {
        self.blackholes.push(Blackhole { window: Window { start, end }, peer: None });
        self
    }

    /// Scope the plan to one multicast group; other groups' frames pass
    /// through untouched, without consuming RNG draws.
    pub fn scoped_to(mut self, group: u32) -> Self {
        self.only_group = Some(group);
        self
    }

    /// Does the plan act on frames addressed to `group`?
    pub fn applies_to(&self, group: GroupId) -> bool {
        self.only_group.is_none_or(|g| g == group.0)
    }

    /// True if the plan can never act on a frame.
    pub fn is_noop(&self) -> bool {
        self.loss_p <= 0.0
            && self.dup_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.reorder_p <= 0.0
            && self.bursts.is_empty()
            && self.blackholes.is_empty()
    }

    /// The effective drop probability at `now`: the strongest active burst,
    /// or the base Bernoulli rate outside every burst.
    pub fn drop_p(&self, now: SimTime) -> f64 {
        let burst = self
            .bursts
            .iter()
            .filter(|b| b.window.contains(now))
            .map(|b| b.p)
            .fold(f64::NEG_INFINITY, f64::max);
        if burst.is_finite() {
            burst.max(self.loss_p)
        } else {
            self.loss_p
        }
    }

    /// Is a frame towards `dest` swallowed by an active blackhole window?
    /// RNG-free, so the send fan-out can consult it per destination without
    /// perturbing the chaos draw sequence.  `dest = None` (true multicast)
    /// only matches all-destination windows.
    pub fn blackholed(&self, now: SimTime, dest: Option<SocketAddr>) -> bool {
        self.blackholes.iter().any(|b| b.matches(now, dest))
    }

    /// The latest end among all scripted windows — when the schedule has
    /// fully healed (base Bernoulli chaos may continue past it).
    pub fn healed_at(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for b in &self.bursts {
            t = t.max(b.window.end);
        }
        for b in &self.blackholes {
            t = t.max(b.window.end);
        }
        t
    }
}

/// What the chaos draw decided for one frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Deliver the frame at all?  `false` means dropped.
    pub deliver: bool,
    /// Send a second copy.
    pub duplicate: bool,
    /// Damage the frame before sending.
    pub corrupt: bool,
    /// Hold the frame back this long before it reaches the wire.
    pub delay: Option<SimDuration>,
}

/// A [`ChaosPlan`] plus the seeded RNG that animates it.
#[derive(Clone, Debug)]
pub struct ChaosState {
    /// The schedule.
    pub plan: ChaosPlan,
    rng: StdRng,
}

impl ChaosState {
    /// Animate `plan` with a dedicated RNG seeded by `seed`.
    pub fn new(plan: ChaosPlan, seed: u64) -> Self {
        ChaosState { plan, rng: StdRng::seed_from_u64(seed) }
    }

    /// Decide one frame's fate.  Always makes exactly five RNG draws, in a
    /// fixed order, so the decision sequence is a pure function of
    /// `(seed, plan, now-sequence)` — the seeded-determinism contract.
    pub fn verdict(&mut self, now: SimTime) -> Verdict {
        let u_loss: f64 = self.rng.random();
        let u_dup: f64 = self.rng.random();
        let u_corrupt: f64 = self.rng.random();
        let u_reorder: f64 = self.rng.random();
        let u_jitter: f64 = self.rng.random();

        let deliver = u_loss >= self.plan.drop_p(now);
        let duplicate = u_dup < self.plan.dup_p;
        let corrupt = u_corrupt < self.plan.corrupt_p;
        let delay = if u_reorder < self.plan.reorder_p {
            Some(self.plan.reorder_delay + self.plan.jitter.mul_f64(u_jitter))
        } else {
            None
        };
        Verdict { deliver, duplicate, corrupt, delay }
    }
}

/// Per-node tallies of chaos actions, owned by the reactor and published to
/// the node's shared counters at each loop turn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosTally {
    /// Frames dropped (Bernoulli + burst).
    pub dropped: u64,
    /// Extra copies sent.
    pub duplicated: u64,
    /// Frames held back on the delay queue.
    pub delayed: u64,
    /// Frames damaged before sending.
    pub corrupted: u64,
}

/// A frame held back by the reorder model, due for release at `due`.
#[derive(Clone, Debug)]
pub struct DelayedSend {
    /// When to release the frame.
    pub due: SimTime,
    /// Queue-insertion sequence (FIFO tiebreak at equal deadlines).
    pub seq: u64,
    /// Destination group of the held send.
    pub group: GroupId,
    /// Frame payload.
    pub payload: Bytes,
    /// Send options of the held send.
    pub opts: SendOptions,
}

/// Min-queue of held-back frames, ordered by `(due, seq)`.
#[derive(Debug, Default)]
pub struct DelayQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    items: std::collections::BTreeMap<u64, DelayedSend>,
    next_seq: u64,
}

impl DelayQueue {
    /// An empty queue.
    pub fn new() -> Self {
        DelayQueue::default()
    }

    /// Hold a frame until `due`.
    pub fn push(&mut self, due: SimTime, group: GroupId, payload: Bytes, opts: SendOptions) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((due.as_nanos(), seq)));
        self.items.insert(seq, DelayedSend { due, seq, group, payload, opts });
    }

    /// The earliest release time, if any frame is held.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((ns, _))| SimTime::from_nanos(*ns))
    }

    /// Release the earliest frame due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<DelayedSend> {
        match self.heap.peek() {
            Some(Reverse((ns, _))) if SimTime::from_nanos(*ns) <= now => {
                let Reverse((_, seq)) = self.heap.pop().expect("peeked");
                self.items.remove(&seq)
            }
            _ => None,
        }
    }

    /// Held frames.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Damage a frame so the receiving agent's `Message::decode` fails cleanly:
/// the body-tag byte (offset 16, after the 16-byte message header) becomes
/// an invalid tag.  Frames too short to carry a tag are blanked entirely.
pub fn corrupt_payload(payload: &Bytes) -> Bytes {
    const TAG_OFFSET: usize = 16;
    if payload.len() > TAG_OFFSET {
        let mut v = payload.to_vec();
        v[TAG_OFFSET] = 0xFF;
        Bytes::from(v)
    } else {
        Bytes::new()
    }
}

/// Decorates a [`Driver`] with a [`ChaosPlan`]'s frame-level actions.
///
/// Dropped/duplicated/corrupted frames are decided here; reordered frames
/// go onto the reactor-owned [`DelayQueue`] (released by the reactor loop
/// straight to the socket, so a frame is acted on at most once).  Every
/// action is tallied and, when a log is attached, recorded as a typed
/// transport event.
pub struct ChaosTransport<'a, D: Driver> {
    /// The real driver.
    pub inner: &'a mut D,
    /// Seeded chaos decisions.
    pub state: &'a mut ChaosState,
    /// Reactor-owned hold-back queue.
    pub delayq: &'a mut DelayQueue,
    /// Action tallies.
    pub tally: &'a mut ChaosTally,
    /// Typed event log (may be disabled).
    pub log: &'a mut obs::TransportLog,
}

impl<D: Driver> Clock for ChaosTransport<'_, D> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn local_now(&self) -> SimTime {
        self.inner.local_now()
    }
}

impl<D: Driver> Transport for ChaosTransport<'_, D> {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        // A group-scoped plan ignores other groups' frames entirely —
        // crucially *before* the verdict draws, so scoping does not shift
        // the RNG stream the scoped group's frames see.
        if !self.state.plan.applies_to(group) {
            self.inner.multicast(group, payload, opts);
            return;
        }
        let now = self.inner.now();
        let v = self.state.verdict(now);
        if !v.deliver {
            self.tally.dropped += 1;
            self.log.record(now, obs::TransportEventKind::ChaosDrop { flow: opts.flow });
            return;
        }
        let payload = if v.corrupt {
            self.tally.corrupted += 1;
            self.log.record(now, obs::TransportEventKind::ChaosCorrupt { flow: opts.flow });
            corrupt_payload(&payload)
        } else {
            payload
        };
        if let Some(by) = v.delay {
            self.tally.delayed += 1;
            self.log.record(
                now,
                obs::TransportEventKind::ChaosDelay { flow: opts.flow, by },
            );
            self.delayq.push(now + by, group, payload.clone(), opts.clone());
            if v.duplicate {
                self.tally.duplicated += 1;
                self.log
                    .record(now, obs::TransportEventKind::ChaosDuplicate { flow: opts.flow });
                self.delayq.push(now + by, group, payload, opts);
            }
            return;
        }
        self.inner.multicast(group, payload.clone(), opts.clone());
        if v.duplicate {
            self.tally.duplicated += 1;
            self.log
                .record(now, obs::TransportEventKind::ChaosDuplicate { flow: opts.flow });
            self.inner.multicast(group, payload, opts);
        }
    }

    fn join(&mut self, group: GroupId) {
        self.inner.join(group);
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.inner.set_timer(delay, token)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }

    fn rng(&mut self) -> &mut StdRng {
        self.inner.rng()
    }
}

/// Parse a chaos spec string into a plan.
///
/// Grammar — comma-separated clauses:
///
/// ```text
/// loss=P                   Bernoulli drop probability
/// dup=P                    duplication probability
/// corrupt=P                corruption probability
/// reorder=P:DUR            hold-back probability and base delay
/// jitter=DUR               uniform extra hold-back
/// burst=P@START+LEN        correlated loss window
/// blackhole=N@START+LEN    cut peer N (1-based index into `peers`)
/// blackhole=all@START+LEN  cut every destination
/// group=N                  scope the whole plan to multicast group N
/// ```
///
/// Durations accept `ms` and `s` suffixes (`40ms`, `2s`, `1.5s`).
/// Example: `loss=0.12,dup=0.05,reorder=0.2:40ms,burst=0.8@2s+3s,blackhole=3@1s+3s`
pub fn parse_spec(spec: &str, peers: &[SocketAddr]) -> Result<ChaosPlan, String> {
    let mut plan = ChaosPlan::new();
    for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
        let (key, val) = clause
            .split_once('=')
            .ok_or_else(|| format!("chaos clause `{clause}` missing `=`"))?;
        let (key, val) = (key.trim(), val.trim());
        match key {
            "loss" => plan.loss_p = parse_p(val)?,
            "dup" => plan.dup_p = parse_p(val)?,
            "corrupt" => plan.corrupt_p = parse_p(val)?,
            "reorder" => {
                let (p, d) = val
                    .split_once(':')
                    .ok_or_else(|| format!("reorder needs P:DUR, got `{val}`"))?;
                plan.reorder_p = parse_p(p)?;
                plan.reorder_delay = parse_dur(d)?;
            }
            "jitter" => plan.jitter = parse_dur(val)?,
            "burst" => {
                let (p, window) = val
                    .split_once('@')
                    .ok_or_else(|| format!("burst needs P@START+LEN, got `{val}`"))?;
                let (start, end) = parse_window(window)?;
                plan = plan.loss_burst(parse_p(p)?, start, end);
            }
            "blackhole" => {
                let (who, window) = val
                    .split_once('@')
                    .ok_or_else(|| format!("blackhole needs N@START+LEN, got `{val}`"))?;
                let (start, end) = parse_window(window)?;
                if who == "all" {
                    plan = plan.blackhole_all(start, end);
                } else {
                    let n: usize = who
                        .parse()
                        .map_err(|_| format!("blackhole peer `{who}` is not a number or `all`"))?;
                    let addr = *peers
                        .get(n.checked_sub(1).ok_or("blackhole peers are 1-based")?)
                        .ok_or_else(|| {
                            format!("blackhole peer {n} out of range (have {})", peers.len())
                        })?;
                    plan = plan.blackhole(addr, start, end);
                }
            }
            "group" => {
                let g: u32 = val
                    .parse()
                    .map_err(|_| format!("chaos group `{val}` is not a group id"))?;
                plan = plan.scoped_to(g);
            }
            other => return Err(format!("unknown chaos key `{other}`")),
        }
    }
    Ok(plan)
}

fn parse_p(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability `{s}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability `{s}` outside [0, 1]"));
    }
    Ok(p)
}

fn parse_dur(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        let v: f64 = ms.parse().map_err(|_| format!("bad duration `{s}`"))?;
        return Ok(SimDuration::from_secs_f64(v / 1000.0));
    }
    if let Some(secs) = s.strip_suffix('s') {
        let v: f64 = secs.parse().map_err(|_| format!("bad duration `{s}`"))?;
        return Ok(SimDuration::from_secs_f64(v));
    }
    Err(format!("duration `{s}` needs an `ms` or `s` suffix"))
}

/// `START+LEN` → `[start, start+len)`.
fn parse_window(s: &str) -> Result<(SimTime, SimTime), String> {
    let (start, len) = s
        .split_once('+')
        .ok_or_else(|| format!("window needs START+LEN, got `{s}`"))?;
    let start = SimTime::ZERO + parse_dur(start)?;
    let end = start + parse_dur(len)?;
    Ok((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn burst_overrides_base_loss_inside_window_only() {
        let plan = ChaosPlan::new().loss(0.1).loss_burst(0.9, t(1000), t(2000));
        assert_eq!(plan.drop_p(t(500)), 0.1);
        assert_eq!(plan.drop_p(t(1500)), 0.9);
        assert_eq!(plan.drop_p(t(2000)), 0.1, "end is exclusive");
        assert_eq!(plan.healed_at(), t(2000));
    }

    #[test]
    fn blackhole_matches_peer_and_all() {
        let a: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2000".parse().unwrap();
        let plan = ChaosPlan::new().blackhole(a, t(0), t(1000));
        assert!(plan.blackholed(t(500), Some(a)));
        assert!(!plan.blackholed(t(500), Some(b)));
        assert!(!plan.blackholed(t(500), None), "per-peer window skips multicast");
        assert!(!plan.blackholed(t(1000), Some(a)), "healed");
        let all = ChaosPlan::new().blackhole_all(t(0), t(1000));
        assert!(all.blackholed(t(500), Some(b)));
        assert!(all.blackholed(t(500), None));
    }

    #[test]
    fn verdict_sequences_are_seed_deterministic() {
        let plan = ChaosPlan::new()
            .loss(0.3)
            .duplication(0.2)
            .corruption(0.1)
            .reorder(0.4, SimDuration::from_millis(30))
            .jitter(SimDuration::from_millis(10));
        let mut a = ChaosState::new(plan.clone(), 42);
        let mut b = ChaosState::new(plan, 42);
        for i in 0..500 {
            let now = t(i * 7);
            assert_eq!(a.verdict(now), b.verdict(now), "frame {i}");
        }
    }

    #[test]
    fn noop_plan_always_delivers_plain() {
        let mut s = ChaosState::new(ChaosPlan::new(), 7);
        assert!(s.plan.is_noop());
        for i in 0..100 {
            let v = s.verdict(t(i));
            assert_eq!(
                v,
                Verdict { deliver: true, duplicate: false, corrupt: false, delay: None }
            );
        }
    }

    #[test]
    fn delay_queue_releases_in_due_then_fifo_order() {
        let mut q = DelayQueue::new();
        let opts = SendOptions::default();
        q.push(t(30), GroupId(1), Bytes::from_static(b"late"), opts.clone());
        q.push(t(10), GroupId(1), Bytes::from_static(b"a"), opts.clone());
        q.push(t(10), GroupId(1), Bytes::from_static(b"b"), opts);
        assert_eq!(q.next_due(), Some(t(10)));
        assert!(q.pop_due(t(5)).is_none());
        assert_eq!(q.pop_due(t(50)).unwrap().payload.as_ref(), b"a");
        assert_eq!(q.pop_due(t(50)).unwrap().payload.as_ref(), b"b");
        assert!(q.pop_due(t(20)).is_none(), "late frame not due yet");
        assert_eq!(q.pop_due(t(30)).unwrap().payload.as_ref(), b"late");
        assert!(q.is_empty());
    }

    #[test]
    fn corruption_forces_a_clean_decode_error() {
        // A real encoded message: corrupting it must yield Err, never a
        // different valid message.
        use srm::wire::{Body, Header, Message};
        let m = Message {
            header: Header { sender: srm::SourceId(1), timestamp: SimTime::ZERO },
            body: Body::PageCatalogRequest,
        };
        let enc = m.encode();
        let bad = corrupt_payload(&enc);
        assert!(srm::Message::decode(bad).is_err());
        // Too-short frames are blanked, which is also a decode error.
        assert_eq!(corrupt_payload(&Bytes::from_static(b"tiny")).len(), 0);
    }

    #[test]
    fn spec_parses_the_full_grammar() {
        let peers: Vec<SocketAddr> =
            vec!["127.0.0.1:1000".parse().unwrap(), "127.0.0.1:2000".parse().unwrap()];
        let plan = parse_spec(
            "loss=0.12,dup=0.05,corrupt=0.02,reorder=0.2:40ms,jitter=5ms,\
             burst=0.8@2s+3s,blackhole=2@1s+3s,blackhole=all@10s+1.5s",
            &peers,
        )
        .unwrap();
        assert_eq!(plan.loss_p, 0.12);
        assert_eq!(plan.dup_p, 0.05);
        assert_eq!(plan.corrupt_p, 0.02);
        assert_eq!(plan.reorder_p, 0.2);
        assert_eq!(plan.reorder_delay, SimDuration::from_millis(40));
        assert_eq!(plan.jitter, SimDuration::from_millis(5));
        assert_eq!(plan.bursts.len(), 1);
        assert_eq!(plan.bursts[0].p, 0.8);
        assert_eq!(plan.bursts[0].window.start, t(2000));
        assert_eq!(plan.bursts[0].window.end, t(5000));
        assert_eq!(plan.blackholes.len(), 2);
        assert_eq!(plan.blackholes[0].peer, Some(peers[1]));
        assert_eq!(plan.blackholes[1].peer, None);
        assert_eq!(plan.healed_at(), t(11_500));
    }

    #[test]
    fn spec_rejects_nonsense() {
        assert!(parse_spec("loss", &[]).is_err());
        assert!(parse_spec("loss=1.5", &[]).is_err());
        assert!(parse_spec("warp=0.5", &[]).is_err());
        assert!(parse_spec("reorder=0.5", &[]).is_err());
        assert!(parse_spec("jitter=5", &[]).is_err(), "missing unit");
        assert!(parse_spec("blackhole=3@1s+1s", &[]).is_err(), "peer out of range");
        assert!(parse_spec("blackhole=0@1s+1s", &[]).is_err(), "peers are 1-based");
        assert!(parse_spec("group=nope", &[]).is_err());
    }

    #[test]
    fn spec_group_clause_scopes_the_plan() {
        let plan = parse_spec("loss=0.5,group=7", &[]).unwrap();
        assert_eq!(plan.only_group, Some(7));
        assert!(plan.applies_to(GroupId(7)));
        assert!(!plan.applies_to(GroupId(8)));
        let unscoped = parse_spec("loss=0.5", &[]).unwrap();
        assert!(unscoped.applies_to(GroupId(8)));
    }

    #[test]
    fn group_scoping_does_not_perturb_the_scoped_groups_draws() {
        // Interleave frames for groups 7 and 9 through a plan scoped to 7:
        // the verdicts group 7's frames receive must equal the verdicts
        // from a run where only group 7's frames exist — other-group
        // traffic consumes no draws (the replay-from-seed contract the
        // hub's per-shard soaks rely on).
        let plan = ChaosPlan::new()
            .loss(0.3)
            .duplication(0.2)
            .reorder(0.4, SimDuration::from_millis(30))
            .scoped_to(7);
        let mut mixed = ChaosState::new(plan.clone(), 99);
        let mut alone = ChaosState::new(plan.clone(), 99);
        for i in 0..200u64 {
            let now = t(i * 3);
            if i % 3 == 0 {
                // Group 7's frame: both runs draw.
                assert_eq!(mixed.verdict(now), alone.verdict(now), "frame {i}");
            } else {
                // Another group's frame: the mixed run must *not* draw —
                // modelled here by simply not calling verdict, which is
                // exactly what `applies_to` gates in ChaosTransport.
                assert!(!plan.applies_to(GroupId(9)));
            }
        }
    }
}

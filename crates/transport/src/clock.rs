//! Monotonic wall clock mapped onto the simulator's time axis.
//!
//! The driver seam ([`srm::Clock`]) speaks [`SimTime`] — nanoseconds on a
//! per-run axis starting at zero. In the simulator that axis is virtual
//! event time; here it is real elapsed time since the node's runtime
//! started, read from [`std::time::Instant`] so it is monotonic and immune
//! to wall-clock steps. Each node has its own origin, which is exactly the
//! paper's model: session-message timestamp echoes only ever *difference*
//! clock readings, so per-host origins (and skew) cancel out of the
//! distance estimates.

use netsim::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// A monotonic clock whose zero is the moment it was created.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
    /// Artificial offset added to [`WallClock::local_now`] readings only —
    /// the wall-clock analogue of `netsim`'s clock-skew fault, useful for
    /// exercising the NTP-style estimator over real sockets.
    skew: SimDuration,
}

impl WallClock {
    /// Start a clock; its `now()` reads zero at this instant.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
            skew: SimDuration::ZERO,
        }
    }

    /// Start a clock whose local readings lead true time by `skew`.
    pub fn with_skew(skew: SimDuration) -> Self {
        WallClock {
            origin: Instant::now(),
            skew,
        }
    }

    /// Monotonic elapsed time since the origin, on the [`SimTime`] axis.
    pub fn now(&self) -> SimTime {
        // u64 nanos overflow after ~584 years of uptime; saturate rather
        // than panic.
        let n = self.origin.elapsed().as_nanos();
        SimTime::from_nanos(u64::try_from(n).unwrap_or(u64::MAX))
    }

    /// What this host *believes* the time is: `now()` plus any configured
    /// skew. Goes into outgoing message timestamps.
    pub fn local_now(&self) -> SimTime {
        self.now() + self.skew
    }

    /// How long from now until `deadline`, as a [`Duration`] suitable for
    /// `recv_timeout`; zero if the deadline already passed.
    pub fn until(&self, deadline: SimTime) -> Duration {
        let now = self.now();
        if deadline <= now {
            return Duration::ZERO;
        }
        Duration::from_nanos(deadline.since(now).as_nanos())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_near_zero_and_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        assert!(a.as_secs_f64() < 1.0);
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn skew_shifts_local_readings_only() {
        let c = WallClock::with_skew(SimDuration::from_secs(5));
        let now = c.now();
        let local = c.local_now();
        assert!(local.since(now) >= SimDuration::from_secs(5));
        assert!(local.since(now) < SimDuration::from_secs(6));
    }

    #[test]
    fn until_saturates_for_past_deadlines() {
        let c = WallClock::new();
        assert_eq!(c.until(SimTime::ZERO), Duration::ZERO);
        let d = c.until(c.now() + SimDuration::from_secs(2));
        assert!(d <= Duration::from_secs(2));
        assert!(d > Duration::from_secs(1));
    }
}

//! Line-JSON control plane for the multi-session hub.
//!
//! One command per line, one reply per line — the grammar a shell script,
//! a test harness, or `bash /dev/tcp` redirection can speak without a
//! client library. Commands arrive on the hub binary's stdin or its local
//! TCP listener; both feed [`handle_line`], so the two surfaces cannot
//! drift apart.
//!
//! Grammar (flat JSON objects):
//!
//! ```text
//! {"cmd":"create","group":G,"peers":["IP:PORT",...],"id":N,"members":N,
//!  "rate":BYTES_PER_SEC,"burst":BYTES,"dist_ms":MS}   // error if G exists
//! {"cmd":"join", ...same fields...}                   // idempotent create
//! {"cmd":"send","group":G,"text":"...","count":N}     // publish N ADUs
//! {"cmd":"drain","group":G}                           // flush + detach G
//! {"cmd":"stats"}                                     // hub rollup snapshot
//! {"cmd":"stop"}                                      // drain all, shut down
//! ```
//!
//! Only `group` (and `text` for `send`) is required; everything else
//! defaults (`id` 1, `members` = peers+1, no quota). Replies are JSON
//! objects with a fixed key order and no timestamps or ports, so a
//! scripted session's reply stream is byte-for-byte reproducible — the
//! golden test pins it. `stats` is the one deliberately non-pinned reply
//! (its counters are live).
//!
//! The parser below is a deliberately minimal recursive-descent JSON
//! reader: the transport crate sits below the simulator's CLI (which owns
//! the repo's full JSON helper), and pulling a dependency edge upward for
//! thirty lines of parsing would invert the layering.

use crate::hub::HubHandle;
use std::fmt::Write as _;
use std::net::SocketAddr;

/// A parsed JSON value (just enough of the grammar for the control plane).
#[derive(Clone, Debug, PartialEq)]
pub enum Jv {
    /// String.
    S(String),
    /// Number (always f64, as in JSON).
    N(f64),
    /// Boolean.
    B(bool),
    /// null.
    Null,
    /// Array.
    A(Vec<Jv>),
    /// Object, in source order.
    O(Vec<(String, Jv)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, s: &str, v: Jv) -> Result<Jv, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        self.ws();
        match self.peek() {
            Some(b'"') => Ok(Jv::S(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.lit("true", Jv::B(true)),
            Some(b'f') => self.lit("false", Jv::B(false)),
            Some(b'n') => self.lit("null", Jv::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-borrow from the byte after the opener: multi-byte
                    // UTF-8 sequences must survive intact.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] != b'"' && self.b[end] != b'\\' {
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..end])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Jv::N)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Jv, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Jv::A(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Jv::A(items));
                }
                _ => return Err("expected `,` or `]` in array".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Jv, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Jv::O(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Jv::O(fields));
                }
                _ => return Err("expected `,` or `}` in object".into()),
            }
        }
    }
}

/// Parse one JSON value from `input` (trailing whitespace allowed).
pub fn parse_json(input: &str) -> Result<Jv, String> {
    let mut p = Parser { b: input.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(v)
}

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Everything needed to host one group: identity, mesh, quota, seeding.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// The multicast group id (the demux key).
    pub group: u32,
    /// Peer addresses for the unicast fan-out (may be empty: sole member).
    pub peers: Vec<SocketAddr>,
    /// The member id the hub's agent runs as in this group (default 1).
    pub id: u64,
    /// Group size for the adaptive timer scaling (default peers + 1).
    pub members: usize,
    /// Token-bucket refill rate in bytes/sec; `None` disables the quota.
    pub rate: Option<f64>,
    /// Token-bucket depth in bytes (default `2 × rate`).
    pub burst: Option<f64>,
    /// Pre-seed every other member's distance estimate to this many
    /// milliseconds (assumed-converged state; live session messages refine
    /// it). `None` starts cold.
    pub dist_ms: Option<u64>,
}

/// One parsed control command.
#[derive(Clone, Debug)]
pub enum Command {
    /// Host a new group. `idempotent` is the `join` variant: re-creating
    /// an existing group reports `already:true` instead of an error.
    Create {
        /// The group to host.
        spec: GroupSpec,
        /// `join` (true) vs `create` (false) duplicate semantics.
        idempotent: bool,
    },
    /// Publish `count` ADUs of `text` on the group's page 0.
    Send {
        /// Target group.
        group: u32,
        /// ADU payload (suffixed with the index when `count > 1`).
        text: String,
        /// How many ADUs to publish.
        count: u32,
    },
    /// Gracefully drain one group: final session message, WAL flush,
    /// detach.
    Drain {
        /// Target group.
        group: u32,
    },
    /// Roll up per-group and hub-level counters.
    Stats,
    /// Drain every group and shut the hub down.
    Stop,
}

fn field<'a>(fields: &'a [(String, Jv)], name: &str) -> Option<&'a Jv> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn need_u32(fields: &[(String, Jv)], name: &str) -> Result<u32, String> {
    match field(fields, name) {
        Some(Jv::N(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => Ok(*n as u32),
        Some(_) => Err(format!("`{name}` must be a non-negative integer")),
        None => Err(format!("missing field `{name}`")),
    }
}

fn opt_u64(fields: &[(String, Jv)], name: &str) -> Result<Option<u64>, String> {
    match field(fields, name) {
        Some(Jv::N(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("`{name}` must be a non-negative integer")),
        None => Ok(None),
    }
}

fn opt_f64(fields: &[(String, Jv)], name: &str) -> Result<Option<f64>, String> {
    match field(fields, name) {
        Some(Jv::N(n)) if *n > 0.0 => Ok(Some(*n)),
        Some(_) => Err(format!("`{name}` must be a positive number")),
        None => Ok(None),
    }
}

/// Parse one control line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let Jv::O(fields) = parse_json(line)? else {
        return Err("not a JSON object".into());
    };
    let cmd = match field(&fields, "cmd") {
        Some(Jv::S(s)) => s.clone(),
        Some(_) => return Err("`cmd` must be a string".into()),
        None => return Err("missing field `cmd`".into()),
    };
    match cmd.as_str() {
        "create" | "join" => {
            let group = need_u32(&fields, "group")?;
            let mut peers = Vec::new();
            match field(&fields, "peers") {
                Some(Jv::A(items)) => {
                    for it in items {
                        let Jv::S(s) = it else {
                            return Err("`peers` must be an array of addresses".into());
                        };
                        peers.push(
                            s.parse::<SocketAddr>()
                                .map_err(|_| format!("bad peer address `{s}`"))?,
                        );
                    }
                }
                Some(_) => return Err("`peers` must be an array of addresses".into()),
                None => {}
            }
            let id = opt_u64(&fields, "id")?.unwrap_or(1);
            let members = opt_u64(&fields, "members")?
                .map(|m| m as usize)
                .unwrap_or(peers.len() + 1)
                .max(1);
            Ok(Command::Create {
                spec: GroupSpec {
                    group,
                    peers,
                    id,
                    members,
                    rate: opt_f64(&fields, "rate")?,
                    burst: opt_f64(&fields, "burst")?,
                    dist_ms: opt_u64(&fields, "dist_ms")?,
                },
                idempotent: cmd == "join",
            })
        }
        "send" => {
            let group = need_u32(&fields, "group")?;
            let text = match field(&fields, "text") {
                Some(Jv::S(s)) => s.clone(),
                Some(_) => return Err("`text` must be a string".into()),
                None => return Err("missing field `text`".into()),
            };
            let count = opt_u64(&fields, "count")?.unwrap_or(1).clamp(1, 100_000) as u32;
            Ok(Command::Send { group, text, count })
        }
        "drain" => Ok(Command::Drain { group: need_u32(&fields, "group")? }),
        "stats" => Ok(Command::Stats),
        "stop" => Ok(Command::Stop),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// Execute one control line against a hub and format the one-line reply.
///
/// Every reply is a single JSON object with `ok` first; errors are
/// `{"ok":false,"error":"..."}`. The reply stream for a scripted session
/// is deterministic (no ports, clocks, or counters except in `stats`).
pub fn handle_line(hub: &HubHandle, line: &str) -> String {
    let cmd = match parse_command(line) {
        Ok(c) => c,
        Err(e) => return format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(&e)),
    };
    match cmd {
        Command::Create { spec, idempotent } => {
            let group = spec.group;
            let members = spec.members;
            match hub.create(spec, idempotent) {
                Ok(out) => {
                    if idempotent {
                        format!(
                            "{{\"ok\":true,\"cmd\":\"join\",\"group\":{},\"shard\":{},\"already\":{}}}",
                            group, out.shard, out.already
                        )
                    } else {
                        format!(
                            "{{\"ok\":true,\"cmd\":\"create\",\"group\":{},\"shard\":{},\"members\":{}}}",
                            group, out.shard, members
                        )
                    }
                }
                Err(e) => format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(&e)),
            }
        }
        Command::Send { group, text, count } => match hub.send(group, &text, count) {
            Ok(last) => format!(
                "{{\"ok\":true,\"cmd\":\"send\",\"group\":{group},\"count\":{count},\"last\":\"{}\"}}",
                json_escape(&last)
            ),
            Err(e) => format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(&e)),
        },
        Command::Drain { group } => match hub.drain(group) {
            Ok(out) => format!(
                "{{\"ok\":true,\"cmd\":\"drain\",\"group\":{group},\"data_sent\":{},\"delivered\":{}}}",
                out.data_sent, out.delivered
            ),
            Err(e) => format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(&e)),
        },
        Command::Stats => hub.stats().to_json_line(),
        Command::Stop => {
            let drained = hub.drain_all();
            format!("{{\"ok\":true,\"cmd\":\"stop\",\"groups\":{}}}", drained.groups)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_command_grammar() {
        let c = parse_command(
            r#"{"cmd":"create","group":7,"peers":["127.0.0.1:9000"],"id":2,"members":3,"rate":1000.5,"dist_ms":10}"#,
        )
        .unwrap();
        let Command::Create { spec, idempotent } = c else { panic!("not create") };
        assert!(!idempotent);
        assert_eq!(spec.group, 7);
        assert_eq!(spec.peers, vec!["127.0.0.1:9000".parse().unwrap()]);
        assert_eq!(spec.id, 2);
        assert_eq!(spec.members, 3);
        assert_eq!(spec.rate, Some(1000.5));
        assert_eq!(spec.burst, None);
        assert_eq!(spec.dist_ms, Some(10));

        let Command::Create { spec, idempotent } =
            parse_command(r#"{"cmd":"join","group":1}"#).unwrap()
        else {
            panic!("not join")
        };
        assert!(idempotent);
        assert_eq!(spec.members, 1, "sole member when no peers given");
        assert_eq!(spec.id, 1);

        let Command::Send { group, text, count } =
            parse_command(r#"{"cmd":"send","group":1,"text":"hi \"there\"","count":3}"#).unwrap()
        else {
            panic!("not send")
        };
        assert_eq!((group, text.as_str(), count), (1, "hi \"there\"", 3));

        assert!(matches!(parse_command(r#"{"cmd":"drain","group":4}"#), Ok(Command::Drain { group: 4 })));
        assert!(matches!(parse_command(r#"{"cmd":"stats"}"#), Ok(Command::Stats)));
        assert!(matches!(parse_command(r#"{"cmd":"stop"}"#), Ok(Command::Stop)));
    }

    #[test]
    fn rejects_malformed_commands_with_stable_messages() {
        assert_eq!(parse_command("garbage").unwrap_err(), "unexpected input at byte 0");
        assert_eq!(parse_command("not json").unwrap_err(), "bad literal at byte 0");
        assert_eq!(parse_command("[1,2]").unwrap_err(), "not a JSON object");
        assert_eq!(parse_command("{}").unwrap_err(), "missing field `cmd`");
        assert_eq!(
            parse_command(r#"{"cmd":"warp"}"#).unwrap_err(),
            "unknown cmd `warp`"
        );
        assert_eq!(
            parse_command(r#"{"cmd":"create"}"#).unwrap_err(),
            "missing field `group`"
        );
        assert_eq!(
            parse_command(r#"{"cmd":"create","group":-1}"#).unwrap_err(),
            "`group` must be a non-negative integer"
        );
        assert_eq!(
            parse_command(r#"{"cmd":"create","group":1,"peers":["nope"]}"#).unwrap_err(),
            "bad peer address `nope`"
        );
        assert_eq!(
            parse_command(r#"{"cmd":"send","group":1}"#).unwrap_err(),
            "missing field `text`"
        );
    }

    #[test]
    fn json_roundtrips_escapes() {
        let v = parse_json(r#"{"a":"x\n\"y\"","b":[1,2.5,-3],"c":true,"d":null}"#).unwrap();
        let Jv::O(fields) = v else { panic!() };
        assert_eq!(field(&fields, "a"), Some(&Jv::S("x\n\"y\"".into())));
        assert_eq!(
            field(&fields, "b"),
            Some(&Jv::A(vec![Jv::N(1.0), Jv::N(2.5), Jv::N(-3.0)]))
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        // Escaped output parses back to the original.
        let s = "weird \"payload\"\twith\nnewlines";
        let line = format!("{{\"t\":\"{}\"}}", json_escape(s));
        let Jv::O(f) = parse_json(&line).unwrap() else { panic!() };
        assert_eq!(field(&f, "t"), Some(&Jv::S(s.into())));
    }

    #[test]
    fn parses_unicode_and_utf8_strings() {
        let Jv::O(f) = parse_json(r#"{"t":"café — ünïcode"}"#).unwrap() else { panic!() };
        assert_eq!(field(&f, "t"), Some(&Jv::S("café — ünïcode".into())));
    }
}

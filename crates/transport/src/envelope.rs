//! Datagram envelope: what actually crosses a UDP socket.
//!
//! The SRM wire format ([`srm::wire`]) deliberately carries no network-layer
//! fields — in the simulator those ride on [`netsim::Packet`], and on a real
//! network most of them would be IP-header properties (source, TTL,
//! admin scope bit). A portable runtime over plain `std` UDP sockets cannot
//! read the IP TTL of a received datagram, so the envelope carries the
//! paper's Section VII-B3 extension literally: the initial TTL (and the
//! rest of the simulator's packet metadata) travels *in the packet*, and
//! receivers reconstruct a [`netsim::Packet`] from it for the agent.
//!
//! Layout (big-endian, 22-byte header):
//!
//! ```text
//! magic "SRMT" | ver u8 | src u32 | group u32 | ttl u8 | initial_ttl u8 |
//! flags u8 (bit0 = admin_scoped) | flow u32 | len u16 | payload = wire::Message
//! ```
//!
//! `len` declares the payload length.  A receiver rejects any datagram
//! whose declared length disagrees with what actually arrived — the frame
//! was truncated in flight, padded, or corrupted — *before* handing the
//! payload to the message decoder.

use bytes::{BufMut, Bytes, BytesMut};

/// First four bytes of every datagram.
pub const MAGIC: [u8; 4] = *b"SRMT";
/// Envelope format version.
pub const VERSION: u8 = 2;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 22;

/// Network-layer metadata for one datagram, plus the encoded SRM message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node (the runtime's node id, mirrored into
    /// [`netsim::PacketBody::src`]).
    pub src: u32,
    /// Destination multicast group id (the SRM session or a local-recovery
    /// group).
    pub group: u32,
    /// Remaining TTL as of transmission; receivers decrement per hop
    /// traversed (one hop on a loopback mesh).
    pub ttl: u8,
    /// The TTL the packet was originally sent with (Section VII-B3).
    pub initial_ttl: u8,
    /// Administrative-scope flag (Section VII-B1).
    pub admin_scoped: bool,
    /// Traffic class ([`netsim::flow`]).
    pub flow: u32,
    /// Encoded [`srm::Message`] bytes.
    pub payload: Bytes,
}

/// Why a datagram was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match — not ours.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Declared payload length disagrees with the datagram's actual size.
    LengthMismatch {
        /// Length the header declared.
        declared: u16,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// Payload longer than the length field can represent (send side only).
    Oversized,
}

impl EnvelopeError {
    /// Stable snake_case class label for counters and typed events.
    pub fn label(&self) -> &'static str {
        match self {
            EnvelopeError::Truncated => "truncated",
            EnvelopeError::BadMagic => "bad_magic",
            EnvelopeError::BadVersion(_) => "bad_version",
            EnvelopeError::LengthMismatch { .. } => "length_mismatch",
            EnvelopeError::Oversized => "oversized",
        }
    }
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Truncated => write!(f, "datagram shorter than envelope header"),
            EnvelopeError::BadMagic => write!(f, "bad envelope magic"),
            EnvelopeError::BadVersion(v) => write!(f, "unknown envelope version {v}"),
            EnvelopeError::LengthMismatch { declared, actual } => write!(
                f,
                "declared payload length {declared} but {actual} bytes arrived"
            ),
            EnvelopeError::Oversized => write!(f, "payload exceeds the u16 length field"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl Envelope {
    /// Serialize to one datagram's bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Serialize by appending to any [`BufMut`] — lets the send path reuse
    /// one scratch buffer per socket instead of allocating per datagram.
    ///
    /// # Panics
    /// Panics if the payload exceeds the u16 length field; UDP datagrams
    /// top out well below that, so a longer payload is a caller bug.
    pub fn encode_into<B: BufMut>(&self, b: &mut B) {
        let len = u16::try_from(self.payload.len()).expect("payload fits a UDP datagram");
        b.put_slice(&MAGIC);
        b.put_u8(VERSION);
        b.put_u32(self.src);
        b.put_u32(self.group);
        b.put_u8(self.ttl);
        b.put_u8(self.initial_ttl);
        b.put_u8(self.admin_scoped as u8);
        b.put_u32(self.flow);
        b.put_u16(len);
        b.put_slice(&self.payload);
    }

    /// Parse one received datagram into an owned envelope. Copies the
    /// payload once; the zero-copy hot path is [`Envelope::decode_view`].
    pub fn decode(buf: &[u8]) -> Result<Envelope, EnvelopeError> {
        Ok(Envelope::decode_view(buf)?.to_owned())
    }

    /// The cheap pre-decode filter: validate only the fixed-position header
    /// prefix (length, magic, version) and return the destination group id
    /// without touching the payload or the length field. This is what a
    /// demultiplexer needs to route a frame — anything that passes here and
    /// later fails [`Envelope::decode_view`] still fails *in the same way*
    /// on whichever shard receives it, so prechecking never changes a
    /// frame's fate, only where that fate is decided.
    pub fn precheck(buf: &[u8]) -> Result<u32, EnvelopeError> {
        if buf.len() < HEADER_LEN {
            return Err(EnvelopeError::Truncated);
        }
        if buf[0..4] != MAGIC {
            return Err(EnvelopeError::BadMagic);
        }
        if buf[4] != VERSION {
            return Err(EnvelopeError::BadVersion(buf[4]));
        }
        Ok(u32::from_be_bytes(buf[9..13].try_into().expect("4 bytes")))
    }

    /// Parse one received datagram *in place*: every field is read out of
    /// `buf` and the payload stays a borrow of it, so the reactor can
    /// filter (self-delivery, unjoined group, zero TTL) before paying for
    /// any copy at all. The payload is *not* decoded here — the agent's
    /// packet handler owns [`srm::Message::decode`] and its error
    /// handling, exactly as in the simulator.
    pub fn decode_view(buf: &[u8]) -> Result<EnvelopeView<'_>, EnvelopeError> {
        if buf.len() < HEADER_LEN {
            return Err(EnvelopeError::Truncated);
        }
        if buf[0..4] != MAGIC {
            return Err(EnvelopeError::BadMagic);
        }
        let ver = buf[4];
        if ver != VERSION {
            return Err(EnvelopeError::BadVersion(ver));
        }
        let be32 = |at: usize| u32::from_be_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
        let declared = u16::from_be_bytes(buf[20..22].try_into().expect("2 bytes"));
        let payload = &buf[HEADER_LEN..];
        if usize::from(declared) != payload.len() {
            return Err(EnvelopeError::LengthMismatch {
                declared,
                actual: payload.len(),
            });
        }
        Ok(EnvelopeView {
            src: be32(5),
            group: be32(9),
            ttl: buf[13],
            initial_ttl: buf[14],
            admin_scoped: buf[15] != 0,
            flow: be32(16),
            payload,
        })
    }
}

/// A decoded envelope whose payload borrows the receive buffer — the
/// zero-copy counterpart of [`Envelope`] for the reactor's inbound path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvelopeView<'a> {
    /// Sending node id.
    pub src: u32,
    /// Destination multicast group id.
    pub group: u32,
    /// Remaining TTL as of transmission.
    pub ttl: u8,
    /// The TTL the packet was originally sent with.
    pub initial_ttl: u8,
    /// Administrative-scope flag.
    pub admin_scoped: bool,
    /// Traffic class.
    pub flow: u32,
    /// Encoded [`srm::Message`] bytes, borrowed from the datagram buffer.
    pub payload: &'a [u8],
}

impl EnvelopeView<'_> {
    /// Copy out into an owned [`Envelope`] (one payload-sized copy).
    pub fn to_owned(&self) -> Envelope {
        Envelope {
            src: self.src,
            group: self.group,
            ttl: self.ttl,
            initial_ttl: self.initial_ttl,
            admin_scoped: self.admin_scoped,
            flow: self.flow,
            payload: Bytes::copy_from_slice(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            src: 3,
            group: 1,
            ttl: 254,
            initial_ttl: 255,
            admin_scoped: true,
            flow: 2,
            payload: Bytes::from_static(b"opaque srm message"),
        }
    }

    #[test]
    fn roundtrip() {
        let e = sample();
        let wire = e.encode();
        assert_eq!(wire.len(), HEADER_LEN + e.payload.len());
        assert_eq!(Envelope::decode(&wire).unwrap(), e);
    }

    #[test]
    fn rejects_short_foreign_and_future_datagrams() {
        assert_eq!(Envelope::decode(b"SRM"), Err(EnvelopeError::Truncated));
        let mut wire = sample().encode().to_vec();
        wire[0] = b'X';
        assert_eq!(Envelope::decode(&wire), Err(EnvelopeError::BadMagic));
        let mut wire = sample().encode().to_vec();
        wire[4] = 9;
        assert_eq!(Envelope::decode(&wire), Err(EnvelopeError::BadVersion(9)));
    }

    #[test]
    fn rejects_length_disagreement() {
        // Truncated in flight: bytes missing off the tail.
        let wire = sample().encode();
        let cut = &wire[..wire.len() - 3];
        assert_eq!(
            Envelope::decode(cut),
            Err(EnvelopeError::LengthMismatch { declared: 18, actual: 15 })
        );
        // Padded / oversized: extra trailing bytes.
        let mut padded = wire.to_vec();
        padded.extend_from_slice(b"junk");
        assert_eq!(
            Envelope::decode(&padded),
            Err(EnvelopeError::LengthMismatch { declared: 18, actual: 22 })
        );
        // A corrupted length field is equally caught.
        let mut bad_len = wire.to_vec();
        bad_len[HEADER_LEN - 1] ^= 0x08;
        assert!(matches!(
            Envelope::decode(&bad_len),
            Err(EnvelopeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn error_labels_are_stable() {
        assert_eq!(EnvelopeError::Truncated.label(), "truncated");
        assert_eq!(EnvelopeError::BadVersion(1).label(), "bad_version");
        assert_eq!(
            EnvelopeError::LengthMismatch { declared: 1, actual: 2 }.label(),
            "length_mismatch"
        );
    }

    #[test]
    fn view_agrees_with_owned_decode_on_arbitrary_mutations() {
        // The borrowed and owned decoders must be the same function:
        // identical fields on success, identical error on rejection.
        let wire = sample().encode();
        for cut in 0..wire.len() {
            let buf = &wire[..cut];
            match (Envelope::decode_view(buf), Envelope::decode(buf)) {
                (Ok(v), Ok(e)) => assert_eq!(v.to_owned(), e),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("decoders disagree at cut {cut}: {a:?} vs {b:?}"),
            }
        }
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.to_vec();
            flipped[bit / 8] ^= 1 << (bit % 8);
            match (Envelope::decode_view(&flipped), Envelope::decode(&flipped)) {
                (Ok(v), Ok(e)) => assert_eq!(v.to_owned(), e),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("decoders disagree at bit {bit}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn precheck_agrees_with_full_decode_on_routing() {
        // precheck(ok) must report the same group decode_view would, and a
        // precheck rejection must be a decode_view rejection too (the
        // reverse need not hold: a length mismatch passes precheck).
        let wire = sample().encode();
        assert_eq!(Envelope::precheck(&wire), Ok(sample().group));
        for cut in 0..wire.len() {
            match (Envelope::precheck(&wire[..cut]), Envelope::decode_view(&wire[..cut])) {
                (Ok(g), _) => assert_eq!(g, sample().group),
                (Err(_), Ok(_)) => panic!("precheck rejected a decodable frame at cut {cut}"),
                (Err(_), Err(_)) => {}
            }
        }
        let mut bad = wire.to_vec();
        bad[0] = b'X';
        assert_eq!(Envelope::precheck(&bad), Err(EnvelopeError::BadMagic));
    }

    #[test]
    fn empty_payload_is_fine() {
        let e = Envelope {
            payload: Bytes::new(),
            ..sample()
        };
        assert_eq!(Envelope::decode(&e.encode()).unwrap(), e);
    }
}

//! In-process multi-node loopback harness.
//!
//! Binds one 127.0.0.1 socket per member *first*, so every node can be
//! spawned with the full peer list ([`Mode::Mesh`]), then runs each node's
//! reactor on its own thread — a whole SRM session inside one test process,
//! over real UDP datagrams. "Deterministic enough" for integration tests:
//! timer *draws* are seeded per node, and tests make outcomes robust to
//! scheduling jitter by separating competing timer ranges (seeded
//! distances), not by assuming exact interleavings.

use crate::runtime::{Mode, Node, NodeHandle, NodeOptions};
use netsim::GroupId;
use srm::{SourceId, SrmAgent, SrmConfig};
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// A set of loopback-mesh nodes forming one SRM session.
pub struct Harness {
    /// Handles, in member order (member `i` is `SourceId(i + 1)`).
    pub nodes: Vec<NodeHandle>,
}

impl Harness {
    /// Spawn `n` members of `group` on a 127.0.0.1 unicast mesh.
    ///
    /// `customize` runs once per node before spawn with the node's index,
    /// the full address list (index-aligned, e.g. for per-destination
    /// [`crate::LossPolicy`] rules), and the default options to amend.
    pub fn loopback<F>(
        n: usize,
        group: GroupId,
        cfg: &SrmConfig,
        mut customize: F,
    ) -> io::Result<Harness>
    where
        F: FnMut(usize, &[SocketAddr], &mut NodeOptions),
    {
        let sockets: Vec<UdpSocket> = (0..n)
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<io::Result<_>>()?;

        let mut nodes = Vec::with_capacity(n);
        for (i, socket) in sockets.into_iter().enumerate() {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &a)| a)
                .collect();
            let mut opts = NodeOptions::new(SourceId(i as u64 + 1), group, cfg.clone());
            customize(i, &addrs, &mut opts);
            nodes.push(Node::spawn_on(socket, Mode::Mesh { peers }, opts)?);
        }
        Ok(Harness { nodes })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the harness has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Stop every node and return the final agents, in member order.
    pub fn shutdown(self) -> Vec<SrmAgent> {
        self.nodes.into_iter().map(NodeHandle::shutdown).collect()
    }
}

/// Merge the recorders of shut-down agents into one timeline — the
/// wall-clock analogue of [`srm::harvest_timeline`]. Event times are each
/// node's elapsed time since its own start; harness nodes start within
/// microseconds of each other, so one shared axis is a fair approximation.
/// Transport-layer events (chaos actions, supervision, liveness) ride in
/// the same JSONL stream, sorted just after same-instant recovery events.
pub fn harvest_timeline(agents: &mut [SrmAgent]) -> obs::Timeline {
    let mut tl = obs::Timeline::new();
    for a in agents {
        let member = a.id.0;
        tl.add_member(member, a.obs.take_events());
        tl.add_transport(member, a.transport_obs.take_events());
    }
    tl
}

/// Fold shut-down agents' metrics into a run summary, as
/// [`srm::harvest_summary`] does for a simulation. Agents that recorded
/// transport events contribute a row to the transport table; agents without
/// any (every simulator run) leave the summary byte-identical to before.
pub fn harvest_summary(agents: &[SrmAgent]) -> obs::RunSummary {
    let mut run = obs::RunSummary::new();
    for a in agents {
        srm::observe::observe_agent(&mut run, a.id.0, &a.metrics);
        if !a.transport_obs.is_empty() {
            run.add_transport(obs::TransportSummary::from_events(
                a.id.0,
                a.transport_obs.events(),
            ));
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use srm::PageId;
    use std::time::{Duration, Instant};

    /// Two loopback nodes, no loss: an ADU multicast by one arrives at the
    /// other over a real socket within a bounded wall-clock wait.
    #[test]
    fn two_nodes_exchange_over_udp() {
        let group = GroupId(1);
        let cfg = SrmConfig::fixed(2);
        let h = Harness::loopback(2, group, &cfg, |_, _, _| {}).unwrap();
        let page = PageId::new(SourceId(1), 0);
        let name = h.nodes[0].send_data(page, Bytes::from_static(b"hello, wire"));
        assert_eq!(name.source, SourceId(1));

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while Instant::now() < deadline {
            got.extend(h.nodes[1].take_delivered());
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(got.len(), 1, "ADU did not arrive over loopback UDP");
        assert_eq!(got[0].name, name);
        assert_eq!(got[0].payload.as_ref(), b"hello, wire");
        assert!(h.nodes[0].frames_sent() >= 1);
        let agents = h.shutdown();
        assert_eq!(agents.len(), 2);
        assert_eq!(agents[0].metrics.data_sent, 1);
    }
}

//! srm-hub: many SRM sessions in one process, over one shared socket.
//!
//! The paper's sessions are *light-weight* (§I): all per-session state is
//! an agent, a timer wheel, an RNG, and a peer list. A whole host process
//! per session therefore wastes the expensive parts — sockets, threads,
//! kernel buffers — on state that costs almost nothing. The hub inverts
//! that: **one** batched UDP socket and a small fixed pool of shard
//! reactors host arbitrarily many groups.
//!
//! ```text
//!                   ┌───────────── hub process ─────────────┐
//!   UDP ──recv──▶ demux ──group id──▶ shard 0 ─▶ agents g1,g5,…
//!   socket          │ (precheck only) shard 1 ─▶ agents g2,g6,…
//!     ▲             │                 …
//!     └──────send───┴──── every shard sends on a socket clone
//! ```
//!
//! The demux thread reads only the envelope prefix
//! ([`Envelope::precheck`]: magic, version, group id) and routes each
//! frame to `shard_of(group)` — the full decode, and every protocol
//! decision, happens on the owning shard, so the inbound path stays
//! zero-copy: the pooled receive buffer itself travels down the shard
//! channel. The one exception is a GRO-coalesced buffer whose segments
//! straddle shards; it is split with per-segment copies and counted
//! (`demux_splits`), so the cost is visible, rare, and never silent.
//!
//! Control (create/join/send/drain/stats/stop) arrives as line-JSON via
//! [`crate::control`]; per-group token buckets (§III-E) meter each
//! session's send rate with refusals counted as `quota_overflow`. The
//! frame-accounting invariant of the single-node runtime carries over
//! hub-wide: `frames_attempted == frames_sent + send_errors`, because
//! quota refusals (like chaos drops) happen before the fan-out.

use crate::batch::{make_backend, BatchOptions, RecvFrame};
use crate::clock::WallClock;
use crate::control::GroupSpec;
use crate::envelope::Envelope;
use crate::pool::{BufferPool, PoolBuf};
use crate::shard::{
    run_shard, DrainOutcome, GroupStats, ShardCommand, ShardConfig, ShardEvent, ShardReply,
};
use crate::supervise::{run_supervised, ExitReason, StepOutcome, SupervisePolicy};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Read timeout on the demux thread's socket, bounding shutdown latency.
const RECV_POLL: Duration = Duration::from_millis(25);
/// How long a control call waits for its shard's reply before declaring
/// the shard wedged.
const RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Hub-wide frame accounting, shared by the demux thread and every shard.
///
/// The invariant from the single-node runtime holds across the whole hub:
/// `frames_attempted == frames_sent + send_errors` once the shards are
/// quiescent, regardless of quota pressure (refusals never reach the
/// fan-out).
#[derive(Default)]
pub(crate) struct HubCounters {
    pub frames_attempted: AtomicU64,
    pub frames_sent: AtomicU64,
    pub send_errors: AtomicU64,
    pub rx_frames: AtomicU64,
    pub rx_undecodable: AtomicU64,
    pub rx_unjoined_group: AtomicU64,
    pub inbound_overflow: AtomicU64,
    pub demux_splits: AtomicU64,
}

/// Point-in-time rollup of the whole hub: per-group counters plus the
/// shared frame accounting.
#[derive(Clone, Debug, Default)]
pub struct HubStats {
    /// Every hosted group, sorted by group id (stable across shard
    /// assignment).
    pub groups: Vec<GroupStats>,
    /// Unicast fan-out frames handed to the send path.
    pub frames_attempted: u64,
    /// Fan-out frames the kernel accepted.
    pub frames_sent: u64,
    /// Fan-out frames the kernel refused.
    pub send_errors: u64,
    /// Frames routed to a hosted group's agent.
    pub rx_frames: u64,
    /// Datagrams (or GRO segments) that failed the envelope precheck or
    /// decode.
    pub rx_undecodable: u64,
    /// Well-formed frames for a group no shard hosts — the hub-side
    /// analogue of the node's `rx_unjoined_group`.
    pub rx_unjoined_group: u64,
    /// Datagrams shed because a shard's bounded channel was full.
    pub inbound_overflow: u64,
    /// GRO buffers whose segments straddled shards and had to be split
    /// with per-segment copies (the only non-zero-copy inbound path).
    pub demux_splits: u64,
}

impl HubStats {
    /// The `stats` control reply: one JSON line, fixed key order, groups
    /// sorted by id. Counters are live, so this is the one control reply
    /// the golden test does not pin byte-for-byte.
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"ok\":true,\"cmd\":\"stats\",\"hub\":{{\"frames_attempted\":{},\"frames_sent\":{},\
             \"send_errors\":{},\"rx_frames\":{},\"rx_undecodable\":{},\"rx_unjoined_group\":{},\
             \"inbound_overflow\":{},\"demux_splits\":{}}},\"groups\":[",
            self.frames_attempted,
            self.frames_sent,
            self.send_errors,
            self.rx_frames,
            self.rx_undecodable,
            self.rx_unjoined_group,
            self.inbound_overflow,
            self.demux_splits,
        );
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"group\":{},\"shard\":{},\"members\":{},\"rx_frames\":{},\"tx_frames\":{},\
                 \"delivered\":{},\"data_sent\":{},\"repairs_sent\":{},\"session_sent\":{},\
                 \"quota_overflow\":{}}}",
                g.group,
                g.shard,
                g.members,
                g.rx_frames,
                g.tx_frames,
                g.delivered,
                g.data_sent,
                g.repairs_sent,
                g.session_sent,
                g.quota_overflow,
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Which shard hosts a group: a splitmix-style mix of the group id, mod
/// the shard count. Stable for the hub's lifetime (and across hubs with
/// the same shard count), independent of creation order, and spread even
/// for the small consecutive ids sessions actually use — `tests/hub.rs`
/// property-checks the partition against this function.
pub fn shard_of(group: u32, shards: usize) -> usize {
    let n = shards.max(1) as u64;
    let mut x = u64::from(group).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) % n) as usize
}

/// Hub spawn configuration.
#[derive(Clone, Debug)]
pub struct HubOptions {
    /// Shard reactor count (each is one thread hosting many groups).
    pub shards: usize,
    /// Hub seed; each group's RNG derives from it via
    /// [`crate::shard::group_seed`], so replays are per-group stable no
    /// matter which shard hosts the group.
    pub seed: u64,
    /// Batched-datapath tuning, shared by the demux thread and every
    /// shard's send half.
    pub batch: BatchOptions,
    /// Live metrics registry: per-group counters land as `hub.g{G}.*`,
    /// shard gauges as `hub.shard{i}.*`.
    pub metrics: Option<obs::MetricsRegistry>,
    /// Durable-store root: group `g` logs under `<root>/<g>/`.
    pub store_root: Option<PathBuf>,
    /// Demux recv-thread supervision (classify/backoff/respawn).
    pub supervision: SupervisePolicy,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            shards: 4,
            seed: 1,
            batch: BatchOptions::default(),
            metrics: None,
            store_root: None,
            supervision: SupervisePolicy::default(),
        }
    }
}

/// What `create`/`join` report back.
#[derive(Clone, Copy, Debug)]
pub struct CreateOutcome {
    /// The shard now hosting the group.
    pub shard: usize,
    /// `join` only: the group already existed.
    pub already: bool,
}

struct HubInner {
    addr: SocketAddr,
    shard_tx: Vec<mpsc::SyncSender<ShardEvent>>,
    counters: Arc<HubCounters>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    stopped: AtomicBool,
    metrics: Option<HubReg>,
}

/// Hub-level registry mirrors, refreshed on every `stats()` call (the
/// hub has no central reactor loop to refresh them from).
struct HubReg {
    frames_attempted: obs::Counter,
    frames_sent: obs::Counter,
    send_errors: obs::Counter,
    rx_frames: obs::Counter,
    rx_undecodable: obs::Counter,
    rx_unjoined: obs::Counter,
    inbound_overflow: obs::Counter,
    demux_splits: obs::Counter,
}

impl HubReg {
    fn new(reg: &obs::MetricsRegistry) -> Self {
        HubReg {
            frames_attempted: reg.counter("hub.frames_attempted"),
            frames_sent: reg.counter("hub.frames_sent"),
            send_errors: reg.counter("hub.send_errors"),
            rx_frames: reg.counter("hub.rx_frames"),
            rx_undecodable: reg.counter("hub.rx_undecodable"),
            rx_unjoined: reg.counter("hub.rx_unjoined_group"),
            inbound_overflow: reg.counter("hub.inbound_overflow"),
            demux_splits: reg.counter("hub.demux_splits"),
        }
    }

    fn refresh(&self, c: &HubCounters) {
        self.frames_attempted.set_total(c.frames_attempted.load(Ordering::Relaxed));
        self.frames_sent.set_total(c.frames_sent.load(Ordering::Relaxed));
        self.send_errors.set_total(c.send_errors.load(Ordering::Relaxed));
        self.rx_frames.set_total(c.rx_frames.load(Ordering::Relaxed));
        self.rx_undecodable.set_total(c.rx_undecodable.load(Ordering::Relaxed));
        self.rx_unjoined.set_total(c.rx_unjoined_group.load(Ordering::Relaxed));
        self.inbound_overflow.set_total(c.inbound_overflow.load(Ordering::Relaxed));
        self.demux_splits.set_total(c.demux_splits.load(Ordering::Relaxed));
    }
}

/// Spawner for hub runtimes.
pub struct Hub;

impl Hub {
    /// Bind `bind` and start a hub there.
    pub fn spawn(bind: SocketAddr, opts: HubOptions) -> io::Result<HubHandle> {
        Hub::spawn_on(UdpSocket::bind(bind)?, opts)
    }

    /// Start a hub on an already-bound socket.
    pub fn spawn_on(socket: UdpSocket, opts: HubOptions) -> io::Result<HubHandle> {
        let addr = socket.local_addr()?;
        // One call covers every clone: dup'd descriptors share the socket,
        // and N shards can burst flushes into the same kernel buffer.
        crate::batch::configure_socket_buffers(&socket, opts.batch.socket_bufs);

        let shards = opts.shards.max(1);
        let counters = Arc::new(HubCounters::default());
        let clock = WallClock::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut shard_tx = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards + 1);

        for index in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<ShardEvent>(opts.batch.inbound_capacity.max(1));
            shard_tx.push(tx);
            let send = make_backend(socket.try_clone()?, &opts.batch);
            let cfg = ShardConfig {
                index,
                seed: opts.seed,
                clock: clock.clone(),
                batch: opts.batch,
                metrics: opts.metrics.clone(),
                store_root: opts.store_root.clone(),
                counters: Arc::clone(&counters),
            };
            threads.push(
                thread::Builder::new()
                    .name(format!("srm-hub-shard{index}"))
                    .spawn(move || run_shard(cfg, send, rx))?,
            );
        }

        let demux_txs = shard_tx.clone();
        let demux_counters = Arc::clone(&counters);
        let demux_stop = Arc::clone(&stop);
        let demux_clock = clock;
        let policy = opts.supervision;
        let batch = opts.batch;
        threads.push(
            thread::Builder::new()
                .name("srm-hub-demux".to_string())
                .spawn(move || {
                    run_demux_supervised(
                        &policy,
                        socket,
                        addr,
                        batch,
                        demux_clock,
                        demux_txs,
                        demux_counters,
                        demux_stop,
                    )
                })?,
        );

        Ok(HubHandle {
            inner: Arc::new(HubInner {
                addr,
                shard_tx,
                counters,
                stop,
                threads: Mutex::new(threads),
                stopped: AtomicBool::new(false),
                metrics: opts.metrics.as_ref().map(HubReg::new),
            }),
        })
    }
}

/// Cloneable handle to a running hub; the control plane and tests drive
/// everything through it.
#[derive(Clone)]
pub struct HubHandle {
    inner: Arc<HubInner>,
}

impl HubHandle {
    /// The shared socket's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Shard count (fixed at spawn).
    pub fn shards(&self) -> usize {
        self.inner.shard_tx.len()
    }

    fn rpc(
        &self,
        shard: usize,
        build: impl FnOnce(mpsc::SyncSender<ShardReply>) -> ShardCommand,
    ) -> Result<ShardReply, String> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.inner.shard_tx[shard]
            .send(ShardEvent::Command(build(tx)))
            .map_err(|_| format!("shard {shard} is down"))?;
        rx.recv_timeout(RPC_TIMEOUT)
            .map_err(|_| format!("shard {shard} did not reply"))
    }

    /// Host a group on its hash-assigned shard. `idempotent` is `join`
    /// semantics: a duplicate reports `already:true` instead of an error.
    pub fn create(&self, spec: GroupSpec, idempotent: bool) -> Result<CreateOutcome, String> {
        let shard = shard_of(spec.group, self.shards());
        match self.rpc(shard, |reply| ShardCommand::Create { spec, idempotent, reply })? {
            ShardReply::Created { already } => Ok(CreateOutcome { shard, already }),
            ShardReply::Err(e) => Err(e),
            _ => Err("unexpected shard reply".into()),
        }
    }

    /// Publish `count` ADUs of `text` on `group`'s page 0; returns the
    /// last ADU's name.
    pub fn send(&self, group: u32, text: &str, count: u32) -> Result<String, String> {
        let shard = shard_of(group, self.shards());
        let text = text.to_string();
        match self.rpc(shard, |reply| ShardCommand::Send { group, text, count, reply })? {
            ShardReply::Sent { last } => Ok(last),
            ShardReply::Err(e) => Err(e),
            _ => Err("unexpected shard reply".into()),
        }
    }

    /// Gracefully drain one group: final session message, WAL flush,
    /// detach.
    pub fn drain(&self, group: u32) -> Result<DrainOutcome, String> {
        let shard = shard_of(group, self.shards());
        match self.rpc(shard, |reply| ShardCommand::Drain { group, reply })? {
            ShardReply::Drained(out) => Ok(out),
            ShardReply::Err(e) => Err(e),
            _ => Err("unexpected shard reply".into()),
        }
    }

    /// Drain every hosted group on every shard (the hub keeps running).
    pub fn drain_all(&self) -> DrainOutcome {
        let mut total = DrainOutcome::default();
        for shard in 0..self.shards() {
            if let Ok(ShardReply::Drained(one)) =
                self.rpc(shard, |reply| ShardCommand::DrainAll { reply })
            {
                total.groups += one.groups;
                total.data_sent += one.data_sent;
                total.delivered += one.delivered;
            }
        }
        total
    }

    /// Roll up per-group counters from every shard plus the hub-shared
    /// frame accounting. Groups come back sorted by id.
    pub fn stats(&self) -> HubStats {
        let mut groups = Vec::new();
        for shard in 0..self.shards() {
            if let Ok(ShardReply::Stats(mut s)) =
                self.rpc(shard, |reply| ShardCommand::Stats { reply })
            {
                groups.append(&mut s);
            }
        }
        groups.sort_by_key(|g| g.group);
        let c = &self.inner.counters;
        if let Some(reg) = &self.inner.metrics {
            reg.refresh(c);
        }
        HubStats {
            groups,
            frames_attempted: c.frames_attempted.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            send_errors: c.send_errors.load(Ordering::Relaxed),
            rx_frames: c.rx_frames.load(Ordering::Relaxed),
            rx_undecodable: c.rx_undecodable.load(Ordering::Relaxed),
            rx_unjoined_group: c.rx_unjoined_group.load(Ordering::Relaxed),
            inbound_overflow: c.inbound_overflow.load(Ordering::Relaxed),
            demux_splits: c.demux_splits.load(Ordering::Relaxed),
        }
    }

    /// Stop the hub: drain every group, stop the demux thread, join all
    /// threads. Idempotent; later calls (and other clones) are no-ops.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        for tx in &self.inner.shard_tx {
            let _ = tx.send(ShardEvent::Shutdown);
        }
        let mut threads = self.inner.threads.lock().unwrap_or_else(|e| e.into_inner());
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HubInner {
    fn drop(&mut self) {
        // Last handle gone without an explicit shutdown: stop the threads
        // rather than leaking them, but don't block on joins in drop.
        self.stop.store(true, Ordering::SeqCst);
        for tx in &self.shard_tx {
            let _ = tx.try_send(ShardEvent::Shutdown);
        }
    }
}

/// The supervised demux loop: drain a batch from the shared socket,
/// precheck each buffer's leading frame(s) for the routing group id, and
/// move the pooled buffer — zero-copy — down the owning shard's channel.
/// Poll timeouts are heartbeats (checking the stop flag); everything else
/// goes through the classify/backoff/respawn state machine.
#[allow(clippy::too_many_arguments)]
fn run_demux_supervised(
    policy: &SupervisePolicy,
    master: UdpSocket,
    local: SocketAddr,
    batch: BatchOptions,
    clock: WallClock,
    shard_tx: Vec<mpsc::SyncSender<ShardEvent>>,
    counters: Arc<HubCounters>,
    stop: Arc<AtomicBool>,
) {
    let pool = BufferPool::new(batch.pool_slabs, crate::runtime::MAX_DATAGRAM);
    if batch.batch_sched {
        crate::batch::enter_batch_scheduling();
    }
    let reason = run_supervised(
        policy,
        |attempt| {
            let sock = if attempt == 0 {
                master.try_clone()?
            } else {
                // Respawn: prefer a clone of the original descriptor, fall
                // back to a fresh bind of the same address.
                master.try_clone().or_else(|_| UdpSocket::bind(local))?
            };
            sock.set_read_timeout(Some(RECV_POLL))?;
            let mut backend = make_backend(sock, &batch);
            let shard_tx = shard_tx.clone();
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            let pool = pool.clone();
            let mut bufs: Vec<RecvFrame> = Vec::new();
            Ok(move || -> io::Result<StepOutcome> {
                if stop.load(Ordering::Relaxed) {
                    return Ok(StepOutcome::Stop);
                }
                bufs.clear();
                match backend.recv_batch(&pool, batch.recv_batch, &mut bufs) {
                    Ok(_) => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Heartbeat: nothing arrived within the poll
                        // window; loop to re-check the stop flag.
                        return Ok(StepOutcome::Continue);
                    }
                    Err(e) => return Err(e),
                }
                let at = clock.now();
                for f in bufs.drain(..) {
                    route_frame(at, f, &shard_tx, &counters);
                }
                Ok(StepOutcome::Continue)
            })
        },
        |_event| {},
        |backoff| {
            // Interruptible backoff, keeping shutdown latency bounded.
            let mut left = backoff;
            while !stop.load(Ordering::Relaxed) && left > Duration::ZERO {
                let chunk = left.min(RECV_POLL);
                thread::sleep(chunk);
                left = left.saturating_sub(chunk);
            }
        },
    );
    if matches!(reason, ExitReason::Exhausted { .. }) {
        eprintln!("srm-hub: demux thread died: {}", reason.label());
    }
}

/// Route one received buffer. Fast path: every segment prechecks to the
/// same shard (always true for plain datagrams), so the whole pooled
/// buffer moves zero-copy. Slow path: a GRO buffer straddling shards is
/// split per segment (counted in `demux_splits`).
fn route_frame(
    at: netsim::SimTime,
    f: RecvFrame,
    shard_tx: &[mpsc::SyncSender<ShardEvent>],
    counters: &HubCounters,
) {
    let shards = shard_tx.len();
    let data: &[u8] = &f.buf;
    let stride = match f.seg_size as usize {
        0 => data.len().max(1),
        s => s,
    };

    // First pass over the segment prefixes only: where does each go?
    let mut target: Option<usize> = None;
    let mut uniform = true;
    let mut any_ok = false;
    let mut off = 0;
    while off < data.len() {
        let chunk = &data[off..(off + stride).min(data.len())];
        off += stride;
        match Envelope::precheck(chunk) {
            Ok(group) => {
                any_ok = true;
                let s = shard_of(group, shards);
                match target {
                    None => target = Some(s),
                    Some(t) if t == s => {}
                    Some(_) => uniform = false,
                }
            }
            Err(_) => {
                // A bad segment inside an otherwise-routable buffer still
                // forces the split path so the good segments survive and
                // the bad one is counted exactly once, here.
                if f.seg_size != 0 && data.len() > stride {
                    uniform = false;
                } else {
                    counters.rx_undecodable.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    if !any_ok {
        // Multi-segment buffer where nothing prechecks: count each
        // segment and drop the lot.
        let n = data.len().div_ceil(stride).max(1) as u64;
        counters.rx_undecodable.fetch_add(n, Ordering::Relaxed);
        return;
    }

    if uniform {
        let shard = target.unwrap_or(0);
        let frames = f.frame_count() as u64;
        match shard_tx[shard].try_send(ShardEvent::Datagram(at, f.seg_size, f.buf)) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                // Shed, count, keep draining the socket: SRM repairs the
                // gap exactly as it would wire loss. A shed coalesced
                // buffer loses every frame it carried.
                counters.inbound_overflow.fetch_add(frames, Ordering::Relaxed);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {}
        }
        return;
    }

    // Split path: per-segment copies, one datagram event each.
    counters.demux_splits.fetch_add(1, Ordering::Relaxed);
    let mut off = 0;
    while off < data.len() {
        let chunk = &data[off..(off + stride).min(data.len())];
        off += stride;
        match Envelope::precheck(chunk) {
            Ok(group) => {
                let shard = shard_of(group, shards);
                match shard_tx[shard].try_send(ShardEvent::Datagram(
                    at,
                    0,
                    PoolBuf::copied_from(chunk),
                )) {
                    Ok(()) | Err(mpsc::TrySendError::Disconnected(_)) => {}
                    Err(mpsc::TrySendError::Full(_)) => {
                        counters.inbound_overflow.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                counters.rx_undecodable.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::group_seed;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..=8usize {
            for g in 0..1000u32 {
                let s = shard_of(g, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(g, shards), "must be deterministic");
            }
        }
        // Degenerate count never panics.
        assert_eq!(shard_of(42, 0), 0);
    }

    #[test]
    fn shard_of_spreads_small_consecutive_ids() {
        // Sessions use small ids; the mix must not send them all to one
        // shard. Expect every shard of 4 to see at least one of 1..=16.
        let mut seen = [false; 4];
        for g in 1..=16u32 {
            seen[shard_of(g, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "ids 1..=16 must hit all 4 shards: {seen:?}");
    }

    #[test]
    fn group_seeds_differ_across_groups_and_hub_seeds() {
        assert_ne!(group_seed(1, 1), group_seed(1, 2));
        assert_ne!(group_seed(1, 1), group_seed(2, 1));
        assert_eq!(group_seed(7, 9), group_seed(7, 9));
    }

    #[test]
    fn hub_hosts_sends_and_drains_a_sole_member_group() {
        let hub = Hub::spawn("127.0.0.1:0".parse().unwrap(), HubOptions::default()).unwrap();
        let spec = GroupSpec {
            group: 5,
            peers: vec![],
            id: 1,
            members: 1,
            rate: None,
            burst: None,
            dist_ms: None,
        };
        let out = hub.create(spec.clone(), false).unwrap();
        assert_eq!(out.shard, shard_of(5, hub.shards()));
        // Duplicate create errors; duplicate join reports `already`.
        assert!(hub.create(spec.clone(), false).is_err());
        assert!(hub.create(spec, true).unwrap().already);

        let last = hub.send(5, "hello", 3).unwrap();
        assert!(last.contains("s1"), "ADU name names the source: {last}");
        assert!(hub.send(99, "x", 1).is_err(), "unhosted group refuses sends");

        let st = hub.stats();
        assert_eq!(st.groups.len(), 1);
        assert_eq!(st.groups[0].group, 5);
        assert_eq!(st.groups[0].data_sent, 3);

        let d = hub.drain(5).unwrap();
        assert_eq!(d.groups, 1);
        assert_eq!(d.data_sent, 3);
        assert!(hub.drain(5).is_err(), "already drained");
        hub.shutdown();
        hub.shutdown(); // idempotent
    }

    #[test]
    fn quota_refusals_keep_the_accounting_invariant() {
        // A tiny bucket admits the first (oversize-with-debt) frame and
        // refuses the rest; attempted == sent + errors must still hold.
        let hub = Hub::spawn("127.0.0.1:0".parse().unwrap(), HubOptions::default()).unwrap();
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap(); // discard port
        let spec = GroupSpec {
            group: 3,
            peers: vec![peer],
            id: 1,
            members: 2,
            rate: Some(1.0),
            burst: Some(1.0),
            dist_ms: None,
        };
        hub.create(spec, false).unwrap();
        hub.send(3, "flood", 50).unwrap();
        let st = hub.stats();
        let g = &st.groups[0];
        assert!(g.quota_overflow > 0, "bucket must refuse most of the flood: {g:?}");
        assert!(g.tx_frames < 50 + g.session_sent, "refused frames never fan out");
        assert_eq!(
            st.frames_attempted,
            st.frames_sent + st.send_errors,
            "hub invariant: {st:?}"
        );
        hub.shutdown();
    }
}

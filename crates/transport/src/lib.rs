//! # srm-transport — SRM over live UDP sockets
//!
//! The bridge from reproduction to system: a wall-clock runtime that hosts
//! the *unmodified* [`SrmAgent`](srm::SrmAgent) — the exact protocol engine
//! every simulated figure runs — on real `std::net::UdpSocket`s, through
//! the [`srm::Driver`] seam.
//!
//! Pieces:
//!
//! - [`WallClock`]: monotonic elapsed time on the simulator's
//!   [`SimTime`](netsim::SimTime) axis.
//! - [`TimerWheel`]: min-heap one-shot timers with lazy cancellation — the
//!   real-time stand-in for the simulator's event queue.
//! - [`Envelope`]: the datagram frame carrying the simulator packet
//!   metadata (source, TTL, scope, flow) around the untouched
//!   [`srm::wire`] message encoding.
//! - [`Node`] / [`NodeHandle`]: a thread-per-socket reactor per member —
//!   receive thread feeding a channel, main loop interleaving datagrams
//!   with [`TimerWheel`] deadlines.
//! - [`Mode`]: real IP multicast (`join_multicast_v4`) or a unicast
//!   loopback mesh (the CI-friendly stand-in for group delivery).
//! - [`LossPolicy`]: deterministic send-side loss for recovery tests.
//! - [`Harness`]: in-process multi-node loopback sessions.
//!
//! The `srm-node` binary wraps all of this in a CLI (`join` / `send`,
//! `--trace FILE` for obs JSONL timelines).
//!
//! ## Example: two members on loopback
//!
//! ```no_run
//! use srm_transport::Harness;
//! use srm::{SrmConfig, SourceId, PageId};
//! use netsim::GroupId;
//! use bytes::Bytes;
//!
//! let cfg = SrmConfig::fixed(2);
//! let h = Harness::loopback(2, GroupId(1), &cfg, |_, _, _| {}).unwrap();
//! let page = PageId::new(SourceId(1), 0);
//! h.nodes[0].send_data(page, Bytes::from_static(b"over real sockets"));
//! std::thread::sleep(std::time::Duration::from_millis(200));
//! assert_eq!(h.nodes[1].take_delivered().len(), 1);
//! ```

// `deny`, not `forbid`: the one FFI module (`batch::ffi`, the
// recvmmsg/sendmmsg declarations) carries a scoped allow; everything else
// stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod clock;
pub mod control;
pub mod envelope;
pub mod harness;
pub mod hub;
pub mod monitor;
pub mod pool;
pub mod runtime;
pub mod shard;
pub mod soak;
pub mod supervise;
pub mod wheel;

pub use batch::{
    configure_socket_buffers, enter_batch_scheduling, make_backend, BatchOptions, BatchSocket,
    PortableSocket, RecvFrame, SendFrame,
};
pub use chaos::{parse_spec, ChaosPlan, ChaosState, ChaosTally, ChaosTransport, DelayQueue};
pub use clock::WallClock;
pub use control::{handle_line, parse_command, Command, GroupSpec};
pub use envelope::{Envelope, EnvelopeError, EnvelopeView};
pub use harness::{harvest_summary, harvest_timeline, Harness};
pub use hub::{shard_of, CreateOutcome, Hub, HubHandle, HubOptions, HubStats};
pub use monitor::{GroupMonitor, MemberHealth};
pub use pool::{BufferPool, PoolBuf};
pub use runtime::{LossPolicy, Mode, Node, NodeHandle, NodeOptions, StoreOptions, TransportStats};
pub use shard::{group_seed, DrainOutcome, GroupStats};
pub use soak::{SoakOptions, SoakReport};
pub use supervise::{
    classify, run_supervised, ErrorClass, ExitReason, StepOutcome, SupervisePolicy,
    SupervisionEvent,
};
pub use wheel::TimerWheel;

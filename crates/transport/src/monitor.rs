//! Passive group-health monitoring from received session messages.
//!
//! Section III-A makes every member a beacon: each session message carries
//! the sender's per-source sequence-number state, timestamp echoes for
//! distance estimation, and a self-reported loss rate.  A read-only
//! observer that joins the group therefore needs **no cooperation** from
//! the members to reconstruct group health — the observability substrate
//! is the protocol's own control traffic.
//!
//! [`GroupMonitor`] is that observer's state machine, kept free of sockets
//! so it is unit-testable with synthetic [`Message`]s:
//!
//! - **Lag**: every session message reports the sender's highest received
//!   sequence per `(page, source)` flow.  The monitor keeps the group-wide
//!   maximum per flow; a member's lag on a flow is the distance between
//!   that maximum and the member's last report.  A member that has
//!   repaired a loss converges back to lag 0 without the monitor ever
//!   seeing the repair.
//! - **RTT**: member A stamps its session with its local clock `t1`;
//!   member B later echoes `(A, t1, Δ)` where Δ is B's hold time.  The
//!   monitor saw A's message arrive at `m1` and sees B's echo arrive at
//!   `m2`, so `(m2 − m1) − Δ ≈ d(A→B) + d(B→M) − d(A→M)` — on a roughly
//!   symmetric topology, the one-way distance between A and B, by the same
//!   NTP-style algebra the members themselves use (clock skew cancels:
//!   `t1` is only used as a lookup key and Δ is a duration).  Samples are
//!   EWMA-smoothed per member; reported RTT is twice the distance.
//! - **Liveness**: the members' own alive/suspect/dead machine
//!   ([`PeerLiveness`]) re-used verbatim, driven by monitor arrival times
//!   and swept against the nominal session interval for the observed
//!   group size.
//! - **Loss**: the sender's self-reported session `loss_rate`, plus a
//!   monitor-side estimate from session-beacon arrivals versus the nominal
//!   interval (a member whose beacons reach the monitor half as often as
//!   the schedule predicts is losing about half of them).
//!
//! The srm-node `monitor` subcommand wraps this in a socket loop and
//! renders [`GroupMonitor::render_table`] / [`GroupMonitor::to_json_line`]
//! periodically; `srm-experiments monitor` aggregates the JSONL.

use std::collections::{BTreeMap, VecDeque};

use netsim::{SimDuration, SimTime};
use srm::liveness::Transition;
use srm::session::SessionScheduler;
use srm::{Body, LivenessConfig, Message, PageId, PeerLiveness, PeerState, SeqNo, SourceId, SrmConfig};

/// How many recent `(timestamp, arrival)` pairs to keep per member for
/// echo matching.  Echoes reference the peer's *latest* heard session, so a
/// short ring suffices even with reordering.
const TS_RING_CAP: usize = 16;

/// EWMA weight for new distance samples.
const RTT_ALPHA: f64 = 0.25;

/// One flow's identity: the page and the originating source within it.
pub type FlowKey = (PageId, SourceId);

/// Per-member state reconstructed from received traffic.
#[derive(Debug, Clone)]
struct MemberEntry {
    /// Monitor-clock arrival of the last frame from this member.
    last_heard: SimTime,
    /// Monitor-clock arrival of the first frame from this member.
    first_heard: SimTime,
    /// Session messages heard from this member.
    sessions_heard: u64,
    /// Frames of any kind heard from this member.
    frames_heard: u64,
    /// The member's last self-reported loss rate.
    reported_loss: f32,
    /// Highest sequence the member last reported per flow.
    reported: BTreeMap<FlowKey, SeqNo>,
    /// EWMA one-way distance estimate (seconds), from echo algebra.
    distance: Option<f64>,
    /// Recent (their local send timestamp, monitor arrival) pairs from this
    /// member's session messages, for matching later echoes.
    ts_ring: VecDeque<(SimTime, SimTime)>,
}

impl MemberEntry {
    fn new(now: SimTime) -> Self {
        MemberEntry {
            last_heard: now,
            first_heard: now,
            sessions_heard: 0,
            frames_heard: 0,
            reported_loss: 0.0,
            reported: BTreeMap::new(),
            distance: None,
            ts_ring: VecDeque::new(),
        }
    }

    fn fold_distance(&mut self, sample: f64) {
        self.distance = Some(match self.distance {
            None => sample,
            Some(d) => d + RTT_ALPHA * (sample - d),
        });
    }
}

/// A snapshot of one member's health, derived purely from received
/// session messages (plus arrival times of any other traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct MemberHealth {
    /// The member.
    pub member: SourceId,
    /// Liveness state from session-silence thresholds.
    pub state: PeerState,
    /// Seconds of silence at snapshot time.
    pub silence: SimDuration,
    /// Session messages heard.
    pub sessions_heard: u64,
    /// Frames of any kind heard.
    pub frames_heard: u64,
    /// Estimated round-trip time to the group (2 × EWMA one-way distance),
    /// `None` until an echo involving this member has been observed.
    pub rtt: Option<SimDuration>,
    /// The member's own last-reported loss rate.
    pub reported_loss: f32,
    /// Monitor-side session-loss estimate: `1 − heard/expected` over the
    /// member's observed lifetime, `None` before one nominal interval has
    /// passed.
    pub session_loss: Option<f64>,
    /// Per-flow lag behind the group-wide highest sequence.
    pub lag: BTreeMap<FlowKey, u64>,
}

impl MemberHealth {
    /// The worst lag across flows (0 when fully caught up or no flows).
    pub fn max_lag(&self) -> u64 {
        self.lag.values().copied().max().unwrap_or(0)
    }
}

/// Reconstructs per-member group health from observed traffic.
///
/// Feed every decoded [`Message`] to [`GroupMonitor::observe`], call
/// [`GroupMonitor::sweep`] periodically (session-interval cadence), and
/// read [`GroupMonitor::health`].
#[derive(Debug, Clone)]
pub struct GroupMonitor {
    scheduler: SessionScheduler,
    liveness: PeerLiveness,
    members: BTreeMap<SourceId, MemberEntry>,
    /// Group-wide highest sequence seen in any report, per flow.
    high: BTreeMap<FlowKey, SeqNo>,
    /// JSONL snapshot sequence number.
    snap_seq: u64,
}

impl GroupMonitor {
    /// A monitor using `cfg`'s session-bandwidth schedule (so its silence
    /// thresholds match what the members themselves run) and the given
    /// liveness thresholds.
    pub fn new(cfg: &SrmConfig, liveness_cfg: LivenessConfig) -> Self {
        let scheduler = SessionScheduler {
            bandwidth: cfg.session_bandwidth,
            fraction: cfg.session_fraction,
            msg_bytes: cfg.session_msg_bytes,
            min_interval: cfg.min_session_interval,
        };
        let mut liveness = PeerLiveness::new();
        liveness.enable(liveness_cfg);
        GroupMonitor { scheduler, liveness, members: BTreeMap::new(), high: BTreeMap::new(), snap_seq: 0 }
    }

    /// Number of distinct members heard from.
    pub fn group_size(&self) -> usize {
        self.members.len()
    }

    /// The nominal (un-jittered) session interval for the observed group
    /// size — the monitor's unit of silence.
    pub fn nominal_interval(&self) -> SimDuration {
        self.scheduler.nominal_interval(self.group_size().max(1))
    }

    /// Ingest one decoded message that arrived at monitor-clock `now`.
    /// Returns any revival transition (a suspect/dead member heard again).
    pub fn observe(&mut self, now: SimTime, msg: &Message) -> Option<Transition> {
        let sender = msg.header.sender;
        let revival = self.liveness.note_heard(sender, now);
        let entry = self.members.entry(sender).or_insert_with(|| MemberEntry::new(now));
        entry.last_heard = now;
        entry.frames_heard += 1;
        if let Body::Session(s) = &msg.body {
            entry.sessions_heard += 1;
            entry.reported_loss = s.loss_rate;
            // Remember (their stamp, our arrival) for later echo matching.
            if entry.ts_ring.len() == TS_RING_CAP {
                entry.ts_ring.pop_front();
            }
            entry.ts_ring.push_back((msg.header.timestamp, now));
            // Fold the reported per-flow state into this member's view and
            // the group-wide maxima.
            for &(source, seq) in &s.state {
                let key = (s.page, source);
                entry.reported.insert(key, seq);
                let high = self.high.entry(key).or_insert(seq);
                if seq > *high {
                    *high = seq;
                }
            }
            // Echo algebra: sender echoes (peer, t1, Δ); we saw peer's t1
            // arrive at a1, and this echo arrive at `now`.
            for echo in &s.echoes {
                let Some(peer) = self.members.get_mut(&echo.peer) else { continue };
                let Some(&(_, a1)) = peer.ts_ring.iter().rev().find(|(ts, _)| *ts == echo.their_ts)
                else {
                    continue;
                };
                if now < a1 {
                    continue;
                }
                let gap = now.since(a1).as_secs_f64() - echo.delay.as_secs_f64();
                let sample = gap.max(0.0);
                peer.fold_distance(sample);
                // The sample bounds both endpoints' distance to the group;
                // fold it into the echoing sender too.
                if let Some(me) = self.members.get_mut(&sender) {
                    me.fold_distance(sample);
                }
            }
        }
        revival
    }

    /// Sweep silence thresholds at `now`; call on a session-interval
    /// cadence.  Returns the liveness transitions that fired.
    pub fn sweep(&mut self, now: SimTime) -> Vec<Transition> {
        let interval = self.nominal_interval();
        self.liveness.sweep(now, interval)
    }

    /// Current liveness state of `member`.
    pub fn state(&self, member: SourceId) -> PeerState {
        self.liveness.state(member)
    }

    /// Snapshot every member's health at monitor-clock `now`, in member-id
    /// order.
    pub fn health(&self, now: SimTime) -> Vec<MemberHealth> {
        let nominal = self.nominal_interval().as_secs_f64();
        self.members
            .iter()
            .map(|(&member, e)| {
                let silence =
                    if now > e.last_heard { now.since(e.last_heard) } else { SimDuration::ZERO };
                let lag = e
                    .reported
                    .iter()
                    .map(|(key, &seq)| {
                        let high = self.high.get(key).copied().unwrap_or(seq);
                        (*key, high.0.saturating_sub(seq.0))
                    })
                    .collect();
                let lifetime =
                    if now > e.first_heard { now.since(e.first_heard).as_secs_f64() } else { 0.0 };
                let session_loss = (nominal > 0.0 && lifetime >= nominal).then(|| {
                    let expected = lifetime / nominal;
                    (1.0 - e.sessions_heard as f64 / expected).clamp(0.0, 1.0)
                });
                MemberHealth {
                    member,
                    state: self.liveness.state(member),
                    silence,
                    sessions_heard: e.sessions_heard,
                    frames_heard: e.frames_heard,
                    rtt: e.distance.map(|d| SimDuration::from_secs_f64(2.0 * d)),
                    reported_loss: e.reported_loss,
                    session_loss,
                    lag,
                }
            })
            .collect()
    }

    /// Render the group-health table for a terminal refresh.
    pub fn render_table(&self, now: SimTime) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# group monitor: {} member(s), nominal interval {:.2}s",
            self.group_size(),
            self.nominal_interval().as_secs_f64()
        );
        let _ = writeln!(
            out,
            "{:>7}  {:>8}  {:>9}  {:>8}  {:>7}  {:>8}  {:>7}  {:>8}",
            "member", "state", "silence_s", "sessions", "maxlag", "rtt_ms", "loss", "sessloss"
        );
        for h in self.health(now) {
            let state = match h.state {
                PeerState::Alive => "alive",
                PeerState::Suspect => "suspect",
                PeerState::Dead => "dead",
            };
            let rtt = h
                .rtt
                .map(|d| format!("{:.2}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".to_string());
            let sess_loss = h
                .session_loss
                .map(|l| format!("{:.2}", l))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:>7}  {:>8}  {:>9.2}  {:>8}  {:>7}  {:>8}  {:>7.2}  {:>8}",
                format!("m{}", h.member.0),
                state,
                h.silence.as_secs_f64(),
                h.sessions_heard,
                h.max_lag(),
                rtt,
                h.reported_loss,
                sess_loss,
            );
        }
        out
    }

    /// One versioned JSONL line describing the whole group at `now`
    /// (monitor-clock seconds), for post-hoc diffing against sender-side
    /// metrics snapshots.
    pub fn to_json_line(&mut self, now: SimTime) -> String {
        use std::fmt::Write as _;
        let seq = self.snap_seq;
        self.snap_seq += 1;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"v\":1,\"kind\":\"monitor\",\"seq\":{},\"at\":{:.9},\"group_size\":{},\"members\":[",
            seq,
            now.as_secs_f64(),
            self.group_size()
        );
        for (i, h) in self.health(now).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let state = match h.state {
                PeerState::Alive => "alive",
                PeerState::Suspect => "suspect",
                PeerState::Dead => "dead",
            };
            let _ = write!(
                s,
                "{{\"member\":{},\"state\":\"{}\",\"silence\":{:.6},\"sessions\":{},\"frames\":{},\"max_lag\":{},\"reported_loss\":{:.6}",
                h.member.0,
                state,
                h.silence.as_secs_f64(),
                h.sessions_heard,
                h.frames_heard,
                h.max_lag(),
                h.reported_loss,
            );
            if let Some(rtt) = h.rtt {
                let _ = write!(s, ",\"rtt\":{:.9}", rtt.as_secs_f64());
            }
            if let Some(l) = h.session_loss {
                let _ = write!(s, ",\"session_loss\":{:.6}", l);
            }
            s.push_str(",\"lag\":[");
            for (j, ((page, source), lag)) in h.lag.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"page\":\"{}.{}\",\"source\":{},\"lag\":{}}}",
                    page.creator.0, page.number, source.0, lag
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm::wire::{Echo, Header, SessionBody};

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn session(
        sender: u64,
        ts: SimTime,
        page: PageId,
        state: Vec<(SourceId, SeqNo)>,
        echoes: Vec<Echo>,
    ) -> Message {
        Message {
            header: Header { sender: SourceId(sender), timestamp: ts },
            body: Body::Session(SessionBody {
                page,
                state,
                echoes,
                loss_rate: 0.0,
                loss_fingerprint: Vec::new(),
            }),
        }
    }

    fn monitor() -> GroupMonitor {
        GroupMonitor::new(&SrmConfig::fixed(3), LivenessConfig::default())
    }

    #[test]
    fn lag_is_distance_to_group_maximum() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        let src = SourceId(1);
        // Member 1 (the source) reports seq 9; member 2 lags at 5.
        m.observe(t(1.0), &session(1, t(1.0), page, vec![(src, SeqNo(9))], vec![]));
        m.observe(t(1.1), &session(2, t(1.1), page, vec![(src, SeqNo(5))], vec![]));
        let health = m.health(t(1.2));
        assert_eq!(health.len(), 2);
        assert_eq!(health[0].member, SourceId(1));
        assert_eq!(health[0].max_lag(), 0);
        assert_eq!(health[1].member, SourceId(2));
        assert_eq!(health[1].max_lag(), 4);
        assert_eq!(health[1].lag[&(page, src)], 4);
        // Member 2 repairs its loss and reports seq 9: lag converges to 0.
        m.observe(t(2.0), &session(2, t(2.0), page, vec![(src, SeqNo(9))], vec![]));
        assert_eq!(m.health(t(2.1))[1].max_lag(), 0);
    }

    #[test]
    fn silence_flips_members_suspect_then_dead() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        m.observe(t(1.0), &session(1, t(1.0), page, vec![], vec![]));
        m.observe(t(1.0), &session(2, t(1.0), page, vec![], vec![]));
        // Keep member 1 chatty; member 2 goes silent.  Nominal interval for
        // a 2-member group floors at 1s; defaults: suspect 3, dead 8.
        for k in 2..=10 {
            m.observe(t(k as f64), &session(1, t(k as f64), page, vec![], vec![]));
        }
        let transitions = m.sweep(t(10.0));
        assert!(transitions
            .iter()
            .any(|tr| tr.peer == SourceId(2) && tr.to == PeerState::Dead));
        assert_eq!(m.state(SourceId(1)), PeerState::Alive);
        assert_eq!(m.state(SourceId(2)), PeerState::Dead);
        // Hearing the member again revives it.
        let revival = m.observe(t(11.0), &session(2, t(11.0), page, vec![], vec![]));
        assert_eq!(revival.map(|r| r.to), Some(PeerState::Alive));
    }

    #[test]
    fn echo_algebra_recovers_pairwise_distance() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        // A's session, stamped with A's local clock 100.0, reaches the
        // monitor at 5.000.  (Local clocks are deliberately offset — only
        // the stamp's identity matters.)
        m.observe(t(5.0), &session(1, t(100.0), page, vec![], vec![]));
        // B heard that message and echoes it 0.5s later (B's Δ); B's
        // session reaches the monitor at 5.540.
        let echo = Echo { peer: SourceId(1), their_ts: t(100.0), delay: SimDuration::from_secs_f64(0.5) };
        m.observe(t(5.54), &session(2, t(7.0), page, vec![], vec![echo]));
        // Sample = (5.54 − 5.0) − 0.5 = 0.04 one-way → RTT ≈ 80ms, on both
        // endpoints of the exchange.
        let health = m.health(t(6.0));
        for h in &health {
            let rtt = h.rtt.expect("both members have a sample").as_secs_f64();
            assert!((rtt - 0.08).abs() < 1e-9, "rtt={rtt}");
        }
    }

    #[test]
    fn unmatched_or_stale_echoes_are_ignored() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        m.observe(t(1.0), &session(1, t(50.0), page, vec![], vec![]));
        // Echo references a timestamp the monitor never saw (lost beacon).
        let echo = Echo { peer: SourceId(1), their_ts: t(49.0), delay: SimDuration::ZERO };
        m.observe(t(1.5), &session(2, t(9.0), page, vec![], vec![echo]));
        // Echo references a member the monitor never heard at all.
        let echo = Echo { peer: SourceId(77), their_ts: t(1.0), delay: SimDuration::ZERO };
        m.observe(t(1.6), &session(2, t(9.1), page, vec![], vec![echo]));
        assert!(m.health(t(2.0)).iter().all(|h| h.rtt.is_none()));
    }

    #[test]
    fn negative_samples_clamp_to_zero() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        m.observe(t(1.0), &session(1, t(10.0), page, vec![], vec![]));
        // Δ exceeds the observed gap (e.g. the monitor is much closer to B
        // than to A): the sample clamps to 0 instead of going negative.
        let echo = Echo { peer: SourceId(1), their_ts: t(10.0), delay: SimDuration::from_secs(5) };
        m.observe(t(1.2), &session(2, t(2.0), page, vec![], vec![echo]));
        let health = m.health(t(2.0));
        assert_eq!(health[0].rtt, Some(SimDuration::ZERO));
    }

    #[test]
    fn session_loss_estimate_tracks_missing_beacons() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        // 10s of lifetime at a 1s nominal interval (2-member group) with
        // only 5 sessions heard → about half the beacons lost.
        m.observe(t(0.0), &session(1, t(0.0), page, vec![], vec![]));
        m.observe(t(0.0), &session(2, t(0.0), page, vec![], vec![]));
        for k in 1..5 {
            m.observe(t(2.0 * k as f64), &session(1, t(2.0 * k as f64), page, vec![], vec![]));
        }
        let h = m.health(t(10.0));
        let loss = h[0].session_loss.expect("past one interval");
        assert!((loss - 0.5).abs() < 0.11, "loss={loss}");
        // The chatty path: member 2 heard every second has ~zero loss.
        let mut m2 = monitor();
        for k in 0..=10 {
            m2.observe(t(k as f64), &session(2, t(k as f64), page, vec![], vec![]));
        }
        let h2 = m2.health(t(10.0));
        assert!(h2[0].session_loss.unwrap() < 0.05);
    }

    #[test]
    fn data_frames_count_as_life_but_not_state() {
        use bytes::Bytes;
        use srm::{AduName, DataBody};
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        let msg = Message {
            header: Header { sender: SourceId(3), timestamp: t(4.0) },
            body: Body::Data(DataBody {
                name: AduName { source: SourceId(3), page, seq: SeqNo(0) },
                is_repair: false,
                answering: None,
                dist_to_requestor: 0.0,
                payload: Bytes::from_static(b"x"),
            }),
        };
        m.observe(t(4.0), &msg);
        let h = m.health(t(4.5));
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].frames_heard, 1);
        assert_eq!(h[0].sessions_heard, 0);
        assert!(h[0].lag.is_empty());
    }

    #[test]
    fn json_line_is_versioned_and_sequenced() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        m.observe(t(1.0), &session(1, t(1.0), page, vec![(SourceId(1), SeqNo(3))], vec![]));
        let line = m.to_json_line(t(2.0));
        assert!(line.starts_with("{\"v\":1,\"kind\":\"monitor\",\"seq\":0"), "{line}");
        assert!(line.contains("\"member\":1"), "{line}");
        assert!(line.contains("\"page\":\"1.0\""), "{line}");
        assert!(!line.contains('\n'));
        assert!(m.to_json_line(t(3.0)).contains("\"seq\":1"));
    }

    #[test]
    fn render_table_lists_members_and_states() {
        let mut m = monitor();
        let page = PageId::new(SourceId(1), 0);
        m.observe(t(1.0), &session(1, t(1.0), page, vec![], vec![]));
        m.observe(t(1.0), &session(2, t(1.0), page, vec![], vec![]));
        m.sweep(t(20.0));
        let table = m.render_table(t(20.0));
        assert!(table.contains("m1"), "{table}");
        assert!(table.contains("dead"), "{table}");
    }
}

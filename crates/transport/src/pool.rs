//! Fixed-slab recycle pool for datagram buffers.
//!
//! The receive thread used to allocate a fresh `Vec` for every datagram and
//! copy the filled prefix into it; the reactor then dropped it after decode.
//! Under flood that is one allocation + one copy per frame on the hottest
//! path in the runtime. [`BufferPool`] replaces it with a bounded set of
//! reusable slabs:
//!
//! - [`BufferPool::try_take`] hands out a pooled slab (no allocation); the
//!   slab is written in place by the socket backend and travels
//!   **by ownership** through the `recv → mpsc → reactor` pipeline;
//! - dropping the [`PoolBuf`] anywhere returns the slab to the free list,
//!   so steady-state receive traffic allocates nothing per frame;
//! - when the pool is dry (more frames in flight than slabs — a flood the
//!   bounded inbound channel is about to shed anyway), callers fall back to
//!   an exact-size heap buffer ([`PoolBuf::copied_from`]) and the miss is
//!   counted, so memory stays proportional to the data actually queued.
//!
//! The send path reuses the same type: a [`PoolBuf`] implements
//! [`BufMut`](bytes::BufMut), so the reactor encodes envelopes straight
//! into recycled slabs and batched sends share them by `Arc` across the
//! mesh fan-out.
//!
//! Occupancy (`in_use`/`capacity`) and the hit/miss counters feed the
//! `pool.*` gauges in the live metrics registry.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared pool state; [`PoolBuf`]s hold an `Arc` back to it for recycling.
#[derive(Debug)]
struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    slab_bytes: usize,
    capacity: usize,
    in_use: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A bounded recycle pool of fixed-size byte slabs.
///
/// Clones share the same slabs (the recv thread and the reactor each hold
/// one end).
#[derive(Clone, Debug)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// A pool of `capacity` slabs of `slab_bytes` each, all allocated up
    /// front so the steady state never touches the allocator.
    pub fn new(capacity: usize, slab_bytes: usize) -> Self {
        let capacity = capacity.max(1);
        let slab_bytes = slab_bytes.max(64);
        let free = (0..capacity).map(|_| vec![0u8; slab_bytes]).collect();
        BufferPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(free),
                slab_bytes,
                capacity,
                in_use: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Take a pooled slab, or `None` if every slab is in flight. The
    /// returned buffer is logically empty (`filled == 0`); write into
    /// [`PoolBuf::slab_mut`] and call [`PoolBuf::set_filled`].
    pub fn try_take(&self) -> Option<PoolBuf> {
        let data = self.shared.free.lock().expect("pool lock").pop()?;
        self.shared.in_use.fetch_add(1, Ordering::Relaxed);
        self.shared.hits.fetch_add(1, Ordering::Relaxed);
        Some(PoolBuf {
            data,
            filled: 0,
            home: Some(Arc::clone(&self.shared)),
        })
    }

    /// Record a pool miss (the caller built a [`PoolBuf::copied_from`]
    /// heap buffer instead).
    pub fn note_miss(&self) {
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Slab size in bytes.
    pub fn slab_bytes(&self) -> usize {
        self.shared.slab_bytes
    }

    /// (slabs out, total slabs): the occupancy gauge pair.
    pub fn occupancy(&self) -> (u64, u64) {
        (
            self.shared.in_use.load(Ordering::Relaxed),
            self.shared.capacity as u64,
        )
    }

    /// (pooled takes, heap fallbacks) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.hits.load(Ordering::Relaxed),
            self.shared.misses.load(Ordering::Relaxed),
        )
    }
}

/// An owned datagram buffer: either a recycled pool slab (returned on
/// drop) or a plain heap buffer (pool-miss fallback, freed on drop).
///
/// Dereferences to the *filled* prefix — the bytes a socket backend
/// actually wrote — not the whole slab.
#[derive(Debug)]
pub struct PoolBuf {
    data: Vec<u8>,
    filled: usize,
    home: Option<Arc<PoolShared>>,
}

impl PoolBuf {
    /// An exact-size heap buffer holding a copy of `src` — the pool-miss
    /// fallback (and the portable backend's filled-prefix copy-out).
    pub fn copied_from(src: &[u8]) -> Self {
        PoolBuf {
            data: src.to_vec(),
            filled: src.len(),
            home: None,
        }
    }

    /// The whole backing slab, for socket backends to receive into.
    pub fn slab_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Declare how many leading bytes of the slab are real data.
    ///
    /// # Panics
    /// Panics if `n` exceeds the slab size.
    pub fn set_filled(&mut self, n: usize) {
        assert!(n <= self.data.len(), "filled beyond slab");
        self.filled = n;
    }

    /// Logical length (the filled prefix).
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Reset to logically empty (keeps the slab for reuse in place).
    pub fn clear(&mut self) {
        self.filled = 0;
    }
}

impl Deref for PoolBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[..self.filled]
    }
}

impl AsRef<[u8]> for PoolBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl bytes::BufMut for PoolBuf {
    fn put_slice(&mut self, src: &[u8]) {
        let end = self.filled + src.len();
        if end > self.data.len() {
            // An oversized encode grows the slab once; the bigger slab
            // then recycles at its new size.
            self.data.resize(end, 0);
        }
        self.data[self.filled..end].copy_from_slice(src);
        self.filled = end;
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            let slab = std::mem::take(&mut self.data);
            home.in_use.fetch_sub(1, Ordering::Relaxed);
            home.free.lock().expect("pool lock").push(slab);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn slabs_recycle_and_occupancy_tracks() {
        let pool = BufferPool::new(2, 128);
        assert_eq!(pool.occupancy(), (0, 2));
        let a = pool.try_take().unwrap();
        let b = pool.try_take().unwrap();
        assert_eq!(pool.occupancy(), (2, 2));
        assert!(pool.try_take().is_none(), "pool must be dry");
        drop(a);
        assert_eq!(pool.occupancy(), (1, 2));
        let c = pool.try_take().unwrap();
        assert_eq!(pool.occupancy(), (2, 2));
        drop(b);
        drop(c);
        assert_eq!(pool.occupancy(), (0, 2));
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (3, 0));
    }

    #[test]
    fn filled_prefix_is_the_deref_view() {
        let pool = BufferPool::new(1, 64);
        let mut b = pool.try_take().unwrap();
        b.slab_mut()[..5].copy_from_slice(b"hello");
        b.set_filled(5);
        assert_eq!(&*b, b"hello");
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn heap_fallback_copies_exactly() {
        let pool = BufferPool::new(1, 64);
        let _held = pool.try_take().unwrap();
        assert!(pool.try_take().is_none());
        pool.note_miss();
        let b = PoolBuf::copied_from(b"overflow frame");
        assert_eq!(&*b, b"overflow frame");
        assert_eq!(pool.stats().1, 1);
    }

    #[test]
    fn bufmut_appends_and_grows_past_the_slab() {
        let pool = BufferPool::new(1, 64);
        let mut b = pool.try_take().unwrap();
        b.put_slice(b"head");
        b.put_u32(7);
        assert_eq!(b.len(), 8);
        assert_eq!(&b[..4], b"head");
        b.put_slice(&[0xAB; 128]);
        assert_eq!(b.len(), 136, "oversized encode grows the slab");
        drop(b);
        // The grown slab recycles at its new size.
        let again = pool.try_take().unwrap();
        assert!(again.data.len() >= 136);
    }
}

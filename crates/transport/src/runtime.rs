//! The wall-clock node runtime: one [`SrmAgent`] over one live UDP socket.
//!
//! Architecture (no async runtime — the workspace builds offline):
//!
//! - a **receive thread** blocks on the socket (with a short read timeout so
//!   shutdown is prompt) and forwards raw datagrams over an [`mpsc`]
//!   channel. It runs under [`run_supervised`]: socket errors are classified
//!   transient (retried in place with bounded exponential backoff) or fatal
//!   (a fresh socket clone is respawned against a bounded budget), and
//!   panics are caught and treated as fatal. Every supervision decision is
//!   forwarded to the reactor as a typed transport event;
//! - the **reactor thread** owns the agent, a [`WallClock`], a
//!   [`TimerWheel`], a chaos [`DelayQueue`] and a per-node seeded RNG. It
//!   waits on the channel with a timeout bounded by the earliest of the
//!   wheel's next deadline and the delay queue's next release, so timers
//!   fire on time and held-back frames hit the wire on schedule — the
//!   select loop a simulator event queue collapses into `recv_timeout`;
//! - every agent entry point goes through `RtDriver`, the wall-clock
//!   implementation of the [`srm::Driver`] seam, so the protocol code that
//!   runs here is byte-for-byte the code the simulator runs. With a
//!   [`ChaosPlan`] configured, a [`ChaosTransport`] decorates the driver
//!   and applies the plan's scripted loss/duplication/corruption/reorder
//!   actions to every outgoing frame.
//!
//! Two [`Mode`]s cover deployment and CI:
//!
//! - [`Mode::Multicast`]: real IP multicast via `join_multicast_v4`; group
//!   ids map onto a contiguous block of group addresses. If the join fails
//!   (no multicast route on the interface) and `fallback_peers` are
//!   configured, the node degrades to the unicast mesh and records a
//!   `mode_fallback` event instead of running deaf.
//! - [`Mode::Mesh`]: a unicast fan-out to an explicit peer list. Multicast
//!   on a loopback interface needs `SO_REUSEADDR`/`SO_REUSEPORT` to share
//!   one port between processes, which `std::net` cannot set, so CI runs a
//!   127.0.0.1 mesh instead: every send is replicated to every peer, which
//!   is exactly the group-delivery model with a one-hop star topology.
//!
//! A [`LossPolicy`] interposes on the send path (per-flow, optionally
//! per-destination), giving tests a deterministic way to force the losses
//! SRM exists to repair. Chaos blackhole windows are applied on the same
//! per-destination fan-out, RNG-free, so they never perturb the seeded
//! chaos draw sequence.
//!
//! ## Frame accounting
//!
//! Every per-destination send attempt is counted exactly once:
//!
//! ```text
//! frames_attempted == frames_sent + frames_dropped + blackholed + send_errors
//! ```
//!
//! (chaos drop/delay decisions act *before* the fan-out and are tallied
//! separately as `chaos_*`). The soak harness asserts this invariant, which
//! is what "zero unexplained drops" means operationally.

use crate::batch::{make_backend, BatchOptions, BatchSocket, RecvFrame, SendFrame};
use crate::chaos::{Blackhole, ChaosPlan, ChaosState, ChaosTally, ChaosTransport, DelayQueue};
use crate::clock::WallClock;
use crate::envelope::Envelope;
use crate::pool::{BufferPool, PoolBuf};
use crate::supervise::{run_supervised, ExitReason, StepOutcome, SupervisePolicy, SupervisionEvent};
use crate::wheel::TimerWheel;
use bytes::Bytes;
use netsim::{GroupId, NodeId, Packet, PacketBody, PacketId, SendOptions, SimDuration, SimTime, TimerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{AduName, Clock, Driver, PageId, SrmAgent, SrmConfig, SourceId, Transport};
use srm::agent::Delivery;
use std::collections::BTreeSet;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// How the runtime reaches the rest of the group.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Unicast fan-out: every multicast is sent once to each peer address.
    /// The loopback deployment for CI and single-host demos.
    Mesh {
        /// The other members' socket addresses.
        peers: Vec<SocketAddr>,
    },
    /// Real IP multicast. [`GroupId`] `g` maps to the group address
    /// `base.ip() + g` (same port), so the session group and any
    /// local-recovery groups the agent allocates land on distinct
    /// addresses; pick a base with headroom inside 239.0.0.0/8.
    Multicast {
        /// Base group address and port.
        base: SocketAddrV4,
    },
}

impl Mode {
    fn group_addr(base: SocketAddrV4, group: GroupId) -> SocketAddrV4 {
        let ip = Ipv4Addr::from(u32::from(*base.ip()).wrapping_add(group.0));
        SocketAddrV4::new(ip, base.port())
    }
}

/// Deterministic send-side loss: drop the `nth` outgoing frame of a flow,
/// optionally only towards one destination (mesh mode replicates a send per
/// peer, so per-destination rules model a lossy link to one member while
/// the rest of the group receives normally).
#[derive(Debug, Default)]
pub struct LossPolicy {
    rules: Vec<LossRule>,
}

#[derive(Debug)]
struct LossRule {
    flow: u32,
    dest: Option<SocketAddr>,
    nth: u64,
    seen: u64,
}

impl LossPolicy {
    /// No loss.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drop the `nth` (0-based) frame of `flow`, wherever it is headed.
    pub fn drop_nth(mut self, flow: u32, nth: u64) -> Self {
        self.rules.push(LossRule {
            flow,
            dest: None,
            nth,
            seen: 0,
        });
        self
    }

    /// Drop the `nth` (0-based) frame of `flow` addressed to `dest`.
    pub fn drop_nth_to(mut self, flow: u32, dest: SocketAddr, nth: u64) -> Self {
        self.rules.push(LossRule {
            flow,
            dest: Some(dest),
            nth,
            seen: 0,
        });
        self
    }

    /// Should this (flow, destination) frame be dropped? Each rule counts
    /// the frames it matches; `dest` is `None` in multicast mode, where
    /// only destination-less rules apply.
    fn should_drop(&mut self, flow: u32, dest: Option<SocketAddr>) -> bool {
        let mut drop = false;
        for r in &mut self.rules {
            if r.flow == flow && (r.dest.is_none() || r.dest == dest) {
                if r.seen == r.nth {
                    drop = true;
                }
                r.seen += 1;
            }
        }
        drop
    }
}

/// Per-node configuration for [`Node::spawn`].
#[derive(Debug)]
pub struct NodeOptions {
    /// This member's persistent Source-ID (also the envelope's node id).
    pub id: SourceId,
    /// The session's multicast group.
    pub group: GroupId,
    /// Protocol configuration, shared with the simulator.
    pub cfg: SrmConfig,
    /// Seed for this node's timer RNG. The simulator draws every node's
    /// timers from one simulation-global seeded RNG; on a real network each
    /// host has its own, which is the deployment the paper describes. The
    /// chaos RNG is derived from this seed (salted), so one seed replays
    /// both the protocol's timers and the chaos schedule.
    pub seed: u64,
    /// Run periodic session messages (on for any real deployment; tests of
    /// a single recovery round may disable them and seed distances).
    pub session_enabled: bool,
    /// Enable the obs event recorders (recovery + transport) from the start.
    pub trace: bool,
    /// Ring capacity for the obs recorders when `trace` is on: `Some(cap)`
    /// keeps the most recent `cap` events per recorder (with a dropped
    /// count), `None` keeps everything.  Long live runs should bound this;
    /// golden-trace runs must not.
    pub trace_capacity: Option<usize>,
    /// Live metrics registry.  When set, the reactor updates hot-path
    /// counters/gauges/histograms (frames by kind, stage latencies, queue
    /// depths, chaos/supervision/liveness mirrors) that a stats emitter can
    /// snapshot concurrently.  `None` (the default, and always in simulator
    /// runs) costs one branch per instrumented site.
    pub metrics: Option<obs::MetricsRegistry>,
    /// Pre-seeded distance estimates (assumed-converged state, as the
    /// figure experiments use). Live session messages refine them.
    pub initial_distances: Vec<(SourceId, SimDuration)>,
    /// Clock skew applied to this node's local timestamps.
    pub skew: SimDuration,
    /// Send-side forced loss.
    pub loss: LossPolicy,
    /// Scripted chaos applied to every outgoing frame.
    pub chaos: Option<ChaosPlan>,
    /// Track peer liveness from session-message silence.
    pub liveness: Option<srm::LivenessConfig>,
    /// Recv-thread supervision limits.
    pub supervision: SupervisePolicy,
    /// Unicast peers to fall back to if a multicast join fails. Empty
    /// disables the fallback (join failures are logged and the node stays
    /// in multicast mode, deaf to groups it could not join).
    pub fallback_peers: Vec<SocketAddr>,
    /// Durable ADU store (`srm-node --store DIR`). When set, the reactor
    /// opens the write-ahead log before the agent starts, rehydrates any
    /// existing contents (restart-after-crash), reads repairs through the
    /// bounded cache, and flushes on clean shutdown. `None` (the default)
    /// keeps the agent purely in-memory.
    pub store: Option<StoreOptions>,
    /// Batched-datapath tuning: syscall batch sizes, receive-pool size,
    /// inbound channel bound, and the portable-backend override
    /// (`srm-node --batch/--pool`).
    pub batch: BatchOptions,
}

/// Durable-store configuration for one node.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory holding the WAL segments (created if missing).
    pub dir: PathBuf,
    /// WAL tuning: fsync policy, segment size, snapshot cadence.
    pub config: srm_store::StoreConfig,
    /// Keep at most this many payloads per stream in RAM; older ones are
    /// served from the log. `None` keeps everything resident (still
    /// logged).
    pub cache_per_stream: Option<usize>,
}

impl StoreOptions {
    /// Defaults for `dir`: default WAL tuning, unbounded cache.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreOptions {
            dir: dir.into(),
            config: srm_store::StoreConfig::default(),
            cache_per_stream: None,
        }
    }
}

impl NodeOptions {
    /// Defaults: sessions on, no trace, no skew, no loss, no chaos, no
    /// liveness tracking, default supervision, seed derived from the
    /// member id.
    pub fn new(id: SourceId, group: GroupId, cfg: SrmConfig) -> Self {
        NodeOptions {
            id,
            group,
            cfg,
            seed: 0x5EED_0000 ^ id.0,
            session_enabled: true,
            trace: false,
            trace_capacity: None,
            metrics: None,
            initial_distances: Vec::new(),
            skew: SimDuration::ZERO,
            loss: LossPolicy::none(),
            chaos: None,
            liveness: None,
            supervision: SupervisePolicy::default(),
            fallback_peers: Vec::new(),
            store: None,
            batch: BatchOptions::default(),
        }
    }
}

/// Receive-slab size: one max-size UDP datagram, so batching can never
/// truncate a frame.
pub(crate) const MAX_DATAGRAM: usize = 64 * 1024;

/// Initial size of the send-side encode slabs. SRM control traffic and
/// framed data fit comfortably; a larger encode grows its slab once and
/// the grown slab recycles at the new size.
const TX_SLAB_BYTES: usize = 2048;

/// Salt mixed into the node seed to derive the chaos RNG, keeping the chaos
/// draw stream independent of the protocol's timer draws.
const CHAOS_SEED_SALT: u64 = 0xC4A0_5EED_0BAD_CA5E;

/// Flow-kind labels indexed by [`flow_slot`]; the last slot collects flows
/// outside the four the protocol defines.
const FLOW_KINDS: [&str; 5] = ["data", "request", "repair", "session", "other"];

/// Map a wire flow label to a `FLOW_KINDS` slot.
fn flow_slot(flow: u32) -> usize {
    (flow as usize).min(FLOW_KINDS.len() - 1)
}

/// Reactor-side cached registry handles: resolved once at spawn so the hot
/// path is one relaxed atomic op per update, no name lookups.
struct RegHandles {
    /// Frames accepted from the socket, by flow kind.
    rx: [obs::Counter; 5],
    /// recv-thread capture → reactor dequeue.
    stage_queue: obs::Histo,
    /// Reactor dequeue → envelope decoded.
    stage_decode: obs::Histo,
    /// Agent handling time per inbound packet (`drive_packet`).
    stage_handle: obs::Histo,
    /// Channel events handled per reactor wakeup (the coalescing window).
    batch_drain: obs::Histo,
    /// Receive-pool occupancy (slabs in flight) sampled per wakeup.
    pool_in_use: obs::Gauge,
    /// Receive-pool size.
    pool_capacity: obs::Gauge,
    /// Pool-dry fallbacks to exact-size heap buffers (both directions).
    pool_misses: obs::Counter,
    /// Datagrams shed because the bounded inbound channel was full.
    inbound_overflow: obs::Counter,
    // Mirrors of the shared atomic counters, refreshed once per reactor
    // wakeup so snapshots are complete without reaching into the handle.
    frames_attempted: obs::Counter,
    frames_sent: obs::Counter,
    frames_dropped: obs::Counter,
    frames_received: obs::Counter,
    blackholed: obs::Counter,
    send_errors: obs::Counter,
    decode_errors: obs::Counter,
    rx_unjoined: obs::Counter,
    chaos_dropped: obs::Counter,
    chaos_duplicated: obs::Counter,
    chaos_delayed: obs::Counter,
    chaos_corrupted: obs::Counter,
    recv_transient_errors: obs::Counter,
    recv_respawns: obs::Counter,
    recv_deaths: obs::Counter,
    mode_fallbacks: obs::Counter,
    liveness_suspected: obs::Counter,
    liveness_died: obs::Counter,
    liveness_revived: obs::Counter,
    wheel_depth: obs::Gauge,
    wheel_high_water: obs::Gauge,
    delayq_depth: obs::Gauge,
    delayq_high_water: obs::Gauge,
    peers_alive: obs::Gauge,
    peers_suspect: obs::Gauge,
    peers_dead: obs::Gauge,
    // Durable-store mirrors (all zero unless `--store` is active; latency
    // histograms are recorded at the operation site via StoreProbes).
    store_appends: obs::Counter,
    store_bytes: obs::Counter,
    store_fsyncs: obs::Counter,
    store_snapshots: obs::Counter,
    store_reads: obs::Counter,
    store_io_errors: obs::Counter,
    store_evictions: obs::Counter,
    store_disk_repairs: obs::Counter,
    store_segments: obs::Gauge,
    store_live_records: obs::Gauge,
}

impl RegHandles {
    fn new(reg: &obs::MetricsRegistry) -> Self {
        let rx = FLOW_KINDS.map(|k| reg.counter(&format!("rx.frames.{k}")));
        RegHandles {
            rx,
            stage_queue: reg.histogram("stage.queue_s"),
            stage_decode: reg.histogram("stage.decode_s"),
            stage_handle: reg.histogram("stage.handle_s"),
            batch_drain: reg.histogram("batch.inbound_drain"),
            pool_in_use: reg.gauge("pool.in_use"),
            pool_capacity: reg.gauge("pool.capacity"),
            pool_misses: reg.counter("pool.misses"),
            inbound_overflow: reg.counter("inbound.overflow"),
            frames_attempted: reg.counter("frames.attempted"),
            frames_sent: reg.counter("frames.sent"),
            frames_dropped: reg.counter("frames.dropped"),
            frames_received: reg.counter("frames.received"),
            blackholed: reg.counter("frames.blackholed"),
            send_errors: reg.counter("frames.send_errors"),
            decode_errors: reg.counter("rx.decode_errors"),
            rx_unjoined: reg.counter("rx.unjoined_group"),
            chaos_dropped: reg.counter("chaos.dropped"),
            chaos_duplicated: reg.counter("chaos.duplicated"),
            chaos_delayed: reg.counter("chaos.delayed"),
            chaos_corrupted: reg.counter("chaos.corrupted"),
            recv_transient_errors: reg.counter("recv.transient_errors"),
            recv_respawns: reg.counter("recv.respawns"),
            recv_deaths: reg.counter("recv.deaths"),
            mode_fallbacks: reg.counter("mode.fallbacks"),
            liveness_suspected: reg.counter("liveness.suspected"),
            liveness_died: reg.counter("liveness.died"),
            liveness_revived: reg.counter("liveness.revived"),
            wheel_depth: reg.gauge("wheel.depth"),
            wheel_high_water: reg.gauge("wheel.high_water"),
            delayq_depth: reg.gauge("delayq.depth"),
            delayq_high_water: reg.gauge("delayq.high_water"),
            peers_alive: reg.gauge("peers.alive"),
            peers_suspect: reg.gauge("peers.suspect"),
            peers_dead: reg.gauge("peers.dead"),
            store_appends: reg.counter("store.wal_appends"),
            store_bytes: reg.counter("store.wal_bytes"),
            store_fsyncs: reg.counter("store.fsyncs"),
            store_snapshots: reg.counter("store.snapshots"),
            store_reads: reg.counter("store.reads"),
            store_io_errors: reg.counter("store.io_errors"),
            store_evictions: reg.counter("store.evictions"),
            store_disk_repairs: reg.counter("store.disk_repairs"),
            store_segments: reg.gauge("store.segments"),
            store_live_records: reg.gauge("store.live_records"),
        }
    }
}

/// Send-side registry handles, held by [`Outbound`].
struct OutMetrics {
    /// Logical multicasts by flow kind (pre fan-out; the per-destination
    /// totals live in `frames.*`).
    tx: [obs::Counter; 5],
    /// Encode + fan-out time per logical multicast.
    stage_send: obs::Histo,
    /// Frames per send syscall at flush time.
    batch_send: obs::Histo,
    clock: WallClock,
}

impl OutMetrics {
    fn new(reg: &obs::MetricsRegistry, clock: WallClock) -> Self {
        OutMetrics {
            tx: FLOW_KINDS.map(|k| reg.counter(&format!("tx.frames.{k}"))),
            stage_send: reg.histogram("stage.send_s"),
            batch_send: reg.histogram("batch.send_frames"),
            clock,
        }
    }
}

/// Counters shared between the runtime and its [`NodeHandle`].
#[derive(Debug, Default)]
struct Counters {
    frames_attempted: AtomicU64,
    frames_sent: AtomicU64,
    frames_dropped: AtomicU64,
    frames_received: AtomicU64,
    blackholed: AtomicU64,
    send_errors: AtomicU64,
    chaos_dropped: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_delayed: AtomicU64,
    chaos_corrupted: AtomicU64,
    decode_errors: AtomicU64,
    recv_transient_errors: AtomicU64,
    recv_respawns: AtomicU64,
    recv_deaths: AtomicU64,
    mode_fallbacks: AtomicU64,
    inbound_overflow: AtomicU64,
    rx_unjoined_group: AtomicU64,
    max_wheel_len: AtomicU64,
    max_delayq_len: AtomicU64,
}

/// A point-in-time snapshot of one node's transport counters.
///
/// Satisfies the frame-accounting invariant
/// `frames_attempted == frames_sent + frames_dropped + blackholed +
/// send_errors` whenever the reactor is quiescent (the soak harness checks
/// it after shutdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Per-destination send attempts reaching the socket layer.
    pub frames_attempted: u64,
    /// Frames put on the wire (per peer in mesh mode).
    pub frames_sent: u64,
    /// Frames suppressed by the [`LossPolicy`].
    pub frames_dropped: u64,
    /// Frames accepted from the socket (post filtering).
    pub frames_received: u64,
    /// Per-destination frames swallowed by chaos blackhole windows.
    pub blackholed: u64,
    /// `send_to` calls that returned an error.
    pub send_errors: u64,
    /// Frames dropped by the chaos plan before the fan-out.
    pub chaos_dropped: u64,
    /// Extra frame copies injected by the chaos plan.
    pub chaos_duplicated: u64,
    /// Frames held back on the chaos delay queue.
    pub chaos_delayed: u64,
    /// Frames damaged by the chaos plan.
    pub chaos_corrupted: u64,
    /// Inbound datagrams rejected by envelope decoding.
    pub decode_errors: u64,
    /// Transient recv errors retried in place by the supervisor.
    pub recv_transient_errors: u64,
    /// Recv-thread respawns after fatal errors or panics.
    pub recv_respawns: u64,
    /// Recv threads that exhausted the respawn budget and died for good.
    pub recv_deaths: u64,
    /// Multicast-join failures degraded to the unicast mesh.
    pub mode_fallbacks: u64,
    /// Inbound datagrams shed because the bounded reactor channel was
    /// full (backpressure under flood; SRM's recovery machinery repairs
    /// the gaps, exactly as for wire loss).
    pub inbound_overflow: u64,
    /// Well-formed frames addressed to a group this node never joined,
    /// dropped by the cheap filter before any payload copy. A nonzero
    /// count usually means a peer (or hub) is misconfigured — sending
    /// here with the wrong `--group`, or a hub group that was never
    /// `create`d on this side.
    pub rx_unjoined_group: u64,
    /// High-water mark of the timer wheel (including lazy-cancelled slots).
    pub max_wheel_len: u64,
    /// High-water mark of the chaos delay queue.
    pub max_delayq_len: u64,
}

impl TransportStats {
    fn snapshot(c: &Counters) -> TransportStats {
        TransportStats {
            frames_attempted: c.frames_attempted.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            frames_dropped: c.frames_dropped.load(Ordering::Relaxed),
            frames_received: c.frames_received.load(Ordering::Relaxed),
            blackholed: c.blackholed.load(Ordering::Relaxed),
            send_errors: c.send_errors.load(Ordering::Relaxed),
            chaos_dropped: c.chaos_dropped.load(Ordering::Relaxed),
            chaos_duplicated: c.chaos_duplicated.load(Ordering::Relaxed),
            chaos_delayed: c.chaos_delayed.load(Ordering::Relaxed),
            chaos_corrupted: c.chaos_corrupted.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            recv_transient_errors: c.recv_transient_errors.load(Ordering::Relaxed),
            recv_respawns: c.recv_respawns.load(Ordering::Relaxed),
            recv_deaths: c.recv_deaths.load(Ordering::Relaxed),
            mode_fallbacks: c.mode_fallbacks.load(Ordering::Relaxed),
            inbound_overflow: c.inbound_overflow.load(Ordering::Relaxed),
            rx_unjoined_group: c.rx_unjoined_group.load(Ordering::Relaxed),
            max_wheel_len: c.max_wheel_len.load(Ordering::Relaxed),
            max_delayq_len: c.max_delayq_len.load(Ordering::Relaxed),
        }
    }

    /// Does this snapshot satisfy the per-destination frame accounting
    /// invariant? (Only meaningful once the reactor has stopped.)
    pub fn frames_accounted(&self) -> bool {
        self.frames_attempted
            == self.frames_sent + self.frames_dropped + self.blackholed + self.send_errors
    }
}

/// One encoded frame queued for the next flush.
struct PendingFrame {
    dest: SocketAddr,
    /// `Some(ttl)` in multicast mode: the flush sets the socket's
    /// multicast TTL per run of equal values, preserving the old
    /// per-send `set_multicast_ttl_v4` semantics. `None` on a mesh.
    ttl: Option<u8>,
    /// The encoded envelope, shared (not copied) across the mesh fan-out.
    data: Arc<PoolBuf>,
}

/// The send half: socket + mode + interposed loss + blackhole windows.
///
/// Sends are *queued*: every logical multicast encodes once into a pooled
/// slab, fans out per destination at enqueue time (where loss, blackholes,
/// and the accounting all run, in the same order as before), and the
/// reactor flushes the whole queue as batched syscalls once per wakeup.
struct Outbound {
    /// Kept alongside the batched backend for socket options
    /// (`set_multicast_ttl_v4`, `join_multicast_v4`).
    socket: UdpSocket,
    batch: Box<dyn BatchSocket>,
    mode: Mode,
    src: u32,
    loss: LossPolicy,
    /// Chaos partition windows, applied RNG-free per destination.
    blackholes: Vec<Blackhole>,
    counters: Arc<Counters>,
    /// Reactor-side transport event log (blackholes, send/socket errors,
    /// decode failures, supervision events forwarded from the recv thread).
    log: obs::TransportLog,
    /// Recycled encode slabs: the envelope is serialized into a pooled
    /// buffer per logical send, so steady-state sending allocates nothing
    /// per datagram (drops at flush return the slabs).
    tx_pool: BufferPool,
    /// Frames awaiting the next flush.
    queue: Vec<PendingFrame>,
    /// Reused per-flush results scratch.
    results: Vec<io::Result<()>>,
    /// Frames per send syscall (from [`BatchOptions::send_batch`]).
    max_batch: usize,
    /// Live-registry handles for the send path; `None` costs one branch.
    metrics: Option<OutMetrics>,
}

/// One per-destination attempt: the single place every outgoing frame's
/// fate is decided and counted (a free function over [`Outbound`]'s split
/// field borrows, so the mesh fan-out can iterate `mode`'s peer list while
/// mutating the loss policy and log). Surviving frames go on the flush
/// queue; `frames_sent`/`send_errors` are settled when the batch reaches
/// the socket.
#[allow(clippy::too_many_arguments)]
fn enqueue_one(
    now: SimTime,
    dest: SocketAddr,
    policy_dest: Option<SocketAddr>,
    ttl: Option<u8>,
    flow: u32,
    wire: &Arc<PoolBuf>,
    queue: &mut Vec<PendingFrame>,
    blackholes: &[Blackhole],
    loss: &mut LossPolicy,
    counters: &Counters,
    log: &mut obs::TransportLog,
) {
    counters.frames_attempted.fetch_add(1, Ordering::Relaxed);
    if blackholes.iter().any(|b| b.matches(now, policy_dest)) {
        counters.blackholed.fetch_add(1, Ordering::Relaxed);
        log.record(now, obs::TransportEventKind::Blackholed { flow });
    } else if loss.should_drop(flow, policy_dest) {
        counters.frames_dropped.fetch_add(1, Ordering::Relaxed);
    } else {
        queue.push(PendingFrame { dest, ttl, data: Arc::clone(wire) });
    }
}

impl Outbound {
    fn send(&mut self, now: SimTime, group: GroupId, payload: Bytes, opts: SendOptions) {
        if opts.ttl == 0 {
            // A zero-TTL datagram never leaves the host.
            return;
        }
        let mut buf = self.tx_pool.try_take().unwrap_or_else(|| {
            self.tx_pool.note_miss();
            PoolBuf::copied_from(&[])
        });
        Envelope {
            src: self.src,
            group: group.0,
            ttl: opts.ttl,
            initial_ttl: opts.ttl,
            admin_scoped: opts.admin_scoped,
            flow: opts.flow,
            payload,
        }
        .encode_into(&mut buf);
        let wire = Arc::new(buf);
        let Outbound { mode, loss, blackholes, counters, log, queue, .. } = self;
        match mode {
            Mode::Mesh { peers } => {
                for &p in peers.iter() {
                    enqueue_one(
                        now, p, Some(p), None, opts.flow, &wire, queue, blackholes, loss,
                        counters, log,
                    );
                }
            }
            Mode::Multicast { base } => {
                let dest = Mode::group_addr(*base, group);
                enqueue_one(
                    now,
                    SocketAddr::V4(dest),
                    None,
                    Some(opts.ttl),
                    opts.flow,
                    &wire,
                    queue,
                    blackholes,
                    loss,
                    counters,
                    log,
                );
            }
        }
        if let Some(m) = &self.metrics {
            m.tx[flow_slot(opts.flow)].inc();
            m.stage_send.record(m.clock.now().since(now).as_secs_f64());
        }
    }

    /// Push every queued frame to the socket in batched syscalls,
    /// settling `frames_sent`/`send_errors` per destination. Runs of
    /// equal multicast TTL share one `set_multicast_ttl_v4` call.
    fn flush(&mut self, now: SimTime) {
        if self.queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.queue);
        let mut i = 0;
        while i < queue.len() {
            let ttl = queue[i].ttl;
            let mut j = i + 1;
            while j < queue.len() && queue[j].ttl == ttl {
                j += 1;
            }
            if let Some(t) = ttl {
                let _ = self.socket.set_multicast_ttl_v4(u32::from(t));
            }
            for chunk in queue[i..j].chunks(self.max_batch.max(1)) {
                let frames: Vec<SendFrame<'_>> = chunk
                    .iter()
                    .map(|p| SendFrame { dest: p.dest, data: &p.data })
                    .collect();
                self.results.clear();
                self.batch.send_batch(&frames, &mut self.results);
                if let Some(m) = &self.metrics {
                    m.batch_send.record(frames.len() as f64);
                }
                for (p, r) in chunk.iter().zip(self.results.iter()) {
                    match r {
                        Ok(()) => {
                            self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            self.counters.send_errors.fetch_add(1, Ordering::Relaxed);
                            self.log.record(
                                now,
                                obs::TransportEventKind::SocketError {
                                    detail: format!("send_to {}: {e}", p.dest),
                                    transient: crate::supervise::classify(e.kind())
                                        == crate::supervise::ErrorClass::Transient,
                                },
                            );
                        }
                    }
                }
            }
            i = j;
        }
        // Reclaim the queue's allocation; dropping the contents returns
        // the encode slabs to the pool.
        self.queue = queue;
        self.queue.clear();
    }

    fn join_group(&mut self, group: GroupId) -> io::Result<()> {
        if let Mode::Multicast { base } = self.mode {
            let addr = Mode::group_addr(base, group);
            self.socket
                .join_multicast_v4(addr.ip(), &Ipv4Addr::UNSPECIFIED)?;
        }
        Ok(())
    }
}

/// Wall-clock implementation of the agent's [`Driver`] seam: the borrowed
/// view of the reactor's state handed to every agent entry point.
struct RtDriver<'a> {
    clock: &'a WallClock,
    wheel: &'a mut TimerWheel,
    rng: &'a mut StdRng,
    out: &'a mut Outbound,
    joined: &'a mut BTreeSet<GroupId>,
    fallback_peers: &'a mut Vec<SocketAddr>,
}

impl Clock for RtDriver<'_> {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn local_now(&self) -> SimTime {
        self.clock.local_now()
    }
}

impl Transport for RtDriver<'_> {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.out.send(self.clock.now(), group, payload, opts);
    }

    fn join(&mut self, group: GroupId) {
        if !self.joined.insert(group) {
            return;
        }
        if let Err(e) = self.out.join_group(group) {
            let now = self.clock.now();
            if self.fallback_peers.is_empty() {
                // No mesh to fall back to: log and stay in multicast mode
                // (other joins may still succeed).
                self.out.log.record(
                    now,
                    obs::TransportEventKind::SocketError {
                        detail: format!("join group {}: {e}", group.0),
                        transient: false,
                    },
                );
                eprintln!(
                    "srm-node[{}]: multicast join for group {} failed ({e}); no fallback peers",
                    self.out.src, group.0
                );
            } else {
                // Degrade to the unicast mesh for *all* traffic: one
                // fan-out path keeps the group-delivery model coherent.
                let peers = std::mem::take(self.fallback_peers);
                self.out.counters.mode_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.out.log.record(
                    now,
                    obs::TransportEventKind::ModeFallback { peers: peers.len() as u64 },
                );
                eprintln!(
                    "srm-node[{}]: multicast join for group {} failed ({e}); \
                     falling back to a unicast mesh of {} peers",
                    self.out.src,
                    group.0,
                    peers.len()
                );
                self.out.mode = Mode::Mesh { peers };
            }
        }
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.wheel.arm(self.clock.now() + delay, token)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.wheel.cancel(id);
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A closure run against the live agent on the reactor thread.
type ExecFn = Box<dyn FnOnce(&mut SrmAgent, &mut dyn Driver) + Send>;

/// Work items the reactor waits on.
enum Event {
    /// A raw datagram from the receive thread, stamped with its capture
    /// time so the reactor can account the queueing stage. The buffer is
    /// a pooled slab travelling by ownership; dropping it after decode
    /// recycles the slab to the receive pool. The `u32` is the GRO
    /// segment size: non-zero means the kernel coalesced several
    /// equal-size frames into this one buffer, and the reactor walks
    /// them at that stride ([`RecvFrame`]).
    Datagram(SimTime, u32, PoolBuf),
    /// A typed transport event from the receive thread's supervisor.
    Transport(SimTime, obs::TransportEventKind),
    /// Run a closure against the agent (the wall-clock analogue of
    /// `Simulator::exec`).
    Exec(ExecFn),
    /// Stop the reactor and return the agent.
    Shutdown,
}

/// How long the reactor sleeps when the wheel is empty. Purely a
/// responsiveness bound — channel events wake it immediately.
const IDLE_WAIT: Duration = Duration::from_millis(250);
/// Read timeout on the receive thread's socket, bounding shutdown latency.
const RECV_POLL: Duration = Duration::from_millis(25);

/// Spawner for node runtimes.
pub struct Node;

impl Node {
    /// Bind `bind` and start a runtime there.
    pub fn spawn(bind: SocketAddr, mode: Mode, opts: NodeOptions) -> io::Result<NodeHandle> {
        Node::spawn_on(UdpSocket::bind(bind)?, mode, opts)
    }

    /// Start a runtime on an already-bound socket (the harness binds all
    /// sockets first so every node can list the others as peers).
    pub fn spawn_on(socket: UdpSocket, mode: Mode, opts: NodeOptions) -> io::Result<NodeHandle> {
        let addr = socket.local_addr()?;
        // One call covers every clone: dup'd descriptors share the socket,
        // and the batched sender can burst a whole flush into this buffer.
        crate::batch::configure_socket_buffers(&socket, opts.batch.socket_bufs);
        let recv_master = socket.try_clone()?;

        // Bounded: under flood the channel sheds datagrams (counted as
        // `inbound_overflow`) instead of growing without limit; commands
        // and supervision events block briefly instead of being lost.
        let (tx, rx) = mpsc::sync_channel::<Event>(opts.batch.inbound_capacity.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let clock = WallClock::with_skew(opts.skew);
        // One slab per channel slot would be ideal; `pool_slabs` bounds the
        // receive-side memory at `pool_slabs * MAX_DATAGRAM` instead, with
        // exact-size heap copies (counted misses) covering the overflow.
        let rx_pool = BufferPool::new(opts.batch.pool_slabs, MAX_DATAGRAM);

        let recv_tx = tx.clone();
        let recv_stop = Arc::clone(&stop);
        let recv_counters = Arc::clone(&counters);
        let recv_clock = clock.clone();
        let recv_pool = rx_pool.clone();
        let recv_histo = opts.metrics.as_ref().map(|r| r.histogram("batch.recv_frames"));
        let policy = opts.supervision;
        let batch_opts = opts.batch;
        let recv_thread = thread::Builder::new()
            .name(format!("srm-recv-{}", opts.id.0))
            .spawn(move || {
                run_recv_supervised(
                    &policy,
                    recv_master,
                    addr,
                    batch_opts,
                    recv_pool,
                    recv_histo,
                    recv_tx,
                    recv_stop,
                    recv_counters,
                    recv_clock,
                )
            })?;

        let id = opts.id;
        let reactor_stop = Arc::clone(&stop);
        let reactor_counters = Arc::clone(&counters);
        let reactor = thread::Builder::new()
            .name(format!("srm-node-{}", opts.id.0))
            .spawn(move || {
                let agent = run_reactor(socket, mode, opts, rx, rx_pool, reactor_counters, clock);
                reactor_stop.store(true, Ordering::Relaxed);
                let _ = recv_thread.join();
                agent
            })?;

        Ok(NodeHandle {
            tx,
            thread: Some(reactor),
            addr,
            id,
            counters,
        })
    }
}

/// The supervised receive loop: each spawned step owns a fresh socket clone
/// (a rebind when the original descriptor is wedged) wrapped in a batched
/// backend with a short read timeout; poll timeouts are normal progress,
/// everything else goes through the supervisor's classify/backoff/respawn
/// state machine. Datagrams ride pooled slabs into the bounded channel;
/// when the channel is full the frame is shed and counted rather than
/// blocking the socket drain.
#[allow(clippy::too_many_arguments)]
fn run_recv_supervised(
    policy: &SupervisePolicy,
    master: UdpSocket,
    local: SocketAddr,
    batch: BatchOptions,
    pool: BufferPool,
    recv_histo: Option<obs::Histo>,
    tx: mpsc::SyncSender<Event>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    clock: WallClock,
) {
    if batch.batch_sched {
        crate::batch::enter_batch_scheduling();
    }
    let recv_batch = batch.recv_batch.clamp(1, crate::batch::MAX_BATCH);
    let reason = run_supervised(
        policy,
        |attempt| {
            let sock = if attempt == 0 {
                master.try_clone()?
            } else {
                // Respawn: prefer a clone of the original descriptor, fall
                // back to a fresh bind of the same address if the
                // descriptor itself is the problem.
                master.try_clone().or_else(|_| UdpSocket::bind(local))?
            };
            sock.set_read_timeout(Some(RECV_POLL))?;
            let mut backend = make_backend(sock, &batch);
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let step_clock = clock.clone();
            let step_pool = pool.clone();
            let step_histo = recv_histo.clone();
            let step_counters = Arc::clone(&counters);
            let mut bufs: Vec<RecvFrame> = Vec::with_capacity(recv_batch);
            Ok(move || -> io::Result<StepOutcome> {
                if stop.load(Ordering::Relaxed) {
                    return Ok(StepOutcome::Stop);
                }
                bufs.clear();
                match backend.recv_batch(&step_pool, recv_batch, &mut bufs) {
                    Ok(_) => {
                        if let Some(h) = &step_histo {
                            // Logical frames per syscall: a GRO-coalesced
                            // buffer counts all its segments.
                            let frames: usize = bufs.iter().map(RecvFrame::frame_count).sum();
                            h.record(frames as f64);
                        }
                        // One capture stamp per batch: the datagrams were
                        // drained by one syscall, so they share an arrival
                        // time as far as the queue-stage clock can tell.
                        let at = step_clock.now();
                        for f in bufs.drain(..) {
                            let frames = f.frame_count() as u64;
                            match tx.try_send(Event::Datagram(at, f.seg_size, f.buf)) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full(_)) => {
                                    // Shed, count, and keep draining the
                                    // socket: SRM repairs the gap exactly
                                    // as it would wire loss. A shed
                                    // coalesced buffer loses every frame
                                    // it carried.
                                    step_counters
                                        .inbound_overflow
                                        .fetch_add(frames, Ordering::Relaxed);
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => {
                                    return Ok(StepOutcome::Stop);
                                }
                            }
                        }
                        Ok(StepOutcome::Continue)
                    }
                    // The poll timeout is the loop's heartbeat, not an
                    // error; it must not enter the supervisor's backoff.
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        Ok(StepOutcome::Continue)
                    }
                    Err(e) => Err(e),
                }
            })
        },
        |ev| {
            let now = clock.now();
            match ev {
                SupervisionEvent::Transient { detail, .. } => {
                    counters.recv_transient_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Event::Transport(
                        now,
                        obs::TransportEventKind::SocketError {
                            detail: detail.clone(),
                            transient: true,
                        },
                    ));
                }
                SupervisionEvent::Fatal { detail } => {
                    let _ = tx.send(Event::Transport(
                        now,
                        obs::TransportEventKind::SocketError {
                            detail: detail.clone(),
                            transient: false,
                        },
                    ));
                }
                SupervisionEvent::Respawned { attempt, .. } => {
                    counters.recv_respawns.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Event::Transport(
                        now,
                        obs::TransportEventKind::RecvRespawn { attempt: *attempt },
                    ));
                }
            }
        },
        |backoff| {
            // Interruptible backoff: keep shutdown latency bounded by the
            // poll interval even while backing off.
            let mut left = backoff;
            while !stop.load(Ordering::Relaxed) && left > Duration::ZERO {
                let chunk = left.min(RECV_POLL);
                thread::sleep(chunk);
                left = left.saturating_sub(chunk);
            }
        },
    );
    if matches!(reason, ExitReason::Exhausted { .. }) {
        counters.recv_deaths.fetch_add(1, Ordering::Relaxed);
        eprintln!("srm-recv: {}", reason.label());
    }
    let _ = tx.send(Event::Transport(
        clock.now(),
        obs::TransportEventKind::RecvExit { reason: reason.label() },
    ));
}

/// The reactor loop: fire due timers, release held-back chaos frames,
/// flush the send queue as batched syscalls, then drain a whole window of
/// channel events per wakeup (datagrams, commands, deadlines coalesced).
fn run_reactor(
    socket: UdpSocket,
    mode: Mode,
    opts: NodeOptions,
    rx: mpsc::Receiver<Event>,
    rx_pool: BufferPool,
    counters: Arc<Counters>,
    clock: WallClock,
) -> SrmAgent {
    if opts.batch.batch_sched {
        crate::batch::enter_batch_scheduling();
    }
    let mut wheel = TimerWheel::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut joined: BTreeSet<GroupId> = BTreeSet::new();
    let mut fallback_peers = opts.fallback_peers;
    // The backend owns its own descriptor clone; the original stays on
    // `Outbound.socket` for multicast socket options. `spawn_on` already
    // cloned this descriptor once, so a failure here is a dead socket.
    let send_sock = socket.try_clone().expect("clone udp socket for batched sends");
    let mut out = Outbound {
        socket,
        batch: make_backend(send_sock, &opts.batch),
        mode,
        src: u32::try_from(opts.id.0).unwrap_or(u32::MAX),
        loss: opts.loss,
        blackholes: opts
            .chaos
            .as_ref()
            .map(|p| p.blackholes.clone())
            .unwrap_or_default(),
        counters: Arc::clone(&counters),
        log: obs::TransportLog::new(),
        // Send slabs start at a typical datagram size; an oversized encode
        // grows its slab once and the bigger slab recycles.
        tx_pool: BufferPool::new(opts.batch.pool_slabs, TX_SLAB_BYTES),
        queue: Vec::new(),
        results: Vec::new(),
        max_batch: opts.batch.send_batch.clamp(1, crate::batch::MAX_BATCH),
        metrics: opts.metrics.as_ref().map(|r| OutMetrics::new(r, clock.clone())),
    };
    let reg = opts.metrics.as_ref().map(RegHandles::new);
    let mut chaos = opts
        .chaos
        .map(|plan| ChaosState::new(plan, opts.seed ^ CHAOS_SEED_SALT));
    let mut chaos_log = obs::TransportLog::new();
    let mut delayq = DelayQueue::new();
    let mut tally = ChaosTally::default();

    let mut agent = SrmAgent::new(opts.id, opts.group, opts.cfg);
    agent.session_enabled = opts.session_enabled;
    if opts.trace {
        match opts.trace_capacity {
            Some(cap) => {
                agent.obs.enable_bounded(cap);
                agent.transport_obs.enable_bounded(cap);
                out.log.enable_bounded(cap);
                chaos_log.enable_bounded(cap);
            }
            None => {
                agent.obs.enable();
                agent.transport_obs.enable();
                out.log.enable();
                chaos_log.enable();
            }
        }
    }
    if let Some(lv) = opts.liveness {
        agent.liveness.enable(lv);
    }
    for (peer, d) in opts.initial_distances {
        agent.distances_mut().set_distance(peer, d);
    }
    if let Some(sto) = opts.store {
        match srm_store::DirBackend::open(&sto.dir) {
            Ok(backend) => {
                let mut ds = srm_store::DurableStore::new(Box::new(backend), sto.config);
                if let Some(r) = opts.metrics.as_ref() {
                    ds.set_probes(srm_store::StoreProbes::from_registry(r));
                }
                // The single rehydrate path: a restart after kill -9 replays
                // the log here, so the node rejoins repair-capable.
                let summary = agent.attach_durable_store(Box::new(ds), sto.cache_per_stream);
                agent.transport_obs.record(
                    clock.now(),
                    obs::TransportEventKind::StoreRehydrate {
                        adus: summary.names.len() as u64,
                        segments: summary.segments,
                        truncated_bytes: summary.truncated_bytes,
                    },
                );
                if !summary.names.is_empty() || summary.truncated_bytes > 0 {
                    eprintln!(
                        "srm-node[{}]: rehydrated {} ADUs from {} ({} segments, {} torn bytes dropped)",
                        out.src,
                        summary.names.len(),
                        sto.dir.display(),
                        summary.segments,
                        summary.truncated_bytes,
                    );
                }
            }
            Err(e) => eprintln!(
                "srm-node[{}]: could not open store {}: {e} (running without durability)",
                out.src,
                sto.dir.display()
            ),
        }
    }

    // Bind a driver name for one statement: the chaos decorator when a plan
    // is configured, the plain wall-clock driver otherwise. Built per entry
    // point because the driver borrows half the reactor's state.
    macro_rules! with_driver {
        (|$d:ident| $body:expr) => {{
            let mut rt = RtDriver {
                clock: &clock,
                wheel: &mut wheel,
                rng: &mut rng,
                out: &mut out,
                joined: &mut joined,
                fallback_peers: &mut fallback_peers,
            };
            match chaos.as_mut() {
                Some(state) => {
                    let mut ct = ChaosTransport {
                        inner: &mut rt,
                        state,
                        delayq: &mut delayq,
                        tally: &mut tally,
                        log: &mut chaos_log,
                    };
                    let $d: &mut dyn Driver = &mut ct;
                    $body
                }
                None => {
                    let $d: &mut dyn Driver = &mut rt;
                    $body
                }
            }
        }};
    }

    with_driver!(|d| agent.drive_start(d));

    let mut rx_seq = 0u64;
    let mut decode_fail_count = 0u64;
    let mut unjoined_count = 0u64;
    let inbound_drain = opts.batch.inbound_drain.max(1);

    // Handle one channel event; evaluates to `true` on shutdown. A macro
    // (not a closure) because the body borrows half the reactor's state
    // through `with_driver!`.
    macro_rules! handle_event {
        ($ev:expr) => {{
            match $ev {
                Event::Datagram(recv_at, seg, buf) => {
                    // A plain datagram is one frame; a GRO-coalesced buffer
                    // is walked at its segment stride (the envelope length
                    // field re-validates every chunk, so a mis-sliced
                    // boundary surfaces as a decode error, never a bad
                    // frame). The walk borrows the pooled slab in place —
                    // no per-frame copy to split the super-datagram.
                    let data: &[u8] = &buf;
                    let stride = match seg as usize {
                        0 => data.len().max(1),
                        s => s,
                    };
                    let mut off = 0;
                    loop {
                        let chunk = &data[off..(off + stride).min(data.len())];
                        off += stride;
                        let last = off >= data.len();
                    // The labeled block is this frame's early-exit scope
                    // (the old `continue`); falling out of it recycles
                    // `buf`'s slab to the receive pool.
                    'frame: {
                        // Stage clocks: one extra clock read per stage,
                        // only when a registry is attached.
                        let dequeued = reg.as_ref().map(|m| {
                            let now = clock.now();
                            m.stage_queue.record(now.since(recv_at).as_secs_f64());
                            now
                        });
                        // Zero-copy decode: every field reads straight out
                        // of the pooled slab; only a delivered payload is
                        // copied (below, into the packet).
                        let env = match Envelope::decode_view(chunk) {
                            Ok(env) => env,
                            Err(e) => {
                                counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                                out.log.record(
                                    clock.now(),
                                    obs::TransportEventKind::DecodeError {
                                        reason: e.label().to_string(),
                                    },
                                );
                                decode_fail_count += 1;
                                // Rate-limited: the first few in full, then
                                // one sample per 256 so a corruption storm
                                // cannot flood stderr.
                                if decode_fail_count <= 5
                                    || decode_fail_count.is_multiple_of(256)
                                {
                                    eprintln!(
                                        "srm-node[{}]: rejected undecodable datagram ({e}); {} total",
                                        out.src, decode_fail_count
                                    );
                                }
                                break 'frame;
                            }
                        };
                        if let (Some(m), Some(t0)) = (reg.as_ref(), dequeued) {
                            m.stage_decode.record(clock.now().since(t0).as_secs_f64());
                        }
                        // Self-delivery (multicast loopback echo) and
                        // traffic for groups we have not joined are the
                        // network's job to withhold in the simulator;
                        // filter them here — before the payload copy.
                        if env.src == out.src || env.ttl == 0 {
                            break 'frame;
                        }
                        if !joined.contains(&GroupId(env.group)) {
                            // Not silent: a well-formed frame for a group
                            // this node never joined almost always means a
                            // misconfigured peer or a hub group that was
                            // never created — count it and sample a log
                            // line so the mismatch is visible.
                            counters.rx_unjoined_group.fetch_add(1, Ordering::Relaxed);
                            unjoined_count += 1;
                            if unjoined_count <= 5 || unjoined_count.is_multiple_of(1024) {
                                eprintln!(
                                    "srm-node[{}]: dropping frame from {} for unjoined group {} ({} total) — \
                                     sender misconfigured, or group not created here",
                                    out.src, env.src, env.group, unjoined_count
                                );
                            }
                            break 'frame;
                        }
                        counters.frames_received.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = reg.as_ref() {
                            m.rx[flow_slot(env.flow)].inc();
                        }
                        rx_seq += 1;
                        let pkt = Packet::new(
                            // One observable hop on a mesh; real multicast
                            // hop counts would need the received IP TTL,
                            // which std sockets cannot read.
                            env.ttl.saturating_sub(1),
                            PacketBody {
                                id: PacketId(rx_seq),
                                src: NodeId(env.src),
                                group: GroupId(env.group),
                                dest: None,
                                initial_ttl: env.initial_ttl,
                                admin_scoped: env.admin_scoped,
                                flow: env.flow,
                                size: chunk.len() as u32,
                                payload: Bytes::copy_from_slice(env.payload),
                            },
                        );
                        let handle_t0 = reg.as_ref().map(|_| clock.now());
                        with_driver!(|d| agent.drive_packet(d, &pkt));
                        if let (Some(m), Some(t0)) = (reg.as_ref(), handle_t0) {
                            m.stage_handle.record(clock.now().since(t0).as_secs_f64());
                        }
                    }
                        if last {
                            break;
                        }
                    }
                    false
                }
                Event::Transport(at, kind) => {
                    out.log.record(at, kind);
                    false
                }
                Event::Exec(f) => {
                    with_driver!(|d| f(&mut agent, d));
                    false
                }
                Event::Shutdown => true,
            }
        }};
    }

    'reactor: loop {
        while let Some(token) = wheel.pop_expired(clock.now()) {
            with_driver!(|d| agent.drive_timer(d, token));
        }
        // Release due held-back frames to the send queue: the chaos verdict
        // already ran when they were queued, so a frame is acted on at most
        // once.
        while let Some(held) = delayq.pop_due(clock.now()) {
            out.send(clock.now(), held.group, held.payload, held.opts);
        }
        // Everything the last wakeup produced goes out in batched syscalls.
        out.flush(clock.now());
        publish_reactor_counters(&counters, &tally, wheel.len(), delayq.len(), reg.as_ref(), &agent.liveness, agent.store(), &rx_pool, &out.tx_pool);
        let deadline = match (wheel.next_deadline(), delayq.next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let wait = match deadline {
            Some(at) => clock.until(at).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        // Coalesced wakeup: block for one event, then drain whatever else
        // is already queued (up to the window) before revisiting timers
        // and flushing the sends those events produced.
        let mut drained = 0u64;
        match rx.recv_timeout(wait) {
            Ok(ev) => {
                drained += 1;
                if handle_event!(ev) {
                    break 'reactor;
                }
                while (drained as usize) < inbound_drain {
                    // Keep the wire busy while draining: once a full send
                    // batch has accumulated, flush it so the receivers
                    // work in parallel with the rest of the window.
                    if out.queue.len() >= out.max_batch {
                        out.flush(clock.now());
                    }
                    match rx.try_recv() {
                        Ok(ev) => {
                            drained += 1;
                            if handle_event!(ev) {
                                break 'reactor;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'reactor,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        if drained > 0 {
            if let Some(m) = reg.as_ref() {
                m.batch_drain.record(drained as f64);
            }
        }
    }
    // Anything the final events produced still goes out before shutdown.
    out.flush(clock.now());
    // Clean shutdown: force the WAL tail onto stable storage so an orderly
    // exit loses nothing regardless of the fsync policy.
    agent.flush_store();
    publish_reactor_counters(&counters, &tally, wheel.len(), delayq.len(), reg.as_ref(), &agent.liveness, agent.store(), &rx_pool, &out.tx_pool);
    // Pin the queue peaks into the offline event stream (no-op when the log
    // is disabled), then merge the reactor-side logs into the agent's
    // transport stream so one per-member event sequence survives harvesting.
    out.log.record(
        clock.now(),
        obs::TransportEventKind::QueueHighWater {
            wheel: counters.max_wheel_len.load(Ordering::Relaxed),
            delayq: counters.max_delayq_len.load(Ordering::Relaxed),
        },
    );
    let mut extra = out.log.take_events();
    extra.extend(chaos_log.take_events());
    agent.transport_obs.absorb(extra);
    agent
}

/// Publish the reactor-owned tallies and high-water marks to the shared
/// atomic counters (the tallies are cumulative, so a store is correct),
/// and refresh the registry mirrors when one is attached.
#[allow(clippy::too_many_arguments)]
fn publish_reactor_counters(
    counters: &Counters,
    tally: &ChaosTally,
    wheel_len: usize,
    delayq_len: usize,
    reg: Option<&RegHandles>,
    liveness: &srm::PeerLiveness,
    store: &srm::AduStore,
    rx_pool: &BufferPool,
    tx_pool: &BufferPool,
) {
    counters.chaos_dropped.store(tally.dropped, Ordering::Relaxed);
    counters.chaos_duplicated.store(tally.duplicated, Ordering::Relaxed);
    counters.chaos_delayed.store(tally.delayed, Ordering::Relaxed);
    counters.chaos_corrupted.store(tally.corrupted, Ordering::Relaxed);
    counters.max_wheel_len.fetch_max(wheel_len as u64, Ordering::Relaxed);
    counters.max_delayq_len.fetch_max(delayq_len as u64, Ordering::Relaxed);
    let Some(m) = reg else { return };
    // Every mirrored source is itself cumulative, so `set_total` keeps the
    // registry's counters monotone (snapshot deltas stay restart-aware).
    m.frames_attempted.set_total(counters.frames_attempted.load(Ordering::Relaxed));
    m.frames_sent.set_total(counters.frames_sent.load(Ordering::Relaxed));
    m.frames_dropped.set_total(counters.frames_dropped.load(Ordering::Relaxed));
    m.frames_received.set_total(counters.frames_received.load(Ordering::Relaxed));
    m.blackholed.set_total(counters.blackholed.load(Ordering::Relaxed));
    m.send_errors.set_total(counters.send_errors.load(Ordering::Relaxed));
    m.decode_errors.set_total(counters.decode_errors.load(Ordering::Relaxed));
    m.rx_unjoined.set_total(counters.rx_unjoined_group.load(Ordering::Relaxed));
    m.chaos_dropped.set_total(tally.dropped);
    m.chaos_duplicated.set_total(tally.duplicated);
    m.chaos_delayed.set_total(tally.delayed);
    m.chaos_corrupted.set_total(tally.corrupted);
    m.recv_transient_errors.set_total(counters.recv_transient_errors.load(Ordering::Relaxed));
    m.recv_respawns.set_total(counters.recv_respawns.load(Ordering::Relaxed));
    m.recv_deaths.set_total(counters.recv_deaths.load(Ordering::Relaxed));
    m.mode_fallbacks.set_total(counters.mode_fallbacks.load(Ordering::Relaxed));
    m.inbound_overflow.set_total(counters.inbound_overflow.load(Ordering::Relaxed));
    let (rx_used, rx_cap) = rx_pool.occupancy();
    let (tx_used, tx_cap) = tx_pool.occupancy();
    m.pool_in_use.set(rx_used + tx_used);
    m.pool_capacity.set(rx_cap + tx_cap);
    m.pool_misses.set_total(rx_pool.stats().1 + tx_pool.stats().1);
    m.liveness_suspected.set_total(liveness.suspected_total);
    m.liveness_died.set_total(liveness.died_total);
    m.liveness_revived.set_total(liveness.revived_total);
    m.wheel_depth.set(wheel_len as u64);
    m.wheel_high_water.set(counters.max_wheel_len.load(Ordering::Relaxed));
    m.delayq_depth.set(delayq_len as u64);
    m.delayq_high_water.set(counters.max_delayq_len.load(Ordering::Relaxed));
    let (alive, suspect, dead) = liveness.counts();
    m.peers_alive.set(alive);
    m.peers_suspect.set(suspect);
    m.peers_dead.set(dead);
    if let Some(st) = store.persistence_stats() {
        m.store_appends.set_total(st.appends);
        m.store_bytes.set_total(st.bytes_appended);
        m.store_fsyncs.set_total(st.fsyncs);
        m.store_snapshots.set_total(st.snapshots);
        m.store_reads.set_total(st.reads);
        m.store_io_errors.set_total(st.io_errors);
        m.store_evictions.set_total(store.evictions());
        m.store_disk_repairs.set_total(store.disk_fetches());
        m.store_segments.set(st.segments);
        m.store_live_records.set(st.live_records);
    }
}

/// Client handle to a running node; drop (or [`NodeHandle::shutdown`])
/// stops it.
pub struct NodeHandle {
    tx: mpsc::SyncSender<Event>,
    thread: Option<thread::JoinHandle<SrmAgent>>,
    addr: SocketAddr,
    id: SourceId,
    counters: Arc<Counters>,
}

impl NodeHandle {
    /// The socket address this node receives on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The member id this node runs as.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Run `f` against the live agent on the reactor thread and return its
    /// result — the wall-clock `Simulator::exec`.
    ///
    /// # Panics
    /// Panics if the runtime has already stopped.
    pub fn exec<R, F>(&self, f: F) -> R
    where
        F: FnOnce(&mut SrmAgent, &mut dyn Driver) -> R + Send + 'static,
        R: Send + 'static,
    {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .send(Event::Exec(Box::new(move |agent, drv| {
                let _ = rtx.send(f(agent, drv));
            })))
            .expect("node runtime is running");
        rrx.recv().expect("node runtime answered")
    }

    /// Liveness probe for the reactor itself: round-trip a no-op exec
    /// within `timeout`. `false` means the reactor is deadlocked, wedged
    /// behind a long callback, or gone.
    pub fn ping(&self, timeout: Duration) -> bool {
        let (rtx, rrx) = mpsc::sync_channel(1);
        let probe: ExecFn = Box::new(move |_, _| {
            let _ = rtx.send(());
        });
        if self.tx.send(Event::Exec(probe)).is_err() {
            return false;
        }
        rrx.recv_timeout(timeout).is_ok()
    }

    /// Multicast a new ADU on `page`; returns its name.
    pub fn send_data(&self, page: PageId, payload: Bytes) -> AduName {
        self.exec(move |a, d| a.send_data(d, page, payload))
    }

    /// Drain ADUs delivered to the application since the last call.
    pub fn take_delivered(&self) -> Vec<Delivery> {
        self.exec(|a, _| a.take_delivered())
    }

    /// Frames put on the wire (per peer in mesh mode).
    pub fn frames_sent(&self) -> u64 {
        self.counters.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames suppressed by the [`LossPolicy`].
    pub fn frames_dropped(&self) -> u64 {
        self.counters.frames_dropped.load(Ordering::Relaxed)
    }

    /// Frames accepted from the socket (post filtering).
    pub fn frames_received(&self) -> u64 {
        self.counters.frames_received.load(Ordering::Relaxed)
    }

    /// Snapshot every transport counter.
    pub fn stats(&self) -> TransportStats {
        TransportStats::snapshot(&self.counters)
    }

    /// Stop the runtime and take the final agent (metrics, recorders, and
    /// store intact) for harvesting.
    pub fn shutdown(mut self) -> SrmAgent {
        let _ = self.tx.send(Event::Shutdown);
        self.thread
            .take()
            .expect("shutdown called once")
            .join()
            .expect("node runtime exited cleanly")
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = self.tx.send(Event::Shutdown);
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow;

    #[test]
    fn loss_policy_counts_per_rule() {
        let mut p = LossPolicy::none().drop_nth(flow::DATA, 1);
        assert!(!p.should_drop(flow::DATA, None));
        assert!(p.should_drop(flow::DATA, None));
        assert!(!p.should_drop(flow::DATA, None));
        assert!(!p.should_drop(flow::SESSION, None));
    }

    #[test]
    fn loss_policy_per_destination() {
        let a: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2000".parse().unwrap();
        let mut p = LossPolicy::none().drop_nth_to(flow::DATA, b, 0);
        assert!(!p.should_drop(flow::DATA, Some(a)));
        assert!(p.should_drop(flow::DATA, Some(b)));
        assert!(!p.should_drop(flow::DATA, Some(b)));
        // Multicast sends (no destination) never match a per-dest rule.
        let mut q = LossPolicy::none().drop_nth_to(flow::DATA, b, 0);
        assert!(!q.should_drop(flow::DATA, None));
    }

    #[test]
    fn group_addresses_are_contiguous_from_base() {
        let base: SocketAddrV4 = "239.66.66.0:7400".parse().unwrap();
        assert_eq!(
            Mode::group_addr(base, GroupId(1)),
            "239.66.66.1:7400".parse().unwrap()
        );
        assert_eq!(
            Mode::group_addr(base, GroupId(300)),
            "239.66.67.44:7400".parse().unwrap()
        );
    }

    #[test]
    fn stats_frame_accounting_starts_balanced() {
        let s = TransportStats::default();
        assert!(s.frames_accounted());
    }
}

//! The wall-clock node runtime: one [`SrmAgent`] over one live UDP socket.
//!
//! Architecture (no async runtime — the workspace builds offline):
//!
//! - a **receive thread** blocks on the socket (with a short read timeout so
//!   shutdown is prompt) and forwards raw datagrams over an [`mpsc`]
//!   channel;
//! - the **reactor thread** owns the agent, a [`WallClock`], a
//!   [`TimerWheel`] and a per-node seeded RNG. It waits on the channel with
//!   a timeout bounded by the wheel's next deadline, so timers fire on time
//!   and packets are handled as they arrive — the select loop a simulator
//!   event queue collapses into `recv_timeout`;
//! - every agent entry point goes through `RtDriver`, the wall-clock
//!   implementation of the [`srm::Driver`] seam, so the protocol code that
//!   runs here is byte-for-byte the code the simulator runs.
//!
//! Two [`Mode`]s cover deployment and CI:
//!
//! - [`Mode::Multicast`]: real IP multicast via `join_multicast_v4`; group
//!   ids map onto a contiguous block of group addresses.
//! - [`Mode::Mesh`]: a unicast fan-out to an explicit peer list. Multicast
//!   on a loopback interface needs `SO_REUSEADDR`/`SO_REUSEPORT` to share
//!   one port between processes, which `std::net` cannot set, so CI runs a
//!   127.0.0.1 mesh instead: every send is replicated to every peer, which
//!   is exactly the group-delivery model with a one-hop star topology.
//!
//! A [`LossPolicy`] interposes on the send path (per-flow, optionally
//! per-destination), giving tests a deterministic way to force the losses
//! SRM exists to repair.

use crate::clock::WallClock;
use crate::envelope::Envelope;
use crate::wheel::TimerWheel;
use bytes::Bytes;
use netsim::{GroupId, NodeId, Packet, PacketBody, PacketId, SendOptions, SimDuration, SimTime, TimerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{AduName, Clock, Driver, PageId, SrmAgent, SrmConfig, SourceId, Transport};
use srm::agent::Delivery;
use std::collections::BTreeSet;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// How the runtime reaches the rest of the group.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Unicast fan-out: every multicast is sent once to each peer address.
    /// The loopback deployment for CI and single-host demos.
    Mesh {
        /// The other members' socket addresses.
        peers: Vec<SocketAddr>,
    },
    /// Real IP multicast. [`GroupId`] `g` maps to the group address
    /// `base.ip() + g` (same port), so the session group and any
    /// local-recovery groups the agent allocates land on distinct
    /// addresses; pick a base with headroom inside 239.0.0.0/8.
    Multicast {
        /// Base group address and port.
        base: SocketAddrV4,
    },
}

impl Mode {
    fn group_addr(base: SocketAddrV4, group: GroupId) -> SocketAddrV4 {
        let ip = Ipv4Addr::from(u32::from(*base.ip()).wrapping_add(group.0));
        SocketAddrV4::new(ip, base.port())
    }
}

/// Deterministic send-side loss: drop the `nth` outgoing frame of a flow,
/// optionally only towards one destination (mesh mode replicates a send per
/// peer, so per-destination rules model a lossy link to one member while
/// the rest of the group receives normally).
#[derive(Debug, Default)]
pub struct LossPolicy {
    rules: Vec<LossRule>,
}

#[derive(Debug)]
struct LossRule {
    flow: u32,
    dest: Option<SocketAddr>,
    nth: u64,
    seen: u64,
}

impl LossPolicy {
    /// No loss.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drop the `nth` (0-based) frame of `flow`, wherever it is headed.
    pub fn drop_nth(mut self, flow: u32, nth: u64) -> Self {
        self.rules.push(LossRule {
            flow,
            dest: None,
            nth,
            seen: 0,
        });
        self
    }

    /// Drop the `nth` (0-based) frame of `flow` addressed to `dest`.
    pub fn drop_nth_to(mut self, flow: u32, dest: SocketAddr, nth: u64) -> Self {
        self.rules.push(LossRule {
            flow,
            dest: Some(dest),
            nth,
            seen: 0,
        });
        self
    }

    /// Should this (flow, destination) frame be dropped? Each rule counts
    /// the frames it matches; `dest` is `None` in multicast mode, where
    /// only destination-less rules apply.
    fn should_drop(&mut self, flow: u32, dest: Option<SocketAddr>) -> bool {
        let mut drop = false;
        for r in &mut self.rules {
            if r.flow == flow && (r.dest.is_none() || r.dest == dest) {
                if r.seen == r.nth {
                    drop = true;
                }
                r.seen += 1;
            }
        }
        drop
    }
}

/// Per-node configuration for [`Node::spawn`].
#[derive(Debug)]
pub struct NodeOptions {
    /// This member's persistent Source-ID (also the envelope's node id).
    pub id: SourceId,
    /// The session's multicast group.
    pub group: GroupId,
    /// Protocol configuration, shared with the simulator.
    pub cfg: SrmConfig,
    /// Seed for this node's timer RNG. The simulator draws every node's
    /// timers from one simulation-global seeded RNG; on a real network each
    /// host has its own, which is the deployment the paper describes.
    pub seed: u64,
    /// Run periodic session messages (on for any real deployment; tests of
    /// a single recovery round may disable them and seed distances).
    pub session_enabled: bool,
    /// Enable the obs event recorder from the start.
    pub trace: bool,
    /// Pre-seeded distance estimates (assumed-converged state, as the
    /// figure experiments use). Live session messages refine them.
    pub initial_distances: Vec<(SourceId, SimDuration)>,
    /// Clock skew applied to this node's local timestamps.
    pub skew: SimDuration,
    /// Send-side forced loss.
    pub loss: LossPolicy,
}

impl NodeOptions {
    /// Defaults: sessions on, no trace, no skew, no loss, seed derived
    /// from the member id.
    pub fn new(id: SourceId, group: GroupId, cfg: SrmConfig) -> Self {
        NodeOptions {
            id,
            group,
            cfg,
            seed: 0x5EED_0000 ^ id.0,
            session_enabled: true,
            trace: false,
            initial_distances: Vec::new(),
            skew: SimDuration::ZERO,
            loss: LossPolicy::none(),
        }
    }
}

/// Counters shared between the runtime and its [`NodeHandle`].
#[derive(Debug, Default)]
struct Counters {
    frames_sent: AtomicU64,
    frames_dropped: AtomicU64,
    frames_received: AtomicU64,
}

/// The send half: socket + mode + interposed loss.
struct Outbound {
    socket: UdpSocket,
    mode: Mode,
    src: u32,
    loss: LossPolicy,
    counters: Arc<Counters>,
    /// Reused datagram scratch: the envelope is serialized here for each
    /// send, so steady-state sending allocates nothing per datagram.
    scratch: Vec<u8>,
}

impl Outbound {
    fn send(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        if opts.ttl == 0 {
            // A zero-TTL datagram never leaves the host.
            return;
        }
        self.scratch.clear();
        Envelope {
            src: self.src,
            group: group.0,
            ttl: opts.ttl,
            initial_ttl: opts.ttl,
            admin_scoped: opts.admin_scoped,
            flow: opts.flow,
            payload,
        }
        .encode_into(&mut self.scratch);
        let wire = &self.scratch;
        match &self.mode {
            Mode::Mesh { peers } => {
                for &p in peers {
                    if self.loss.should_drop(opts.flow, Some(p)) {
                        self.counters.frames_dropped.fetch_add(1, Ordering::Relaxed);
                    } else if self.socket.send_to(wire, p).is_ok() {
                        self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Mode::Multicast { base } => {
                let dest = Mode::group_addr(*base, group);
                let _ = self.socket.set_multicast_ttl_v4(u32::from(opts.ttl));
                if self.loss.should_drop(opts.flow, None) {
                    self.counters.frames_dropped.fetch_add(1, Ordering::Relaxed);
                } else if self.socket.send_to(wire, dest).is_ok() {
                    self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn join_group(&mut self, group: GroupId) {
        if let Mode::Multicast { base } = self.mode {
            let addr = Mode::group_addr(base, group);
            // Joining is best-effort: on interfaces without multicast the
            // mesh mode is the supported path.
            let _ = self
                .socket
                .join_multicast_v4(addr.ip(), &Ipv4Addr::UNSPECIFIED);
        }
    }
}

/// Wall-clock implementation of the agent's [`Driver`] seam: the borrowed
/// view of the reactor's state handed to every agent entry point.
struct RtDriver<'a> {
    clock: &'a WallClock,
    wheel: &'a mut TimerWheel,
    rng: &'a mut StdRng,
    out: &'a mut Outbound,
    joined: &'a mut BTreeSet<GroupId>,
}

impl Clock for RtDriver<'_> {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn local_now(&self) -> SimTime {
        self.clock.local_now()
    }
}

impl Transport for RtDriver<'_> {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.out.send(group, payload, opts);
    }

    fn join(&mut self, group: GroupId) {
        if self.joined.insert(group) {
            self.out.join_group(group);
        }
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.wheel.arm(self.clock.now() + delay, token)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.wheel.cancel(id);
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A closure run against the live agent on the reactor thread.
type ExecFn = Box<dyn FnOnce(&mut SrmAgent, &mut dyn Driver) + Send>;

/// Work items the reactor waits on.
enum Event {
    /// A raw datagram from the receive thread.
    Datagram(Vec<u8>),
    /// Run a closure against the agent (the wall-clock analogue of
    /// `Simulator::exec`).
    Exec(ExecFn),
    /// Stop the reactor and return the agent.
    Shutdown,
}

/// How long the reactor sleeps when the wheel is empty. Purely a
/// responsiveness bound — channel events wake it immediately.
const IDLE_WAIT: Duration = Duration::from_millis(250);
/// Read timeout on the receive thread's socket, bounding shutdown latency.
const RECV_POLL: Duration = Duration::from_millis(25);

/// Spawner for node runtimes.
pub struct Node;

impl Node {
    /// Bind `bind` and start a runtime there.
    pub fn spawn(bind: SocketAddr, mode: Mode, opts: NodeOptions) -> io::Result<NodeHandle> {
        Node::spawn_on(UdpSocket::bind(bind)?, mode, opts)
    }

    /// Start a runtime on an already-bound socket (the harness binds all
    /// sockets first so every node can list the others as peers).
    pub fn spawn_on(socket: UdpSocket, mode: Mode, opts: NodeOptions) -> io::Result<NodeHandle> {
        let addr = socket.local_addr()?;
        let recv_socket = socket.try_clone()?;
        recv_socket.set_read_timeout(Some(RECV_POLL))?;

        let (tx, rx) = mpsc::channel::<Event>();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());

        let recv_tx = tx.clone();
        let recv_stop = Arc::clone(&stop);
        let recv_thread = thread::Builder::new()
            .name(format!("srm-recv-{}", opts.id.0))
            .spawn(move || {
                let mut buf = vec![0u8; 64 * 1024];
                while !recv_stop.load(Ordering::Relaxed) {
                    match recv_socket.recv_from(&mut buf) {
                        Ok((n, _from)) => {
                            if recv_tx.send(Event::Datagram(buf[..n].to_vec())).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
            })?;

        let id = opts.id;
        let reactor_stop = Arc::clone(&stop);
        let reactor_counters = Arc::clone(&counters);
        let reactor = thread::Builder::new()
            .name(format!("srm-node-{}", opts.id.0))
            .spawn(move || {
                let agent = run_reactor(socket, mode, opts, rx, reactor_counters);
                reactor_stop.store(true, Ordering::Relaxed);
                let _ = recv_thread.join();
                agent
            })?;

        Ok(NodeHandle {
            tx,
            thread: Some(reactor),
            addr,
            id,
            counters,
        })
    }
}

/// The reactor loop: fire due timers, then wait for the next datagram,
/// command, or timer deadline.
fn run_reactor(
    socket: UdpSocket,
    mode: Mode,
    opts: NodeOptions,
    rx: mpsc::Receiver<Event>,
    counters: Arc<Counters>,
) -> SrmAgent {
    let clock = WallClock::with_skew(opts.skew);
    let mut wheel = TimerWheel::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut joined: BTreeSet<GroupId> = BTreeSet::new();
    let mut out = Outbound {
        socket,
        mode,
        src: u32::try_from(opts.id.0).unwrap_or(u32::MAX),
        loss: opts.loss,
        counters: Arc::clone(&counters),
        scratch: Vec::new(),
    };

    let mut agent = SrmAgent::new(opts.id, opts.group, opts.cfg);
    agent.session_enabled = opts.session_enabled;
    if opts.trace {
        agent.obs.enable();
    }
    for (peer, d) in opts.initial_distances {
        agent.distances_mut().set_distance(peer, d);
    }

    macro_rules! driver {
        () => {
            RtDriver {
                clock: &clock,
                wheel: &mut wheel,
                rng: &mut rng,
                out: &mut out,
                joined: &mut joined,
            }
        };
    }

    agent.drive_start(&mut driver!());

    let mut rx_seq = 0u64;
    loop {
        while let Some(token) = wheel.pop_expired(clock.now()) {
            agent.drive_timer(&mut driver!(), token);
        }
        let wait = match wheel.next_deadline() {
            Some(at) => clock.until(at).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout(wait) {
            Ok(Event::Datagram(buf)) => {
                let Ok(env) = Envelope::decode(&buf) else {
                    continue; // not ours / corrupt header
                };
                // Self-delivery (multicast loopback echo) and traffic for
                // groups we have not joined are the network's job to
                // withhold in the simulator; filter them here.
                if env.src == out.src || !joined.contains(&GroupId(env.group)) || env.ttl == 0 {
                    continue;
                }
                counters.frames_received.fetch_add(1, Ordering::Relaxed);
                rx_seq += 1;
                let pkt = Packet::new(
                    // One observable hop on a mesh; real multicast hop
                    // counts would need the received IP TTL, which std
                    // sockets cannot read.
                    env.ttl.saturating_sub(1),
                    PacketBody {
                        id: PacketId(rx_seq),
                        src: NodeId(env.src),
                        group: GroupId(env.group),
                        dest: None,
                        initial_ttl: env.initial_ttl,
                        admin_scoped: env.admin_scoped,
                        flow: env.flow,
                        size: buf.len() as u32,
                        payload: env.payload.clone(),
                    },
                );
                agent.drive_packet(&mut driver!(), &pkt);
            }
            Ok(Event::Exec(f)) => f(&mut agent, &mut driver!()),
            Ok(Event::Shutdown) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    agent
}

/// Client handle to a running node; drop (or [`NodeHandle::shutdown`])
/// stops it.
pub struct NodeHandle {
    tx: mpsc::Sender<Event>,
    thread: Option<thread::JoinHandle<SrmAgent>>,
    addr: SocketAddr,
    id: SourceId,
    counters: Arc<Counters>,
}

impl NodeHandle {
    /// The socket address this node receives on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The member id this node runs as.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Run `f` against the live agent on the reactor thread and return its
    /// result — the wall-clock `Simulator::exec`.
    ///
    /// # Panics
    /// Panics if the runtime has already stopped.
    pub fn exec<R, F>(&self, f: F) -> R
    where
        F: FnOnce(&mut SrmAgent, &mut dyn Driver) -> R + Send + 'static,
        R: Send + 'static,
    {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .send(Event::Exec(Box::new(move |agent, drv| {
                let _ = rtx.send(f(agent, drv));
            })))
            .expect("node runtime is running");
        rrx.recv().expect("node runtime answered")
    }

    /// Multicast a new ADU on `page`; returns its name.
    pub fn send_data(&self, page: PageId, payload: Bytes) -> AduName {
        self.exec(move |a, d| a.send_data(d, page, payload))
    }

    /// Drain ADUs delivered to the application since the last call.
    pub fn take_delivered(&self) -> Vec<Delivery> {
        self.exec(|a, _| a.take_delivered())
    }

    /// Frames put on the wire (per peer in mesh mode).
    pub fn frames_sent(&self) -> u64 {
        self.counters.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames suppressed by the [`LossPolicy`].
    pub fn frames_dropped(&self) -> u64 {
        self.counters.frames_dropped.load(Ordering::Relaxed)
    }

    /// Frames accepted from the socket (post filtering).
    pub fn frames_received(&self) -> u64 {
        self.counters.frames_received.load(Ordering::Relaxed)
    }

    /// Stop the runtime and take the final agent (metrics, recorder, and
    /// store intact) for harvesting.
    pub fn shutdown(mut self) -> SrmAgent {
        let _ = self.tx.send(Event::Shutdown);
        self.thread
            .take()
            .expect("shutdown called once")
            .join()
            .expect("node runtime exited cleanly")
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = self.tx.send(Event::Shutdown);
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow;

    #[test]
    fn loss_policy_counts_per_rule() {
        let mut p = LossPolicy::none().drop_nth(flow::DATA, 1);
        assert!(!p.should_drop(flow::DATA, None));
        assert!(p.should_drop(flow::DATA, None));
        assert!(!p.should_drop(flow::DATA, None));
        assert!(!p.should_drop(flow::SESSION, None));
    }

    #[test]
    fn loss_policy_per_destination() {
        let a: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2000".parse().unwrap();
        let mut p = LossPolicy::none().drop_nth_to(flow::DATA, b, 0);
        assert!(!p.should_drop(flow::DATA, Some(a)));
        assert!(p.should_drop(flow::DATA, Some(b)));
        assert!(!p.should_drop(flow::DATA, Some(b)));
        // Multicast sends (no destination) never match a per-dest rule.
        let mut q = LossPolicy::none().drop_nth_to(flow::DATA, b, 0);
        assert!(!q.should_drop(flow::DATA, None));
    }

    #[test]
    fn group_addresses_are_contiguous_from_base() {
        let base: SocketAddrV4 = "239.66.66.0:7400".parse().unwrap();
        assert_eq!(
            Mode::group_addr(base, GroupId(1)),
            "239.66.66.1:7400".parse().unwrap()
        );
        assert_eq!(
            Mode::group_addr(base, GroupId(300)),
            "239.66.67.44:7400".parse().unwrap()
        );
    }
}

//! One hub shard: a reactor thread hosting many SRM agents.
//!
//! Where [`crate::runtime`] dedicates a whole reactor (and socket) to one
//! agent, a shard multiplexes every group that hashes to it over the hub's
//! *shared* socket: the hub's demux thread routes decoded frames here by
//! group id, and the shard walks them into the right agent. Each hosted
//! group keeps exactly the state a standalone node's reactor would give
//! it — its own [`TimerWheel`], its own seeded RNG (derived from the hub
//! seed and the group id, so runs replay per group), its own optional
//! durable store directory — which is why a hub-hosted group behaves
//! byte-for-byte like a single-group `srm-node` (the equivalence test in
//! `tests/hub.rs` pins this).
//!
//! The paper's light-weight sessions (§I) are cheap precisely because all
//! per-session state is this small: an agent, a wheel, an RNG, a peer
//! list, and an optional token bucket.
//!
//! Send-side quota: each group may carry a [`TokenBucket`] (§III-E). A
//! refused frame is dropped *before* the fan-out and tallied as
//! `quota_overflow` — exactly where chaos drops sit in the single-node
//! runtime — so the shard's frame-accounting invariant
//! (`frames_attempted == frames_sent + send_errors`) is untouched by
//! quota pressure.

use crate::batch::{BatchOptions, BatchSocket, SendFrame};
use crate::clock::WallClock;
use crate::control::GroupSpec;
use crate::envelope::{Envelope, HEADER_LEN};
use crate::hub::HubCounters;
use crate::pool::{BufferPool, PoolBuf};
use crate::wheel::TimerWheel;
use bytes::Bytes;
use netsim::{GroupId, NodeId, Packet, PacketBody, PacketId, SendOptions, SimDuration, SimTime, TimerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::rate::TokenBucket;
use srm::{Clock, Driver, PageId, RateLimit, SourceId, SrmAgent, SrmConfig, Transport};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Initial size of a shard's send-side encode slabs (grown slabs recycle
/// at their new size, as in the single-node runtime).
const TX_SLAB_BYTES: usize = 2048;

/// Shard idle wait when no timer is armed; channel events wake it sooner.
const IDLE_WAIT: Duration = Duration::from_millis(250);

/// Per-group counters snapshot, the unit of the hub's `stats` rollup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Group id.
    pub group: u32,
    /// The shard hosting it.
    pub shard: usize,
    /// Configured group size.
    pub members: usize,
    /// Frames routed to this group's agent (post filtering).
    pub rx_frames: u64,
    /// Logical multicasts the agent issued (pre fan-out).
    pub tx_frames: u64,
    /// ADUs delivered to the hub-side application.
    pub delivered: u64,
    /// Original ADUs this group's agent published.
    pub data_sent: u64,
    /// Repairs this group's agent answered.
    pub repairs_sent: u64,
    /// Session messages this group's agent sent.
    pub session_sent: u64,
    /// Frames refused by the group's token-bucket quota (dropped before
    /// the fan-out).
    pub quota_overflow: u64,
}

/// What the hub gets back from a drain (single group or all).
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainOutcome {
    /// Groups detached.
    pub groups: u32,
    /// Sum of `data_sent` over the drained groups.
    pub data_sent: u64,
    /// Sum of `delivered` over the drained groups.
    pub delivered: u64,
}

/// A control command routed to one shard, with its reply channel.
pub(crate) enum ShardCommand {
    /// Host a group (`idempotent` = `join` semantics on duplicates).
    Create { spec: GroupSpec, idempotent: bool, reply: mpsc::SyncSender<ShardReply> },
    /// Publish `count` ADUs of `text` on the group's page 0.
    Send { group: u32, text: String, count: u32, reply: mpsc::SyncSender<ShardReply> },
    /// Drain one group.
    Drain { group: u32, reply: mpsc::SyncSender<ShardReply> },
    /// Drain every hosted group (the shard keeps running).
    DrainAll { reply: mpsc::SyncSender<ShardReply> },
    /// Per-group counters for the rollup.
    Stats { reply: mpsc::SyncSender<ShardReply> },
}

/// A shard's answer to a [`ShardCommand`].
pub(crate) enum ShardReply {
    Created { already: bool },
    Sent { last: String },
    Drained(DrainOutcome),
    Stats(Vec<GroupStats>),
    Err(String),
}

/// Work items a shard waits on.
pub(crate) enum ShardEvent {
    /// A routed frame: capture time, GRO segment size, pooled buffer.
    /// The buffer may hold several coalesced frames; the shard walks them
    /// at the segment stride exactly like the single-node reactor.
    Datagram(SimTime, u32, PoolBuf),
    /// A control command.
    Command(ShardCommand),
    /// Drain everything and exit.
    Shutdown,
}

/// Everything a shard thread is born with.
pub(crate) struct ShardConfig {
    /// This shard's index (stable for the hub's lifetime).
    pub index: usize,
    /// Hub-level seed; per-group RNGs derive from it.
    pub seed: u64,
    /// The hub's shared clock.
    pub clock: WallClock,
    /// Batch tuning (send batch size, pool slabs, drain window).
    pub batch: BatchOptions,
    /// Live metrics registry (per-group labeled counters land here).
    pub metrics: Option<obs::MetricsRegistry>,
    /// Durable store root: group `g` logs under `<root>/<g>/`.
    pub store_root: Option<std::path::PathBuf>,
    /// Hub-shared counters (frame accounting, unjoined drops).
    pub counters: Arc<HubCounters>,
}

/// Per-group registry handles, resolved once at create.
struct GroupReg {
    rx_frames: obs::Counter,
    tx_frames: obs::Counter,
    delivered: obs::Counter,
    quota_overflow: obs::Counter,
}

impl GroupReg {
    fn new(reg: &obs::MetricsRegistry, group: u32) -> Self {
        GroupReg {
            rx_frames: reg.counter(&format!("hub.g{group}.rx_frames")),
            tx_frames: reg.counter(&format!("hub.g{group}.tx_frames")),
            delivered: reg.counter(&format!("hub.g{group}.delivered")),
            quota_overflow: reg.counter(&format!("hub.g{group}.quota_overflow")),
        }
    }
}

/// One hosted group: an agent plus the session-local state a standalone
/// reactor would own.
struct GroupRt {
    /// The member id the agent runs as, as it appears in envelopes.
    src: u32,
    members: usize,
    agent: SrmAgent,
    wheel: TimerWheel,
    rng: StdRng,
    peers: Vec<SocketAddr>,
    quota: Option<TokenBucket>,
    quota_overflow: u64,
    tx_frames: u64,
    rx_frames: u64,
    rx_seq: u64,
    delivered: u64,
    reg: Option<GroupReg>,
}

/// The shard's send half: one batched sender over the hub's shared
/// socket, with pooled encode slabs and a per-wakeup flush queue shared
/// by every hosted group.
struct ShardOut {
    batch: Box<dyn BatchSocket>,
    tx_pool: BufferPool,
    queue: Vec<(SocketAddr, Arc<PoolBuf>)>,
    results: Vec<io::Result<()>>,
    max_batch: usize,
    counters: Arc<HubCounters>,
}

impl ShardOut {
    /// Push every queued frame out in batched syscalls, settling
    /// `frames_sent`/`send_errors` per destination.
    fn flush(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.queue);
        for chunk in queue.chunks(self.max_batch.max(1)) {
            let frames: Vec<SendFrame<'_>> = chunk
                .iter()
                .map(|(dest, data)| SendFrame { dest: *dest, data })
                .collect();
            self.results.clear();
            self.batch.send_batch(&frames, &mut self.results);
            for r in self.results.iter() {
                match r {
                    Ok(()) => {
                        self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.counters.send_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.queue = queue;
        self.queue.clear();
    }
}

/// The per-group [`Driver`]: the same seam [`crate::runtime`]'s `RtDriver`
/// implements, borrowing this group's wheel/RNG/quota and the shard's
/// shared send half.
struct HubDriver<'a> {
    clock: &'a WallClock,
    wheel: &'a mut TimerWheel,
    rng: &'a mut StdRng,
    out: &'a mut ShardOut,
    peers: &'a [SocketAddr],
    src: u32,
    quota: &'a mut Option<TokenBucket>,
    quota_overflow: &'a mut u64,
    tx_frames: &'a mut u64,
}

impl Clock for HubDriver<'_> {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn local_now(&self) -> SimTime {
        self.clock.local_now()
    }
}

impl Transport for HubDriver<'_> {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        if opts.ttl == 0 {
            return;
        }
        let now = self.clock.now();
        // Quota gate, charged at wire size (§III-E: the sender's token
        // bucket enforces the session's advertised peak rate). A refusal
        // drops the frame *before* the fan-out, so `frames_attempted`
        // never sees it — same accounting slot as a chaos drop.
        if let Some(tb) = self.quota.as_mut() {
            let wire_len = (HEADER_LEN + payload.len()) as f64;
            if !tb.try_consume(now, wire_len) {
                *self.quota_overflow += 1;
                return;
            }
        }
        *self.tx_frames += 1;
        let mut buf = self.out.tx_pool.try_take().unwrap_or_else(|| {
            self.out.tx_pool.note_miss();
            PoolBuf::copied_from(&[])
        });
        Envelope {
            src: self.src,
            group: group.0,
            ttl: opts.ttl,
            initial_ttl: opts.ttl,
            admin_scoped: opts.admin_scoped,
            flow: opts.flow,
            payload,
        }
        .encode_into(&mut buf);
        let wire = Arc::new(buf);
        for &p in self.peers {
            self.out.counters.frames_attempted.fetch_add(1, Ordering::Relaxed);
            self.out.queue.push((p, Arc::clone(&wire)));
        }
    }

    fn join(&mut self, group: GroupId) {
        // Mesh semantics: the fan-out list already reaches every member,
        // and inbound routing is the hub's hosted-group map. A join is
        // therefore a no-op, exactly like `Mode::Mesh` in the runtime.
        let _ = group;
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.wheel.arm(self.clock.now() + delay, token)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.wheel.cancel(id);
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Run `f` against one group's agent behind a freshly-borrowed driver.
fn drive<R>(
    clock: &WallClock,
    out: &mut ShardOut,
    grt: &mut GroupRt,
    f: impl FnOnce(&mut SrmAgent, &mut dyn Driver) -> R,
) -> R {
    let GroupRt { src, agent, wheel, rng, peers, quota, quota_overflow, tx_frames, .. } = grt;
    let mut d = HubDriver {
        clock,
        wheel,
        rng,
        out,
        peers,
        src: *src,
        quota,
        quota_overflow,
        tx_frames,
    };
    f(agent, &mut d)
}

/// Derive one group's RNG seed from the hub seed: a splitmix-style mix so
/// adjacent group ids land far apart, and the same `(hub seed, group)`
/// pair replays identically regardless of which shard hosts it.
pub fn group_seed(hub_seed: u64, group: u32) -> u64 {
    let mut x = hub_seed ^ (u64::from(group)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn create_group(cfg: &ShardConfig, spec: &GroupSpec) -> GroupRt {
    let srm_cfg = SrmConfig::fixed(spec.members.max(1));
    let mut agent = SrmAgent::new(SourceId(spec.id), GroupId(spec.group), srm_cfg);
    agent.session_enabled = true;
    if let Some(ms) = spec.dist_ms {
        let d = SimDuration::from_millis(ms);
        for m in 1..=spec.members as u64 {
            if m != spec.id {
                agent.distances_mut().set_distance(SourceId(m), d);
            }
        }
    }
    if let Some(root) = &cfg.store_root {
        let dir = root.join(spec.group.to_string());
        match srm_store::DirBackend::open(&dir) {
            Ok(backend) => {
                let mut ds =
                    srm_store::DurableStore::new(Box::new(backend), srm_store::StoreConfig::default());
                if let Some(r) = cfg.metrics.as_ref() {
                    ds.set_probes(srm_store::StoreProbes::from_registry(r));
                }
                let summary = agent.attach_durable_store(Box::new(ds), None);
                if !summary.names.is_empty() {
                    eprintln!(
                        "srm-hub[shard {}]: group {} rehydrated {} ADUs from {}",
                        cfg.index,
                        spec.group,
                        summary.names.len(),
                        dir.display()
                    );
                }
            }
            Err(e) => eprintln!(
                "srm-hub[shard {}]: group {} could not open store {}: {e} (running without durability)",
                cfg.index,
                spec.group,
                dir.display()
            ),
        }
    }
    let quota = spec.rate.map(|rate| {
        TokenBucket::new(RateLimit {
            bytes_per_sec: rate,
            burst_bytes: spec.burst.unwrap_or(2.0 * rate),
        })
    });
    GroupRt {
        src: u32::try_from(spec.id).unwrap_or(u32::MAX),
        members: spec.members,
        agent,
        wheel: TimerWheel::new(),
        rng: StdRng::seed_from_u64(group_seed(cfg.seed, spec.group)),
        peers: spec.peers.clone(),
        quota,
        quota_overflow: 0,
        tx_frames: 0,
        rx_frames: 0,
        rx_seq: 0,
        delivered: 0,
        reg: cfg.metrics.as_ref().map(|r| GroupReg::new(r, spec.group)),
    }
}

fn group_stats(index: usize, gid: u32, grt: &GroupRt) -> GroupStats {
    GroupStats {
        group: gid,
        shard: index,
        members: grt.members,
        rx_frames: grt.rx_frames,
        tx_frames: grt.tx_frames,
        delivered: grt.delivered,
        data_sent: grt.agent.metrics.data_sent,
        repairs_sent: grt.agent.metrics.repairs_sent,
        session_sent: grt.agent.metrics.session_sent,
        quota_overflow: grt.quota_overflow,
    }
}

/// Graceful drain of one group: a final session message (so peers learn
/// our last state before the silence), flush of anything it queued, then
/// a WAL flush — the store directory survives for the next `create`.
fn drain_group(clock: &WallClock, out: &mut ShardOut, mut grt: GroupRt) -> DrainOutcome {
    drive(clock, out, &mut grt, |a, d| a.send_session_now(d));
    grt.delivered += grt.agent.take_delivered().len() as u64;
    out.flush();
    grt.agent.flush_store();
    DrainOutcome {
        groups: 1,
        data_sent: grt.agent.metrics.data_sent,
        delivered: grt.delivered,
    }
}

/// The shard reactor: fire due timers per group, flush batched sends,
/// then drain a window of routed frames and control commands. `send` is a
/// batched backend over a clone of the hub's shared socket descriptor.
pub(crate) fn run_shard(
    cfg: ShardConfig,
    send: Box<dyn BatchSocket>,
    rx: mpsc::Receiver<ShardEvent>,
) {
    if cfg.batch.batch_sched {
        crate::batch::enter_batch_scheduling();
    }
    let mut out = ShardOut {
        batch: send,
        tx_pool: BufferPool::new(cfg.batch.pool_slabs, TX_SLAB_BYTES),
        queue: Vec::new(),
        results: Vec::new(),
        max_batch: cfg.batch.send_batch.clamp(1, crate::batch::MAX_BATCH),
        counters: Arc::clone(&cfg.counters),
    };
    let mut groups: BTreeMap<u32, GroupRt> = BTreeMap::new();
    let mut unjoined_count = 0u64;
    let inbound_drain = cfg.batch.inbound_drain.max(1);
    let shard_gauges = cfg.metrics.as_ref().map(|r| {
        (
            r.gauge(&format!("hub.shard{}.groups", cfg.index)),
            r.gauge(&format!("hub.shard{}.wheel_depth", cfg.index)),
        )
    });

    // Handle one event; true means shutdown.
    let handle = |ev: ShardEvent,
                  groups: &mut BTreeMap<u32, GroupRt>,
                  out: &mut ShardOut,
                  unjoined_count: &mut u64|
     -> bool {
        match ev {
            ShardEvent::Datagram(_at, seg, buf) => {
                let data: &[u8] = &buf;
                let stride = match seg as usize {
                    0 => data.len().max(1),
                    s => s,
                };
                let mut off = 0;
                loop {
                    let chunk = &data[off..(off + stride).min(data.len())];
                    off += stride;
                    let last = off >= data.len();
                    'frame: {
                        let env = match Envelope::decode_view(chunk) {
                            Ok(env) => env,
                            Err(_) => {
                                // Passed the demux precheck but fails the
                                // full decode (e.g. a length mismatch):
                                // same counted fate it would meet on a
                                // standalone node.
                                cfg.counters.rx_undecodable.fetch_add(1, Ordering::Relaxed);
                                break 'frame;
                            }
                        };
                        let Some(grt) = groups.get_mut(&env.group) else {
                            cfg.counters.rx_unjoined_group.fetch_add(1, Ordering::Relaxed);
                            *unjoined_count += 1;
                            if *unjoined_count <= 5 || unjoined_count.is_multiple_of(1024) {
                                eprintln!(
                                    "srm-hub[shard {}]: dropping frame from {} for unhosted group {} ({} total) — \
                                     create the group here or fix the sender",
                                    cfg.index, env.src, env.group, unjoined_count
                                );
                            }
                            break 'frame;
                        };
                        if env.src == grt.src || env.ttl == 0 {
                            break 'frame;
                        }
                        grt.rx_frames += 1;
                        cfg.counters.rx_frames.fetch_add(1, Ordering::Relaxed);
                        grt.rx_seq += 1;
                        let pkt = Packet::new(
                            env.ttl.saturating_sub(1),
                            PacketBody {
                                id: PacketId(grt.rx_seq),
                                src: NodeId(env.src),
                                group: GroupId(env.group),
                                dest: None,
                                initial_ttl: env.initial_ttl,
                                admin_scoped: env.admin_scoped,
                                flow: env.flow,
                                size: chunk.len() as u32,
                                payload: Bytes::copy_from_slice(env.payload),
                            },
                        );
                        drive(&cfg.clock, out, grt, |a, d| a.drive_packet(d, &pkt));
                        grt.delivered += grt.agent.take_delivered().len() as u64;
                    }
                    if last {
                        break;
                    }
                }
                false
            }
            ShardEvent::Command(cmd) => {
                match cmd {
                    ShardCommand::Create { spec, idempotent, reply } => {
                        let r = match groups.entry(spec.group) {
                            Entry::Occupied(_) if idempotent => {
                                ShardReply::Created { already: true }
                            }
                            Entry::Occupied(_) => {
                                ShardReply::Err(format!("group {} already exists", spec.group))
                            }
                            Entry::Vacant(slot) => {
                                let mut grt = create_group(&cfg, &spec);
                                drive(&cfg.clock, out, &mut grt, |a, d| a.drive_start(d));
                                slot.insert(grt);
                                ShardReply::Created { already: false }
                            }
                        };
                        let _ = reply.send(r);
                    }
                    ShardCommand::Send { group, text, count, reply } => {
                        let r = match groups.get_mut(&group) {
                            None => ShardReply::Err(format!("group {group} not hosted")),
                            Some(grt) => {
                                let page = PageId::new(SourceId(u64::from(grt.src)), 0);
                                let mut last = String::new();
                                for i in 0..count {
                                    let body = if count == 1 {
                                        text.clone()
                                    } else {
                                        format!("{text} #{i}")
                                    };
                                    let name = drive(&cfg.clock, out, grt, |a, d| {
                                        a.send_data(d, page, Bytes::from(body.into_bytes()))
                                    });
                                    last = name.to_string();
                                }
                                ShardReply::Sent { last }
                            }
                        };
                        let _ = reply.send(r);
                    }
                    ShardCommand::Drain { group, reply } => {
                        let r = match groups.remove(&group) {
                            None => ShardReply::Err(format!("group {group} not hosted")),
                            Some(grt) => ShardReply::Drained(drain_group(&cfg.clock, out, grt)),
                        };
                        let _ = reply.send(r);
                    }
                    ShardCommand::DrainAll { reply } => {
                        let mut total = DrainOutcome::default();
                        let drained = std::mem::take(groups);
                        for (_gid, grt) in drained {
                            let one = drain_group(&cfg.clock, out, grt);
                            total.groups += one.groups;
                            total.data_sent += one.data_sent;
                            total.delivered += one.delivered;
                        }
                        let _ = reply.send(ShardReply::Drained(total));
                    }
                    ShardCommand::Stats { reply } => {
                        let stats = groups
                            .iter()
                            .map(|(&gid, grt)| group_stats(cfg.index, gid, grt))
                            .collect();
                        let _ = reply.send(ShardReply::Stats(stats));
                    }
                }
                false
            }
            ShardEvent::Shutdown => true,
        }
    };

    'shard: loop {
        for grt in groups.values_mut() {
            while let Some(token) = grt.wheel.pop_expired(cfg.clock.now()) {
                drive(&cfg.clock, &mut out, grt, |a, d| a.drive_timer(d, token));
            }
            grt.delivered += grt.agent.take_delivered().len() as u64;
        }
        out.flush();
        publish(&cfg, &groups, shard_gauges.as_ref());
        let deadline = groups.values_mut().filter_map(|g| g.wheel.next_deadline()).min();
        let wait = match deadline {
            Some(at) => cfg.clock.until(at).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout(wait) {
            Ok(ev) => {
                if handle(ev, &mut groups, &mut out, &mut unjoined_count) {
                    break 'shard;
                }
                let mut drained = 1usize;
                while drained < inbound_drain {
                    if out.queue.len() >= out.max_batch {
                        out.flush();
                    }
                    match rx.try_recv() {
                        Ok(ev) => {
                            drained += 1;
                            if handle(ev, &mut groups, &mut out, &mut unjoined_count) {
                                break 'shard;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'shard,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    // Shutdown: every still-hosted group drains gracefully.
    for (_gid, grt) in std::mem::take(&mut groups) {
        drain_group(&cfg.clock, &mut out, grt);
    }
    out.flush();
}

/// Refresh per-group registry mirrors and shard-level gauges.
fn publish(
    cfg: &ShardConfig,
    groups: &BTreeMap<u32, GroupRt>,
    gauges: Option<&(obs::Gauge, obs::Gauge)>,
) {
    if cfg.metrics.is_none() {
        return;
    }
    let mut wheel_total = 0u64;
    for grt in groups.values() {
        wheel_total += grt.wheel.len() as u64;
        if let Some(r) = &grt.reg {
            r.rx_frames.set_total(grt.rx_frames);
            r.tx_frames.set_total(grt.tx_frames);
            r.delivered.set_total(grt.delivered);
            r.quota_overflow.set_total(grt.quota_overflow);
        }
    }
    if let Some((g_groups, g_wheel)) = gauges {
        g_groups.set(groups.len() as u64);
        g_wheel.set(wheel_total);
    }
}

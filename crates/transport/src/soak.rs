//! Multi-node chaos soak: a bounded wall-clock session that must survive.
//!
//! [`run`] spins up a 3–5 node loopback mesh ([`Harness`]), applies one
//! scripted [`ChaosPlan`](crate::ChaosPlan) (same seed-derived schedule
//! shape on every node),
//! has every member publish ADUs while the chaos is active, and then checks
//! the invariants that define "SRM survived":
//!
//! 1. **Eventual delivery** — after the scripted windows heal, every ADU
//!    reaches every other member within the settle budget (the paper's
//!    reliability definition: eventual delivery, no ordering).
//! 2. **No reactor deaths** — zero recv threads exhausted their respawn
//!    budget, and every reactor still answers a
//!    [`NodeHandle::ping`](crate::NodeHandle::ping).
//! 3. **Bounded growth** — timer-wheel and delay-queue high-water marks
//!    stay under fixed caps (no leak under churn).
//! 4. **Zero unexplained drops** — every per-destination send attempt is
//!    accounted as sent, policy-dropped, blackholed, or a send error
//!    ([`TransportStats::frames_accounted`]).
//!
//! The report carries per-node [`TransportStats`], the delivery matrix, a
//! [`RunSummary`](obs::RunSummary) with the transport table, and (with
//! `trace`) the merged obs timeline — so a failing soak is diagnosable from
//! its artifacts, and replayable from its seed.

use crate::chaos::parse_spec;
use crate::harness::{harvest_summary, harvest_timeline, Harness};
use crate::runtime::TransportStats;
use bytes::Bytes;
use netsim::GroupId;
use srm::{AduName, LivenessConfig, PageId, SourceId, SrmConfig};
use std::collections::HashSet;
use std::io;
use std::time::{Duration, Instant};

/// Timer-wheel high-water cap (entries, including lazy-cancelled slots).
/// Generous: a healthy agent keeps a handful of pending timers; only a
/// leak crosses this.
pub const MAX_WHEEL: u64 = 10_000;
/// Chaos delay-queue high-water cap (held-back frames).
pub const MAX_DELAYQ: u64 = 4_096;

/// Configuration for one soak run.
#[derive(Clone, Debug)]
pub struct SoakOptions {
    /// Mesh size (the ISSUE's 3–5 node range; anything ≥ 2 works).
    pub nodes: usize,
    /// Scripted phase length: sends are paced over the first half, chaos
    /// windows should live inside it.
    pub duration: Duration,
    /// ADUs each member publishes.
    pub adus_per_node: usize,
    /// Chaos spec ([`parse_spec`] grammar), applied to every node with the
    /// mesh's index-aligned address list.
    pub chaos: String,
    /// Base seed; node seeds (timers + chaos) derive from it.
    pub seed: u64,
    /// Extra wall-clock budget after `duration` for recovery to finish.
    pub settle: Duration,
    /// Peer-liveness thresholds (always enabled in a soak).
    pub liveness: LivenessConfig,
    /// Capture obs timelines (recovery + transport events).
    pub trace: bool,
    /// The multicast group the mesh runs on. Soaks were hard-wired to
    /// group 1 before the hub existed; a hub shard hosting group `g` is
    /// soaked by setting this to `g` (and optionally scoping the chaos
    /// spec with `group=g`), with identical replay-from-seed semantics.
    pub group: u32,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            nodes: 3,
            duration: Duration::from_secs(6),
            adus_per_node: 4,
            chaos: "loss=0.1,dup=0.05,reorder=0.15:30ms,jitter=20ms,burst=0.9@1s+2s".into(),
            seed: 1,
            settle: Duration::from_secs(30),
            liveness: LivenessConfig::default(),
            trace: false,
            group: 1,
        }
    }
}

/// One member's soak outcome.
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// Member id.
    pub member: u64,
    /// Final transport counters.
    pub stats: TransportStats,
    /// ADUs from other members this node delivered.
    pub delivered: usize,
    /// ADUs from other members this node was supposed to deliver.
    pub expected: usize,
    /// The ADUs still missing at shutdown.
    pub missing: Vec<AduName>,
    /// Did the reactor answer a liveness ping at the end?
    pub ping_ok: bool,
}

/// Everything a finished soak learned.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Per-member outcomes, in member order.
    pub nodes: Vec<NodeOutcome>,
    /// Total wall-clock time spent.
    pub elapsed: Duration,
    /// Total ADUs published across the mesh.
    pub adus_sent: usize,
    /// Run summary (protocol tables + the transport table).
    pub summary: obs::RunSummary,
    /// Merged obs timeline, when tracing was on.
    pub timeline: Option<obs::Timeline>,
}

impl SoakReport {
    /// The soak invariants this run violated; empty means the soak passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for n in &self.nodes {
            let m = n.member;
            if !n.ping_ok {
                v.push(format!("member {m}: reactor did not answer the liveness ping"));
            }
            if n.stats.recv_deaths > 0 {
                v.push(format!(
                    "member {m}: {} recv thread(s) exhausted the respawn budget",
                    n.stats.recv_deaths
                ));
            }
            if !n.stats.frames_accounted() {
                v.push(format!(
                    "member {m}: unexplained drops — attempted {} != sent {} + dropped {} \
                     + blackholed {} + send_errors {}",
                    n.stats.frames_attempted,
                    n.stats.frames_sent,
                    n.stats.frames_dropped,
                    n.stats.blackholed,
                    n.stats.send_errors
                ));
            }
            if n.stats.max_wheel_len > MAX_WHEEL {
                v.push(format!(
                    "member {m}: timer wheel grew to {} entries (cap {MAX_WHEEL})",
                    n.stats.max_wheel_len
                ));
            }
            if n.stats.max_delayq_len > MAX_DELAYQ {
                v.push(format!(
                    "member {m}: delay queue grew to {} frames (cap {MAX_DELAYQ})",
                    n.stats.max_delayq_len
                ));
            }
            if n.delivered < n.expected {
                v.push(format!(
                    "member {m}: delivered {}/{} ADUs after heal (missing: {})",
                    n.delivered,
                    n.expected,
                    n.missing
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        v
    }

    /// Human-readable report: one line per member, then the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "soak: {} nodes, {} ADUs, {:.1}s wall clock\n",
            self.nodes.len(),
            self.adus_sent,
            self.elapsed.as_secs_f64()
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "  member {}: delivered {}/{} | chdrop {} chdup {} chdelay {} chcorrupt {} \
                 blackhole {} | sockerr {} respawn {} decerr {} | wheel<= {} delayq<= {} | ping {}\n",
                n.member,
                n.delivered,
                n.expected,
                n.stats.chaos_dropped,
                n.stats.chaos_duplicated,
                n.stats.chaos_delayed,
                n.stats.chaos_corrupted,
                n.stats.blackholed,
                n.stats.recv_transient_errors + n.stats.send_errors,
                n.stats.recv_respawns,
                n.stats.decode_errors,
                n.stats.max_wheel_len,
                n.stats.max_delayq_len,
                if n.ping_ok { "ok" } else { "DEAD" },
            ));
        }
        let v = self.violations();
        if v.is_empty() {
            out.push_str("soak: PASS — all ADUs delivered, no reactor deaths, growth bounded\n");
        } else {
            out.push_str(&format!("soak: FAIL — {} violation(s)\n", v.len()));
            for line in &v {
                out.push_str(&format!("  ! {line}\n"));
            }
        }
        out
    }
}

/// Poll every node's delivered ADUs into the per-node sets.
fn poll(h: &Harness, delivered: &mut [HashSet<AduName>]) {
    for (i, node) in h.nodes.iter().enumerate() {
        for d in node.take_delivered() {
            delivered[i].insert(d.name);
        }
    }
}

/// Run one chaos soak to completion and report.
pub fn run(opts: &SoakOptions) -> io::Result<SoakReport> {
    let n = opts.nodes.max(2);
    // Validate the spec grammar up front (against a placeholder address
    // list of the right length) so a typo fails before any socket binds.
    let placeholders: Vec<std::net::SocketAddr> = (0..n)
        .map(|i| format!("127.0.0.1:{}", 1000 + i).parse().unwrap())
        .collect();
    parse_spec(&opts.chaos, &placeholders)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("chaos spec: {e}")))?;

    let start = Instant::now();
    let cfg = SrmConfig::fixed(n);
    let spec = opts.chaos.clone();
    let (seed, liveness, trace) = (opts.seed, opts.liveness, opts.trace);
    let h = Harness::loopback(n, GroupId(opts.group), &cfg, |i, addrs, o| {
        o.seed = seed.wrapping_add(i as u64 * 7919);
        o.trace = trace;
        o.liveness = Some(liveness);
        o.chaos = Some(parse_spec(&spec, addrs).expect("spec validated above"));
    })?;

    // Publish phase: pace every member's ADUs over the first half of the
    // run, so the chaos windows act on live traffic.
    let mut sent: Vec<AduName> = Vec::new();
    let mut delivered: Vec<HashSet<AduName>> = vec![HashSet::new(); n];
    let rounds = opts.adus_per_node.max(1);
    let gap = opts.duration / 2 / (rounds as u32);
    for round in 0..rounds {
        for (i, node) in h.nodes.iter().enumerate() {
            let page = PageId::new(SourceId(i as u64 + 1), 0);
            let payload = format!("soak adu {round} from member {}", i + 1);
            sent.push(node.send_data(page, Bytes::from(payload.into_bytes())));
        }
        poll(&h, &mut delivered);
        std::thread::sleep(gap);
    }

    // Ride out the rest of the scripted phase.
    while start.elapsed() < opts.duration {
        poll(&h, &mut delivered);
        std::thread::sleep(Duration::from_millis(50));
    }

    // Settle phase: the windows have healed; wait (bounded) for SRM's
    // recovery machinery to finish the job.
    let expects: Vec<Vec<AduName>> = (0..n)
        .map(|i| {
            let me = SourceId(i as u64 + 1);
            sent.iter().filter(|a| a.source != me).copied().collect()
        })
        .collect();
    let complete = |delivered: &[HashSet<AduName>]| {
        expects
            .iter()
            .zip(delivered)
            .all(|(want, got)| want.iter().all(|a| got.contains(a)))
    };
    let settle_deadline = Instant::now() + opts.settle;
    while Instant::now() < settle_deadline && !complete(&delivered) {
        poll(&h, &mut delivered);
        std::thread::sleep(Duration::from_millis(50));
    }
    poll(&h, &mut delivered);

    // Probe each reactor, snapshot counters, then harvest.
    let pings: Vec<bool> = h
        .nodes
        .iter()
        .map(|node| node.ping(Duration::from_secs(2)))
        .collect();
    let stats: Vec<TransportStats> = h.nodes.iter().map(|node| node.stats()).collect();
    let mut agents = h.shutdown();
    let summary = harvest_summary(&agents);
    let timeline = opts.trace.then(|| harvest_timeline(&mut agents));

    let nodes = (0..n)
        .map(|i| {
            let missing: Vec<AduName> = expects[i]
                .iter()
                .filter(|a| !delivered[i].contains(a))
                .copied()
                .collect();
            NodeOutcome {
                member: i as u64 + 1,
                stats: stats[i],
                delivered: expects[i].len() - missing.len(),
                expected: expects[i].len(),
                missing,
                ping_ok: pings[i],
            }
        })
        .collect();

    Ok(SoakReport {
        nodes,
        elapsed: start.elapsed(),
        adus_sent: sent.len(),
        summary,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_outcome(member: u64) -> NodeOutcome {
        NodeOutcome {
            member,
            stats: TransportStats::default(),
            delivered: 4,
            expected: 4,
            missing: Vec::new(),
            ping_ok: true,
        }
    }

    fn report(nodes: Vec<NodeOutcome>) -> SoakReport {
        SoakReport {
            nodes,
            elapsed: Duration::from_secs(1),
            adus_sent: 8,
            summary: obs::RunSummary::new(),
            timeline: None,
        }
    }

    #[test]
    fn clean_report_has_no_violations_and_renders_pass() {
        let r = report(vec![clean_outcome(1), clean_outcome(2)]);
        assert!(r.violations().is_empty());
        assert!(r.render().contains("soak: PASS"));
    }

    #[test]
    fn each_invariant_breach_is_reported() {
        let mut dead = clean_outcome(1);
        dead.ping_ok = false;
        dead.stats.recv_deaths = 1;
        let mut leaky = clean_outcome(2);
        leaky.stats.max_wheel_len = MAX_WHEEL + 1;
        leaky.stats.max_delayq_len = MAX_DELAYQ + 1;
        let mut unexplained = clean_outcome(3);
        unexplained.stats.frames_attempted = 10;
        unexplained.stats.frames_sent = 9;
        let mut incomplete = clean_outcome(4);
        incomplete.delivered = 3;
        incomplete.missing =
            vec![AduName::new(SourceId(9), PageId::new(SourceId(9), 0), srm::SeqNo(7))];
        let r = report(vec![dead, leaky, unexplained, incomplete]);
        let v = r.violations();
        assert_eq!(v.len(), 6, "violations: {v:?}");
        assert!(v.iter().any(|s| s.contains("liveness ping")));
        assert!(v.iter().any(|s| s.contains("respawn budget")));
        assert!(v.iter().any(|s| s.contains("timer wheel")));
        assert!(v.iter().any(|s| s.contains("delay queue")));
        assert!(v.iter().any(|s| s.contains("unexplained drops")));
        assert!(v.iter().any(|s| s.contains("delivered 3/4")));
        assert!(r.render().contains("soak: FAIL"));
    }

    #[test]
    fn bad_spec_fails_before_binding_sockets() {
        let opts = SoakOptions { chaos: "warp=0.5".into(), ..SoakOptions::default() };
        assert!(run(&opts).is_err());
    }
}

//! Recv-thread supervision: classify, back off, rebind, respawn.
//!
//! The receive loop used to die silently on the first socket error.  This
//! module gives it a supervisor: socket errors are classified transient
//! (retried in place with bounded exponential backoff) or fatal (the step
//! is torn down and re-created — in practice a fresh clone of the socket,
//! i.e. a rebind — against a bounded respawn budget), and panics inside a
//! step are caught and treated like fatal errors.  The supervisor reports
//! every decision through a callback so the reactor can log typed
//! [`obs::TransportEventKind`] events and keep counters; it never logs
//! itself.
//!
//! The machinery is deliberately generic over closures rather than sockets
//! so the full state machine — transient retry, backoff growth and cap,
//! panic respawn, budget exhaustion — is unit-testable without any I/O.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// How a step error should be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retry the same step after a short backoff: the error is a property
    /// of the moment, not the socket.
    Transient,
    /// Tear the step down and respawn a fresh one (bounded).
    Fatal,
}

/// Classify an I/O error kind the way the recv supervisor does.
///
/// `WouldBlock`/`TimedOut` are the poll timeouts every read-timeout socket
/// produces; `Interrupted` is a signal; `ConnectionReset`/`ConnectionAborted`
/// are what Windows and some Unixes report on a UDP socket after an ICMP
/// port-unreachable from a peer that is merely restarting.  None of these
/// say anything about *our* socket, so they are transient.
pub fn classify(kind: io::ErrorKind) -> ErrorClass {
    match kind {
        io::ErrorKind::WouldBlock
        | io::ErrorKind::TimedOut
        | io::ErrorKind::Interrupted
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted => ErrorClass::Transient,
        _ => ErrorClass::Fatal,
    }
}

/// Supervision limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisePolicy {
    /// Fatal errors / panics tolerated before giving up.
    pub max_respawns: u32,
    /// First backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            max_respawns: 5,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl SupervisePolicy {
    /// Exponential backoff for the `n`-th consecutive failure (0-based),
    /// capped at `backoff_max`.
    pub fn backoff(&self, n: u32) -> Duration {
        let mult = 1u32.checked_shl(n).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(mult)
            .unwrap_or(self.backoff_max)
            .min(self.backoff_max)
    }
}

/// What one supervised step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep stepping.
    Continue,
    /// Clean shutdown was requested.
    Stop,
}

/// A supervisor decision, reported as it happens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SupervisionEvent {
    /// A transient error; the step will be retried after `backoff`.
    Transient {
        /// Error description.
        detail: String,
        /// Sleep before the retry.
        backoff: Duration,
    },
    /// A fatal error or a panic; the step will be torn down.
    Fatal {
        /// Error description (or panic note).
        detail: String,
    },
    /// A fresh step was (re)created after a fatal failure.
    Respawned {
        /// 1-based respawn attempt.
        attempt: u32,
        /// The backoff that was slept before the respawn.
        after: Duration,
    },
}

/// Why the supervised loop returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// A step asked to stop (shutdown flag, closed channel).
    Clean,
    /// The respawn budget ran out; `detail` is the last failure.
    Exhausted {
        /// Last failure description.
        detail: String,
    },
}

impl ExitReason {
    /// Short label for logs and events.
    pub fn label(&self) -> String {
        match self {
            ExitReason::Clean => "shutdown".to_string(),
            ExitReason::Exhausted { detail } => {
                format!("respawn budget exhausted: {detail}")
            }
        }
    }
}

/// Run steps under supervision until a clean stop or budget exhaustion.
///
/// `make_step(attempt)` acquires the step's resources (attempt 0 is the
/// first spawn; ≥1 are respawns — for the recv loop, a fresh socket clone).
/// The returned closure is called repeatedly; transient errors retry it in
/// place with exponential backoff, fatal errors and panics consume the
/// respawn budget and re-run `make_step`.  `report` observes every
/// decision; `sleep` performs the backoff (injected so tests run instantly).
pub fn run_supervised<F, M, R, S>(
    policy: &SupervisePolicy,
    mut make_step: M,
    mut report: R,
    mut sleep: S,
) -> ExitReason
where
    F: FnMut() -> io::Result<StepOutcome>,
    M: FnMut(u32) -> io::Result<F>,
    R: FnMut(&SupervisionEvent),
    S: FnMut(Duration),
{
    let mut respawns = 0u32;
    'spawn: loop {
        let mut step = match make_step(respawns) {
            Ok(s) => s,
            Err(e) => {
                let ev = SupervisionEvent::Fatal { detail: e.to_string() };
                report(&ev);
                if respawns >= policy.max_respawns {
                    return ExitReason::Exhausted { detail: e.to_string() };
                }
                respawns += 1;
                let pause = policy.backoff(respawns - 1);
                sleep(pause);
                report(&SupervisionEvent::Respawned { attempt: respawns, after: pause });
                continue 'spawn;
            }
        };
        let mut transient_streak = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(&mut step)) {
                Ok(Ok(StepOutcome::Stop)) => return ExitReason::Clean,
                Ok(Ok(StepOutcome::Continue)) => {
                    transient_streak = 0;
                }
                Ok(Err(e)) => match classify(e.kind()) {
                    ErrorClass::Transient => {
                        let pause = policy.backoff(transient_streak);
                        transient_streak = transient_streak.saturating_add(1);
                        report(&SupervisionEvent::Transient {
                            detail: e.to_string(),
                            backoff: pause,
                        });
                        sleep(pause);
                    }
                    ErrorClass::Fatal => {
                        report(&SupervisionEvent::Fatal { detail: e.to_string() });
                        if respawns >= policy.max_respawns {
                            return ExitReason::Exhausted { detail: e.to_string() };
                        }
                        respawns += 1;
                        let pause = policy.backoff(respawns - 1);
                        sleep(pause);
                        report(&SupervisionEvent::Respawned {
                            attempt: respawns,
                            after: pause,
                        });
                        continue 'spawn;
                    }
                },
                Err(_panic) => {
                    let detail = "recv step panicked".to_string();
                    report(&SupervisionEvent::Fatal { detail: detail.clone() });
                    if respawns >= policy.max_respawns {
                        return ExitReason::Exhausted { detail };
                    }
                    respawns += 1;
                    let pause = policy.backoff(respawns - 1);
                    sleep(pause);
                    report(&SupervisionEvent::Respawned { attempt: respawns, after: pause });
                    continue 'spawn;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn policy() -> SupervisePolicy {
        SupervisePolicy {
            max_respawns: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
        }
    }

    #[test]
    fn classification_matches_the_issue_list() {
        assert_eq!(classify(io::ErrorKind::WouldBlock), ErrorClass::Transient);
        assert_eq!(classify(io::ErrorKind::Interrupted), ErrorClass::Transient);
        assert_eq!(classify(io::ErrorKind::ConnectionReset), ErrorClass::Transient);
        assert_eq!(classify(io::ErrorKind::PermissionDenied), ErrorClass::Fatal);
        assert_eq!(classify(io::ErrorKind::NotConnected), ErrorClass::Fatal);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy();
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(10), Duration::from_millis(80), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(80), "no shift overflow");
    }

    #[test]
    fn transient_errors_retry_in_place_with_growing_backoff() {
        let script = RefCell::new(vec![
            Err(io::Error::new(io::ErrorKind::ConnectionReset, "icmp")),
            Err(io::Error::new(io::ErrorKind::ConnectionReset, "icmp")),
            Ok(StepOutcome::Continue),
            Err(io::Error::new(io::ErrorKind::ConnectionReset, "icmp")),
            Ok(StepOutcome::Stop),
        ]);
        let mut spawns = 0;
        let mut slept = Vec::new();
        let mut events = Vec::new();
        let reason = run_supervised(
            &policy(),
            |_| {
                spawns += 1;
                Ok(|| script.borrow_mut().remove(0))
            },
            |e| events.push(e.clone()),
            |d| slept.push(d),
        );
        assert_eq!(reason, ExitReason::Clean);
        assert_eq!(spawns, 1, "transient errors never respawn");
        // Backoff grew across the first streak, then reset after success.
        assert_eq!(
            slept,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(10)
            ]
        );
        assert!(events
            .iter()
            .all(|e| matches!(e, SupervisionEvent::Transient { .. })));
    }

    #[test]
    fn panics_respawn_until_the_budget_runs_out() {
        let mut spawns = 0u32;
        let mut events = Vec::new();
        let reason = run_supervised(
            &policy(),
            |attempt| {
                spawns += 1;
                assert_eq!(attempt + 1, spawns);
                Ok(|| -> io::Result<StepOutcome> { panic!("boom") })
            },
            |e| events.push(e.clone()),
            |_| {},
        );
        // First spawn + max_respawns respawns, all panicking.
        assert_eq!(spawns, 3);
        assert!(matches!(reason, ExitReason::Exhausted { .. }));
        let respawns: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                SupervisionEvent::Respawned { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        assert_eq!(respawns, vec![1, 2]);
        assert!(reason.label().contains("panicked"));
    }

    // A panicking step must not poison the supervisor: after a respawn the
    // fresh step runs normally.
    #[test]
    fn a_respawned_step_can_recover() {
        let mut spawns = 0;
        let reason = run_supervised(
            &policy(),
            move |_| {
                spawns += 1;
                let healthy = spawns > 1;
                let mut fired = false;
                Ok(move || -> io::Result<StepOutcome> {
                    if !healthy {
                        panic!("first life dies");
                    }
                    if fired {
                        return Ok(StepOutcome::Stop);
                    }
                    fired = true;
                    Ok(StepOutcome::Continue)
                })
            },
            |_| {},
            |_| {},
        );
        assert_eq!(reason, ExitReason::Clean);
    }

    #[test]
    fn make_step_failure_consumes_the_budget() {
        let mut events = Vec::new();
        let reason = run_supervised(
            &policy(),
            |_| -> io::Result<fn() -> io::Result<StepOutcome>> {
                Err(io::Error::new(io::ErrorKind::AddrInUse, "bind failed"))
            },
            |e| events.push(e.clone()),
            |_| {},
        );
        assert!(matches!(reason, ExitReason::Exhausted { .. }));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, SupervisionEvent::Fatal { .. }))
                .count(),
            3
        );
    }
}

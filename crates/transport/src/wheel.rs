//! One-shot timer wheel for the wall-clock runtime.
//!
//! The simulator's event queue gives agents `set_timer`/`cancel_timer` for
//! free; this is the real-time equivalent: a min-heap of deadlines plus a
//! lazy cancellation set. The reactor asks for [`TimerWheel::next_deadline`]
//! to bound its socket wait, then drains [`TimerWheel::pop_expired`] after
//! every wake-up. Cancelled entries stay in the heap and are discarded when
//! they surface, so both `arm` and `cancel` are `O(log n)` with no
//! re-heapify.
//!
//! Lazy cancellation alone can leak: a cancel recorded *after* its timer
//! already fired never meets its heap entry, and under heavy churn the
//! tombstone set would grow without bound. [`TimerWheel::cancel`] therefore
//! compacts — rebuilds the heap without cancelled entries and clears the
//! set — whenever tombstones outnumber half the live heap, keeping memory
//! proportional to the number of *pending* timers at `O(n)` amortized cost.

use netsim::{SimTime, TimerId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Pending one-shot timers ordered by deadline.
///
/// Ties on the deadline fire in arming order (the id is the heap
/// tiebreaker), matching the simulator's FIFO-per-instant event order.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled: HashSet<u64>,
    next_id: u64,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a one-shot timer at absolute time `at`; `token` is handed back
    /// by [`TimerWheel::pop_expired`].
    pub fn arm(&mut self, at: SimTime, token: u64) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Reverse((at, id, token)));
        TimerId(id)
    }

    /// Cancel a pending timer; cancelling one that already fired (or was
    /// never armed here) is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
        self.maybe_compact();
    }

    /// Rebuild without tombstones once they dominate the heap. The `> 64`
    /// floor keeps small wheels on the pure-lazy fast path.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() <= 64 || self.cancelled.len() <= self.heap.len() / 2 {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        let entries = std::mem::take(&mut self.heap);
        self.heap = entries
            .into_iter()
            .filter(|Reverse((_, id, _))| !cancelled.contains(id))
            .collect();
    }

    /// Tombstones currently awaiting collection (test/diagnostic hook).
    pub fn pending_cancels(&self) -> usize {
        self.cancelled.len()
    }

    /// The earliest live deadline, if any. Pops dead (cancelled) entries
    /// encountered on the way.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(Reverse((at, id, _))) = self.heap.peek().copied() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
            } else {
                return Some(at);
            }
        }
        None
    }

    /// Pop the earliest live timer whose deadline is `<= now`, returning
    /// its token. Call in a loop to drain everything due.
    pub fn pop_expired(&mut self, now: SimTime) -> Option<u64> {
        while let Some(Reverse((at, id, token))) = self.heap.peek().copied() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if !self.cancelled.remove(&id) {
                return Some(token);
            }
        }
        None
    }

    /// Number of entries still in the heap (including not-yet-collected
    /// cancelled ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_with_fifo_ties() {
        let mut w = TimerWheel::new();
        w.arm(SimTime::from_secs(3), 30);
        w.arm(SimTime::from_secs(1), 10);
        w.arm(SimTime::from_secs(1), 11);
        let now = SimTime::from_secs(5);
        assert_eq!(w.pop_expired(now), Some(10));
        assert_eq!(w.pop_expired(now), Some(11));
        assert_eq!(w.pop_expired(now), Some(30));
        assert_eq!(w.pop_expired(now), None);
    }

    #[test]
    fn respects_now_boundary() {
        let mut w = TimerWheel::new();
        w.arm(SimTime::from_secs(2), 7);
        assert_eq!(w.pop_expired(SimTime::from_secs(1)), None);
        assert_eq!(w.pop_expired(SimTime::from_secs(2)), Some(7));
    }

    #[test]
    fn cancellation_is_lazy_but_effective() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_secs(1), 1);
        w.arm(SimTime::from_secs(2), 2);
        w.cancel(a);
        assert_eq!(w.len(), 2, "cancelled entry collected lazily");
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(2)));
        assert_eq!(w.pop_expired(SimTime::from_secs(9)), Some(2));
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_secs(1), 1);
        assert_eq!(w.pop_expired(SimTime::from_secs(1)), Some(1));
        w.cancel(a);
        w.arm(SimTime::from_secs(2), 2);
        assert_eq!(w.pop_expired(SimTime::from_secs(3)), Some(2));
    }

    #[test]
    fn churn_does_not_grow_tombstones_unboundedly() {
        let mut w = TimerWheel::new();
        // Arm-fire-cancel churn: every cancel lands after its timer fired,
        // so pure lazy collection would never reclaim a single tombstone.
        for i in 0..10_000u64 {
            let id = w.arm(SimTime::from_secs(i), i);
            assert_eq!(w.pop_expired(SimTime::from_secs(i)), Some(i));
            w.cancel(id);
        }
        assert!(w.pending_cancels() <= 128, "tombstones reclaimed: {}", w.pending_cancels());
        assert!(w.is_empty());
    }

    #[test]
    fn compaction_preserves_live_timers() {
        let mut w = TimerWheel::new();
        let keep = w.arm(SimTime::from_secs(500), 999);
        let mut dead = Vec::new();
        for i in 0..200u64 {
            dead.push(w.arm(SimTime::from_secs(i), i));
        }
        for id in dead {
            w.cancel(id);
        }
        // Compaction keeps tombstones under the 64-entry floor rather than
        // chasing zero; the point is the heap no longer holds all 200.
        assert!(w.pending_cancels() <= 64, "tombstones: {}", w.pending_cancels());
        assert!(w.len() <= 1 + 2 * 64, "heap bounded: {}", w.len());
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(500)));
        assert_eq!(w.pop_expired(SimTime::from_secs(500)), Some(999));
        w.cancel(keep);
        assert!(w.is_empty());
    }
}

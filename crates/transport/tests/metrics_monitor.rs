//! End-to-end check of the observability tentpole: a passive
//! [`GroupMonitor`] watching a real loopback mesh must reconstruct
//! per-member lag that matches sender-side ground truth after a
//! drop-and-repair episode, and flip a stopped member to suspect/dead from
//! session silence alone — while the live [`obs::MetricsRegistry`] on one
//! node records the transport's side of the same story.

use bytes::Bytes;
use netsim::GroupId;
use srm_transport::{Envelope, GroupMonitor, LossPolicy, Mode, Node, NodeHandle, WallClock};
use srm_transport::NodeOptions;
use srm::{LivenessConfig, PageId, PeerState, SeqNo, SourceId, SrmConfig};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Pump every datagram the monitor socket has received into the monitor,
/// then sweep.  Returns when `done` says so or after `budget`.
fn observe_until(
    socket: &UdpSocket,
    clock: &WallClock,
    mon: &mut GroupMonitor,
    budget: Duration,
    group: u32,
    mut done: impl FnMut(&GroupMonitor) -> bool,
) {
    let deadline = Instant::now() + budget;
    let mut buf = [0u8; 65_535];
    let mut last_sweep = Instant::now();
    while Instant::now() < deadline {
        match socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                if let Ok(env) = Envelope::decode(&buf[..n]) {
                    if env.group == group {
                        if let Ok(msg) = srm::Message::decode(env.payload.clone()) {
                            mon.observe(clock.now(), &msg);
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("monitor recv: {e}"),
        }
        if last_sweep.elapsed() >= Duration::from_millis(250) {
            last_sweep = Instant::now();
            mon.sweep(clock.now());
        }
        if done(mon) {
            return;
        }
    }
}

#[test]
fn passive_monitor_matches_sender_ground_truth_and_detects_death() {
    // Four pre-bound sockets: three members and the silent monitor.
    let socks: Vec<UdpSocket> =
        (0..4).map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<SocketAddr> = socks.iter().map(|s| s.local_addr().unwrap()).collect();
    let cfg = SrmConfig::fixed(3);
    let registry = obs::MetricsRegistry::new();

    let mut nodes: Vec<NodeHandle> = Vec::new();
    for i in 0..3usize {
        // Peer list: the other two members first, the monitor last — the
        // ordering matters for the drop rules below.
        let peers: Vec<SocketAddr> = (0..3)
            .filter(|&j| j != i)
            .map(|j| addrs[j])
            .chain(std::iter::once(addrs[3]))
            .collect();
        let mut opts = NodeOptions::new(SourceId(i as u64 + 1), GroupId(1), cfg.clone());
        opts.seed = 42 + i as u64;
        if i == 0 {
            // Drop the first ADU's DATA copies to both member peers (sends
            // replicate per peer in list order), forcing session-driven
            // loss detection and repair.  The monitor's copy is spared so
            // ground truth (seq 1 exists) reaches it either way.
            opts.loss = LossPolicy::none()
                .drop_nth(netsim::flow::DATA, 0)
                .drop_nth(netsim::flow::DATA, 1);
            opts.metrics = Some(registry.clone());
            opts.trace = true;
            opts.trace_capacity = Some(4096);
        }
        let sock = socks[i].try_clone().expect("clone");
        nodes.push(Node::spawn_on(sock, Mode::Mesh { peers }, opts).expect("spawn"));
    }

    // Member 1 publishes two ADUs; the first is dropped to members 2 and 3.
    // The whiteboard model: every member views the sender's page, so their
    // session messages report its state (that report is what the monitor
    // reads lag from — and what drives the members' own gap detection).
    let page = PageId::new(SourceId(1), 0);
    for node in &nodes[1..] {
        node.exec(move |a, _| a.set_current_page(page));
    }
    nodes[0].send_data(page, Bytes::from_static(b"first (dropped)"));
    nodes[0].send_data(page, Bytes::from_static(b"second"));

    let clock = WallClock::new();
    let mut mon = GroupMonitor::new(
        &cfg,
        // Tight thresholds so the death phase fits a test budget; nominal
        // interval floors at 1s for this group size.
        LivenessConfig { suspect_after: 1.5, dead_after: 3.0 },
    );
    socks[3]
        .set_read_timeout(Some(Duration::from_millis(25)))
        .expect("read timeout");

    // Phase 1: everyone alive and fully repaired.  Ground truth: the flow
    // (page 1.0, source 1) tops out at seq 1, and after repair every
    // member's reported state reaches it — lag 0 across the group.
    let flow = (page, SourceId(1));
    observe_until(&socks[3], &clock, &mut mon, Duration::from_secs(20), 1, |m| {
        let h = m.health(clock.now());
        h.len() == 3
            && h.iter().all(|e| {
                e.state == PeerState::Alive
                    && e.lag.get(&flow) == Some(&0)
                    && e.sessions_heard >= 2
            })
    });
    let health = mon.health(clock.now());
    assert_eq!(health.len(), 3, "monitor heard all three members");
    for h in &health {
        assert_eq!(h.state, PeerState::Alive, "m{} alive", h.member.0);
        assert_eq!(
            h.lag.get(&flow),
            Some(&0),
            "m{} caught up after drop-and-repair",
            h.member.0
        );
    }
    // The monitor's reconstruction agrees with sender-side ground truth:
    // both ADUs reach every member.  Lag-by-highest-seq hits 0 as soon as
    // the second ADU lands, so the seq-0 repair may still be in flight —
    // give it its own budget.
    for node in &nodes[1..] {
        let mut delivered = Vec::new();
        let wait = Instant::now();
        while delivered.len() < 2 && wait.elapsed() < Duration::from_secs(20) {
            delivered.extend(node.take_delivered());
            std::thread::sleep(Duration::from_millis(25));
        }
        assert_eq!(delivered.len(), 2, "both ADUs delivered");
        assert!(delivered.iter().any(|d| d.via_repair), "one arrived as a repair");
    }
    let truth: Vec<Option<SeqNo>> = nodes
        .iter()
        .map(|n| n.exec(move |a, _| a.store().page_state(page).into_iter().find(|s| s.0 == SourceId(1)).map(|s| s.1)))
        .collect();
    for (i, t) in truth.iter().enumerate() {
        assert_eq!(*t, Some(SeqNo(1)), "member {} store tops at seq 1", i + 1);
    }

    // The sender's live registry saw the same run: data out, sessions both
    // ways, and a timer wheel that did real work.
    let snap1 = registry.snapshot();
    assert!(snap1.counters["tx.frames.data"] >= 2, "two ADUs left member 1");
    assert!(snap1.counters["tx.frames.session"] >= 1);
    assert!(snap1.counters["rx.frames.session"] >= 1);
    assert_eq!(snap1.counters["rx.decode_errors"], 0);
    assert!(snap1.gauges["wheel.high_water"] >= 1);
    assert!(snap1.hists["stage.handle_s"].count() >= 1);

    // Phase 2: member 3 leaves without a word; silence alone must flip it
    // suspect and then dead while the chatty members stay alive.
    nodes.pop().unwrap().shutdown();
    observe_until(&socks[3], &clock, &mut mon, Duration::from_secs(8), 1, |m| {
        m.state(SourceId(3)) == PeerState::Dead
    });
    assert_eq!(mon.state(SourceId(3)), PeerState::Dead, "silent member declared dead");
    assert_eq!(mon.state(SourceId(1)), PeerState::Alive);
    assert_eq!(mon.state(SourceId(2)), PeerState::Alive);
    let dead_row = mon
        .health(clock.now())
        .into_iter()
        .find(|h| h.member == SourceId(3))
        .expect("member 3 still reported");
    assert_eq!(dead_row.state, PeerState::Dead);

    // Snapshot delta across the two phases stays monotone and rate-able.
    let snap2 = registry.snapshot();
    let delta = snap2.delta_since(&snap1);
    assert!(delta.counters.values().all(|&v| v < u64::MAX / 2), "no underflow");
    assert!(snap2.counters["frames.attempted"] >= snap1.counters["frames.attempted"]);

    for node in nodes {
        node.shutdown();
    }
}

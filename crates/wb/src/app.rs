//! The wb application: a whiteboard member driving an SRM agent
//! (Section III-E, "Wb's Instantiation of SRM").

use crate::drawop::{DrawOp, OpKind};
use crate::whiteboard::Whiteboard;
use netsim::{Application, Ctx, GroupId, Packet, SimTime};
use srm::{AduName, PageId, SourceId, SrmAgent, SrmConfig};

/// wb 1.59's SRM profile: fixed `[c, 2c]` request timers with c = 30 ms and
/// `[d, 2d]` repair timers with d = 100 ms at the source / 200 ms elsewhere
/// (Section III-E). "These fixed values … were chosen after examinations of
/// traces taken over several typical wide-area wb sessions."
pub fn wb159_config() -> SrmConfig {
    SrmConfig {
        fixed_intervals: Some(srm::config::FixedIntervals::wb159()),
        ..SrmConfig::default()
    }
}

/// The full SRM framework profile for wb (distance-scaled adaptive timers —
/// "the design" rather than the 1.59 implementation).
pub fn wb_design_config(group_size: usize) -> SrmConfig {
    SrmConfig::adaptive(group_size)
}

/// A whiteboard session member: an [`SrmAgent`] plus the local canvas.
pub struct WbApp {
    /// The SRM engine.
    pub agent: SrmAgent,
    /// The rendered whiteboard state.
    pub board: Whiteboard,
    /// Drawops that failed integrity checks (never rendered).
    pub corrupt_ops: u64,
    next_page: u32,
}

impl WbApp {
    /// A member with the given persistent Source-ID.
    pub fn new(id: SourceId, group: GroupId, cfg: SrmConfig) -> Self {
        WbApp {
            agent: SrmAgent::new(id, group, cfg),
            board: Whiteboard::new(),
            corrupt_ops: 0,
            next_page: 0,
        }
    }

    /// This member's Source-ID.
    pub fn id(&self) -> SourceId {
        self.agent.id
    }

    /// Create a new page owned by this member ("a new page can correspond
    /// to a new viewgraph in a talk") and start viewing it.
    pub fn create_page(&mut self) -> PageId {
        let page = PageId::new(self.agent.id, self.next_page);
        self.next_page += 1;
        self.agent.set_current_page(page);
        page
    }

    /// Switch the page being viewed (session messages report this page).
    pub fn view_page(&mut self, page: PageId) {
        self.agent.set_current_page(page);
    }

    /// Draw on a page: timestamps, encodes, stores, and multicasts the op.
    /// Returns the drawop's persistent name. The op is applied locally
    /// immediately ("drawing operations … are rendered immediately").
    pub fn draw(&mut self, ctx: &mut Ctx<'_>, page: PageId, kind: OpKind) -> AduName {
        let op = DrawOp {
            timestamp: ctx.now,
            kind,
        };
        let name = self.agent.send_data(ctx, page, op.encode());
        self.board.apply(name, op);
        name
    }

    /// Delete an earlier drawop by name.
    pub fn delete(&mut self, ctx: &mut Ctx<'_>, target: AduName) -> AduName {
        self.draw(ctx, target.page, OpKind::Delete { target })
    }

    /// Ask the session for the state of `page` (late joiner obtaining "the
    /// session's history from the network").
    pub fn fetch_page(&mut self, ctx: &mut Ctx<'_>, page: PageId) {
        self.agent.request_page_state(ctx, page);
    }

    /// Fetch the whole session history: ask for the page catalog, then (as
    /// catalogs arrive) the state of every discovered page — "A user will
    /// often quit a session and later re-join, obtaining the session's
    /// history from the network" (Section II-C).
    pub fn fetch_history(&mut self, ctx: &mut Ctx<'_>) {
        self.agent.request_page_catalog(ctx);
    }

    /// Drain the agent's deliveries into the canvas and chase any newly
    /// discovered pages.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for d in self.agent.take_delivered() {
            match DrawOp::decode(d.payload) {
                Ok(op) => self.board.apply(d.name, op),
                Err(_) => self.corrupt_ops += 1,
            }
        }
        for page in self.agent.take_discovered_pages() {
            self.agent.request_page_state(ctx, page);
        }
    }
}

impl Application for WbApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.agent.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        self.agent.on_packet(ctx, pkt);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.agent.on_timer(ctx, token);
        self.pump(ctx);
    }
}

/// A convenience for tests and examples: build a drawop timestamped `now`.
pub fn op_at(now: SimTime, kind: OpKind) -> DrawOp {
    DrawOp {
        timestamp: now,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawop::{Color, Point};
    use netsim::generators::star;
    use netsim::loss::OneShotLinkDrop;
    use netsim::{flow, NodeId, SimDuration, Simulator};

    const GROUP: GroupId = GroupId(3);

    fn star_session(leaves: usize) -> Simulator<WbApp> {
        let topo = star(leaves);
        let mut sim = Simulator::new(topo, 21);
        for i in 1..=leaves {
            let mut app = WbApp::new(SourceId(i as u64), GROUP, wb159_config());
            app.agent.session_enabled = false;
            for j in 1..=leaves {
                if i != j {
                    app.agent
                        .distances_mut()
                        .set_distance(SourceId(j as u64), SimDuration::from_secs(2));
                }
            }
            sim.install(NodeId(i as u32), app);
            sim.join(NodeId(i as u32), GROUP);
        }
        sim
    }

    fn blue_line() -> OpKind {
        OpKind::Line {
            from: Point { x: 0, y: 0 },
            to: Point { x: 5, y: 5 },
            color: Color::BLUE,
        }
    }

    #[test]
    fn drawing_propagates_to_all_members() {
        let mut sim = star_session(4);
        let page = sim.exec(NodeId(1), |app, ctx| {
            let page = app.create_page();
            app.draw(ctx, page, blue_line());
            page
        });
        sim.run_until_idle(netsim::SimTime::from_secs(60));
        for i in 2..=4u32 {
            let app = sim.app(NodeId(i)).unwrap();
            let canvas = app.board.page(&page).expect("page known");
            assert_eq!(canvas.render().len(), 1, "member {i}");
        }
    }

    #[test]
    fn boards_converge_after_loss_recovery() {
        let mut sim = star_session(5);
        // Drop the first drawop toward member 3's access link.
        let hub = NodeId(0);
        let l3 = sim.topology().link_between(hub, NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l3, NodeId(1), flow::DATA)));
        let page = sim.exec(NodeId(1), |app, ctx| {
            let page = app.create_page();
            app.draw(ctx, page, blue_line());
            page
        });
        sim.run_until(netsim::SimTime::from_secs(5));
        // A second op exposes the gap for member 3.
        sim.exec(NodeId(1), |app, ctx| {
            app.draw(
                ctx,
                page,
                OpKind::Circle {
                    center: Point { x: 9, y: 9 },
                    radius: 4,
                    color: Color::RED,
                },
            );
        });
        assert!(sim.run_until_idle(netsim::SimTime::from_secs(600)));
        let digests: Vec<u64> = (1..=5u32)
            .map(|i| sim.app(NodeId(i)).unwrap().board.digest())
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "all boards identical after recovery: {digests:?}"
        );
        let c = sim.app(NodeId(3)).unwrap().board.page(&page).unwrap();
        assert_eq!(c.render().len(), 2);
    }

    #[test]
    fn blue_line_becomes_red_circle_everywhere() {
        // The paper's canonical example: delete floyd:5, then draw the
        // circle; every member converges to just the circle.
        let mut sim = star_session(3);
        let (page, line_name) = sim.exec(NodeId(1), |app, ctx| {
            let page = app.create_page();
            let n = app.draw(ctx, page, blue_line());
            (page, n)
        });
        sim.run_until(netsim::SimTime::from_secs(10));
        sim.exec(NodeId(1), |app, ctx| {
            app.delete(ctx, line_name);
            app.draw(
                ctx,
                page,
                OpKind::Circle {
                    center: Point { x: 2, y: 2 },
                    radius: 3,
                    color: Color::RED,
                },
            );
        });
        assert!(sim.run_until_idle(netsim::SimTime::from_secs(60)));
        for i in 1..=3u32 {
            let app = sim.app(NodeId(i)).unwrap();
            let render = app
                .board
                .page(&page)
                .unwrap()
                .render()
                .iter()
                .map(|(_, op)| op.kind.clone())
                .collect::<Vec<_>>();
            assert_eq!(render.len(), 1, "member {i}");
            assert!(matches!(render[0], OpKind::Circle { .. }));
        }
    }

    #[test]
    fn concurrent_page_creation_never_collides() {
        // Two members create their "page 0" simultaneously: Page-IDs are
        // (creator, local number), so both pages exist independently and
        // everyone converges on both ("each page is identified by a
        // Page-ID consisting of the Source-ID of the initiator … and a
        // page number locally unique to that initiator").
        let mut sim = star_session(3);
        let (pa, pb) = {
            let pa = sim.exec(NodeId(1), |app, ctx| {
                let p = app.create_page();
                app.draw(ctx, p, blue_line());
                p
            });
            let pb = sim.exec(NodeId(2), |app, ctx| {
                let p = app.create_page();
                app.draw(ctx, p, blue_line());
                app.draw(ctx, p, blue_line());
                p
            });
            (pa, pb)
        };
        assert_ne!(pa, pb, "same local number, different creators");
        assert_eq!(pa.number, pb.number);
        assert!(sim.run_until_idle(netsim::SimTime::from_secs(120)));
        for i in 1..=3u32 {
            let app = sim.app(NodeId(i)).unwrap();
            assert_eq!(app.board.page(&pa).unwrap().render().len(), 1, "m{i}");
            assert_eq!(app.board.page(&pb).unwrap().render().len(), 2, "m{i}");
        }
    }

    #[test]
    fn blank_late_joiner_discovers_pages_via_catalog() {
        // A truly blank member (knows nothing, not even page ids) fetches
        // the whole history: catalog request → catalog → page requests →
        // session-state replies → loss recovery of every drawop.
        let mut sim = star_session(3);
        let (p1, p2) = sim.exec(NodeId(1), |app, ctx| {
            let p1 = app.create_page();
            app.draw(ctx, p1, blue_line());
            let p2 = app.create_page();
            app.draw(ctx, p2, blue_line());
            app.draw(ctx, p2, blue_line());
            (p1, p2)
        });
        sim.run_until_idle(netsim::SimTime::from_secs(60));
        // A brand-new member appears on leaf 3's seat... use a fresh app on
        // an unused leaf: star_session(3) has leaves 1..=3; reuse 3 wiped.
        let mut fresh = WbApp::new(SourceId(9), GROUP, wb159_config());
        fresh.agent.session_enabled = false;
        for j in 1..=2u64 {
            fresh
                .agent
                .distances_mut()
                .set_distance(SourceId(j), SimDuration::from_secs(2));
        }
        sim.install(NodeId(3), fresh);
        sim.exec(NodeId(3), |app, ctx| app.fetch_history(ctx));
        assert!(sim.run_until_idle(netsim::SimTime::from_secs(5000)));
        let app = sim.app(NodeId(3)).unwrap();
        assert_eq!(app.board.page(&p1).map(|c| c.render().len()), Some(1));
        assert_eq!(app.board.page(&p2).map(|c| c.render().len()), Some(2));
        assert_eq!(app.board.page_count(), 2);
    }

    #[test]
    fn late_joiner_fetches_history() {
        let mut sim = star_session(4);
        let page = sim.exec(NodeId(1), |app, ctx| {
            let page = app.create_page();
            app.draw(ctx, page, blue_line());
            page
        });
        sim.run_until_idle(netsim::SimTime::from_secs(30));
        // Member 4 "restarts": wipe its board and agent store by installing
        // a fresh app, then fetch the page.
        let mut fresh = WbApp::new(SourceId(4), GROUP, wb159_config());
        fresh.agent.session_enabled = false;
        for j in 1..=3u64 {
            fresh
                .agent
                .distances_mut()
                .set_distance(SourceId(j), SimDuration::from_secs(2));
        }
        sim.install(NodeId(4), fresh);
        sim.exec(NodeId(4), |app, ctx| {
            app.fetch_page(ctx, page);
        });
        assert!(sim.run_until_idle(netsim::SimTime::from_secs(600)));
        let app = sim.app(NodeId(4)).unwrap();
        assert_eq!(
            app.board.page(&page).map(|c| c.render().len()),
            Some(1),
            "history recovered via page request + loss recovery"
        );
    }
}

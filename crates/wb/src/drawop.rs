//! Drawing operations (Section II-C).
//!
//! "Each member drawing on the whiteboard produces a stream of drawing
//! operations, or drawops, that are timestamped and assigned sequence
//! numbers relative to the sender." Most drawops are idempotent and render
//! immediately on receipt; out-of-order arrivals are sorted by timestamp.
//! Deletes — which reference an earlier drawop by name — are "patched after
//! the fact, when the missing data arrives".
//!
//! Each encoded drawop carries an integrity tag (Section III-E warns that
//! corrupt data "can spread like a virus throughout the wb session" when
//! used to answer repairs), here an FNV-1a checksum standing in for the
//! paper's cryptographic signature.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim::SimTime;
use srm::{AduName, PageId, SeqNo, SourceId};
use std::fmt;

/// A point in whiteboard coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point {
    /// Horizontal position.
    pub x: i32,
    /// Vertical position.
    pub y: i32,
}

/// An RGB color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
}

impl Color {
    /// The paper's favorite example color.
    pub const BLUE: Color = Color { r: 0, g: 0, b: 255 };
    /// Red, for the circle that replaces the blue line.
    pub const RED: Color = Color { r: 255, g: 0, b: 0 };
    /// Black.
    pub const BLACK: Color = Color { r: 0, g: 0, b: 0 };
}

/// The drawable kinds of operation.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// A line segment ("a drawop to draw a blue line at a particular set of
    /// coordinates on a page").
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Stroke color.
        color: Color,
    },
    /// A circle.
    Circle {
        /// Center.
        center: Point,
        /// Radius.
        radius: u32,
        /// Stroke color.
        color: Color,
    },
    /// A text annotation.
    Text {
        /// Anchor point.
        at: Point,
        /// The text.
        text: String,
        /// Text color.
        color: Color,
    },
    /// Delete an earlier drawop by its persistent name ("to change a blue
    /// line to a red circle, a delete drawop for floyd:5 is sent, then a
    /// drawop for the circle").
    Delete {
        /// The drawop to remove.
        target: AduName,
    },
    /// An axis-aligned rectangle outline.
    Rect {
        /// One corner.
        a: Point,
        /// The opposite corner.
        b: Point,
        /// Stroke color.
        color: Color,
    },
    /// Free-hand drawing: a connected polyline ("one could send line
    /// drawings at 50 points/s for good interactive performance",
    /// Section IX-C).
    Polyline {
        /// The stroke's points, in drawing order.
        points: Vec<Point>,
        /// Stroke color.
        color: Color,
    },
}

/// A timestamped drawing operation — wb's ADU payload.
#[derive(Clone, Debug, PartialEq)]
pub struct DrawOp {
    /// Drawing time at the author, used to sort out-of-order arrivals.
    pub timestamp: SimTime,
    /// What to draw (or delete).
    pub kind: OpKind,
}

/// Decoding failure for a drawop payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrawOpError {
    /// Payload ended early.
    Truncated,
    /// Unknown kind tag.
    BadTag(u8),
    /// The integrity tag did not match — corrupt data must not be rendered
    /// or used to answer repairs.
    BadChecksum,
    /// Text was not valid UTF-8.
    BadText,
}

impl fmt::Display for DrawOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrawOpError::Truncated => write!(f, "drawop truncated"),
            DrawOpError::BadTag(t) => write!(f, "unknown drawop tag {t}"),
            DrawOpError::BadChecksum => write!(f, "drawop integrity check failed"),
            DrawOpError::BadText => write!(f, "drawop text not UTF-8"),
        }
    }
}

impl std::error::Error for DrawOpError {}

const TAG_LINE: u8 = 1;
const TAG_CIRCLE: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_RECT: u8 = 5;
const TAG_POLYLINE: u8 = 6;

/// Refuse polylines longer than this when decoding (corruption guard).
const MAX_POLYLINE: usize = 1 << 16;

impl DrawOp {
    /// Encode to an ADU payload, appending the integrity tag.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64(self.timestamp.as_nanos());
        match &self.kind {
            OpKind::Line { from, to, color } => {
                b.put_u8(TAG_LINE);
                put_point(&mut b, from);
                put_point(&mut b, to);
                put_color(&mut b, color);
            }
            OpKind::Circle {
                center,
                radius,
                color,
            } => {
                b.put_u8(TAG_CIRCLE);
                put_point(&mut b, center);
                b.put_u32(*radius);
                put_color(&mut b, color);
            }
            OpKind::Text { at, text, color } => {
                b.put_u8(TAG_TEXT);
                put_point(&mut b, at);
                put_color(&mut b, color);
                b.put_u32(text.len() as u32);
                b.put_slice(text.as_bytes());
            }
            OpKind::Delete { target } => {
                b.put_u8(TAG_DELETE);
                b.put_u64(target.source.0);
                b.put_u64(target.page.creator.0);
                b.put_u32(target.page.number);
                b.put_u64(target.seq.0);
            }
            OpKind::Rect { a, b: corner, color } => {
                b.put_u8(TAG_RECT);
                put_point(&mut b, a);
                put_point(&mut b, corner);
                put_color(&mut b, color);
            }
            OpKind::Polyline { points, color } => {
                b.put_u8(TAG_POLYLINE);
                put_color(&mut b, color);
                b.put_u32(points.len() as u32);
                for p in points {
                    put_point(&mut b, p);
                }
            }
        }
        let sum = fnv1a(&b);
        b.put_u64(sum);
        b.freeze()
    }

    /// Decode and verify an ADU payload.
    pub fn decode(mut buf: Bytes) -> Result<DrawOp, DrawOpError> {
        if buf.len() < 8 + 1 + 8 {
            return Err(DrawOpError::Truncated);
        }
        // Verify the trailing checksum over everything before it.
        let body = buf.slice(0..buf.len() - 8);
        let expect = (&buf[buf.len() - 8..]).get_u64();
        if fnv1a(&body) != expect {
            return Err(DrawOpError::BadChecksum);
        }
        buf.truncate(body.len());
        let timestamp = SimTime::from_secs_f64(buf.get_u64() as f64 / 1e9);
        let tag = buf.get_u8();
        let kind = match tag {
            TAG_LINE => {
                need(&buf, 16 + 3)?;
                OpKind::Line {
                    from: get_point(&mut buf),
                    to: get_point(&mut buf),
                    color: get_color(&mut buf),
                }
            }
            TAG_CIRCLE => {
                need(&buf, 8 + 4 + 3)?;
                OpKind::Circle {
                    center: get_point(&mut buf),
                    radius: buf.get_u32(),
                    color: get_color(&mut buf),
                }
            }
            TAG_TEXT => {
                need(&buf, 8 + 3 + 4)?;
                let at = get_point(&mut buf);
                let color = get_color(&mut buf);
                let len = buf.get_u32() as usize;
                need(&buf, len)?;
                let text = String::from_utf8(buf.split_to(len).to_vec())
                    .map_err(|_| DrawOpError::BadText)?;
                OpKind::Text { at, text, color }
            }
            TAG_DELETE => {
                need(&buf, 28)?;
                OpKind::Delete {
                    target: AduName::new(
                        SourceId(buf.get_u64()),
                        PageId::new(SourceId(buf.get_u64()), buf.get_u32()),
                        SeqNo(buf.get_u64()),
                    ),
                }
            }
            TAG_RECT => {
                need(&buf, 16 + 3)?;
                OpKind::Rect {
                    a: get_point(&mut buf),
                    b: get_point(&mut buf),
                    color: get_color(&mut buf),
                }
            }
            TAG_POLYLINE => {
                need(&buf, 3 + 4)?;
                let color = get_color(&mut buf);
                let n = buf.get_u32() as usize;
                if n > MAX_POLYLINE {
                    return Err(DrawOpError::Truncated);
                }
                need(&buf, n * 8)?;
                let points = (0..n).map(|_| get_point(&mut buf)).collect();
                OpKind::Polyline { points, color }
            }
            t => return Err(DrawOpError::BadTag(t)),
        };
        Ok(DrawOp { timestamp, kind })
    }

    /// Whether this op is a delete (the non-idempotent, patched case).
    pub fn is_delete(&self) -> bool {
        matches!(self.kind, OpKind::Delete { .. })
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), DrawOpError> {
    if buf.len() < n {
        Err(DrawOpError::Truncated)
    } else {
        Ok(())
    }
}

fn put_point(b: &mut BytesMut, p: &Point) {
    b.put_i32(p.x);
    b.put_i32(p.y);
}

fn get_point(buf: &mut Bytes) -> Point {
    Point {
        x: buf.get_i32(),
        y: buf.get_i32(),
    }
}

fn put_color(b: &mut BytesMut, c: &Color) {
    b.put_u8(c.r);
    b.put_u8(c.g);
    b.put_u8(c.b);
}

fn get_color(buf: &mut Bytes) -> Color {
    Color {
        r: buf.get_u8(),
        g: buf.get_u8(),
        b: buf.get_u8(),
    }
}

/// FNV-1a over a byte slice (the integrity tag).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> DrawOp {
        DrawOp {
            timestamp: SimTime::from_secs_f64(1.5),
            kind: OpKind::Line {
                from: Point { x: 0, y: 0 },
                to: Point { x: 10, y: -20 },
                color: Color::BLUE,
            },
        }
    }

    #[test]
    fn line_roundtrip() {
        let op = line();
        assert_eq!(DrawOp::decode(op.encode()).unwrap(), op);
    }

    #[test]
    fn circle_and_text_roundtrip() {
        let c = DrawOp {
            timestamp: SimTime::from_secs(2),
            kind: OpKind::Circle {
                center: Point { x: 5, y: 5 },
                radius: 9,
                color: Color::RED,
            },
        };
        assert_eq!(DrawOp::decode(c.encode()).unwrap(), c);
        let t = DrawOp {
            timestamp: SimTime::from_secs(3),
            kind: OpKind::Text {
                at: Point { x: 1, y: 2 },
                text: "sigcomm-slides.ps sector 5".into(),
                color: Color::BLACK,
            },
        };
        assert_eq!(DrawOp::decode(t.encode()).unwrap(), t);
    }

    #[test]
    fn delete_roundtrip() {
        let d = DrawOp {
            timestamp: SimTime::from_secs(4),
            kind: OpKind::Delete {
                target: AduName::new(
                    SourceId(5),
                    PageId::new(SourceId(5), 2),
                    SeqNo(5),
                ),
            },
        };
        assert_eq!(DrawOp::decode(d.encode()).unwrap(), d);
        assert!(d.is_delete());
        assert!(!line().is_delete());
    }

    #[test]
    fn rect_and_polyline_roundtrip() {
        let r = DrawOp {
            timestamp: SimTime::from_secs(5),
            kind: OpKind::Rect {
                a: Point { x: -3, y: 2 },
                b: Point { x: 10, y: 20 },
                color: Color::BLUE,
            },
        };
        assert_eq!(DrawOp::decode(r.encode()).unwrap(), r);
        let p = DrawOp {
            timestamp: SimTime::from_secs(6),
            kind: OpKind::Polyline {
                points: vec![
                    Point { x: 0, y: 0 },
                    Point { x: 3, y: 1 },
                    Point { x: 5, y: -2 },
                ],
                color: Color::RED,
            },
        };
        assert_eq!(DrawOp::decode(p.encode()).unwrap(), p);
        // Empty stroke is legal.
        let e = DrawOp {
            timestamp: SimTime::from_secs(7),
            kind: OpKind::Polyline {
                points: vec![],
                color: Color::BLACK,
            },
        };
        assert_eq!(DrawOp::decode(e.encode()).unwrap(), e);
    }

    #[test]
    fn corruption_is_detected() {
        let enc = line().encode();
        for i in 0..enc.len() {
            let mut bad = enc.to_vec();
            bad[i] ^= 0xff;
            let r = DrawOp::decode(Bytes::from(bad));
            assert!(r.is_err(), "flipping byte {i} must not decode cleanly");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let enc = line().encode();
        for cut in 0..enc.len() {
            assert!(DrawOp::decode(enc.slice(0..cut)).is_err());
        }
    }
}

//! # wb — a distributed whiteboard on SRM
//!
//! The application the SRM paper was built around (Sections II-C and
//! III-E): a shared whiteboard where every member can create pages and
//! draw, drawing operations are idempotent timestamped ADUs with unique
//! persistent names, and reliability comes entirely from the SRM framework
//! underneath.
//!
//! - [`drawop`]: the drawop ADU payloads (lines, circles, text, deletes)
//!   with an integrity tag;
//! - [`whiteboard`]: the converging canvas state — render order by
//!   timestamp, deletes applied as patches;
//! - [`app`]: [`WbApp`], an SRM agent plus canvas implementing
//!   [`netsim::Application`], with the wb-1.59 fixed-timer profile and the
//!   paper's "design" profile (distance-scaled adaptive timers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod drawop;
pub mod render;
pub mod whiteboard;

pub use app::{wb159_config, wb_design_config, WbApp};
pub use drawop::{Color, DrawOp, DrawOpError, OpKind, Point};
pub use render::{render_page, Raster};
pub use whiteboard::{PageCanvas, Whiteboard};

//! A tiny ASCII rasterizer for whiteboard pages.
//!
//! wb's drawops are resolution-independent; this module rasterizes a
//! [`PageCanvas`] onto a character grid so examples and tests can *see*
//! (and diff) a page. Lines use Bresenham's algorithm, circles the
//! midpoint algorithm, text is placed literally. Render order follows
//! [`PageCanvas::render`], so two converged members rasterize identically.

use crate::drawop::{OpKind, Point};
use crate::whiteboard::PageCanvas;

/// A fixed-size character raster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Raster {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl Raster {
    /// A blank raster of `width` × `height` characters.
    pub fn new(width: usize, height: usize) -> Self {
        Raster {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Raster width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The character at (x, y); `None` outside the raster.
    pub fn at(&self, x: i32, y: i32) -> Option<char> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            None
        } else {
            Some(self.cells[y as usize * self.width + x as usize])
        }
    }

    fn put(&mut self, x: i32, y: i32, c: char) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.cells[y as usize * self.width + x as usize] = c;
        }
    }

    /// Count of non-blank cells.
    pub fn ink(&self) -> usize {
        self.cells.iter().filter(|&&c| c != ' ').count()
    }

    /// Render to a newline-joined string (with a border).
    pub fn to_string_framed(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        let bar = || format!("+{}+\n", "-".repeat(self.width));
        out.push_str(&bar());
        for row in 0..self.height {
            out.push('|');
            for col in 0..self.width {
                out.push(self.cells[row * self.width + col]);
            }
            out.push_str("|\n");
        }
        out.push_str(&bar());
        out
    }

    /// Draw a Bresenham line.
    pub fn line(&mut self, from: Point, to: Point, c: char) {
        let (mut x0, mut y0, x1, y1) = (from.x, from.y, to.x, to.y);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.put(x0, y0, c);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Draw a midpoint circle.
    pub fn circle(&mut self, center: Point, radius: u32, c: char) {
        if radius == 0 {
            self.put(center.x, center.y, c);
            return;
        }
        let r = radius as i32;
        let (cx, cy) = (center.x, center.y);
        let mut x = r;
        let mut y = 0;
        let mut err = 1 - r;
        while x >= y {
            for (px, py) in [
                (cx + x, cy + y),
                (cx - x, cy + y),
                (cx + x, cy - y),
                (cx - x, cy - y),
                (cx + y, cy + x),
                (cx - y, cy + x),
                (cx + y, cy - x),
                (cx - y, cy - x),
            ] {
                self.put(px, py, c);
            }
            y += 1;
            if err < 0 {
                err += 2 * y + 1;
            } else {
                x -= 1;
                err += 2 * (y - x) + 1;
            }
        }
    }

    /// Place text starting at `at`.
    pub fn text(&mut self, at: Point, s: &str) {
        for (i, ch) in s.chars().enumerate() {
            self.put(at.x + i as i32, at.y, ch);
        }
    }
}

/// Rasterize a page's visible drawops in render order.
pub fn render_page(canvas: &PageCanvas, width: usize, height: usize) -> Raster {
    let mut r = Raster::new(width, height);
    for (_, op) in canvas.render() {
        match &op.kind {
            OpKind::Line { from, to, .. } => r.line(*from, *to, '*'),
            OpKind::Circle { center, radius, .. } => r.circle(*center, *radius, 'o'),
            OpKind::Text { at, text, .. } => r.text(*at, text),
            OpKind::Delete { .. } => {}
            OpKind::Rect { a, b, .. } => {
                let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
                let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
                r.line(Point { x: x0, y: y0 }, Point { x: x1, y: y0 }, '#');
                r.line(Point { x: x0, y: y1 }, Point { x: x1, y: y1 }, '#');
                r.line(Point { x: x0, y: y0 }, Point { x: x0, y: y1 }, '#');
                r.line(Point { x: x1, y: y0 }, Point { x: x1, y: y1 }, '#');
            }
            OpKind::Polyline { points, .. } => {
                for w in points.windows(2) {
                    r.line(w[0], w[1], '.');
                }
                if points.len() == 1 {
                    r.line(points[0], points[0], '.');
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawop::{Color, DrawOp};
    use netsim::SimTime;
    use srm::{AduName, PageId, SeqNo, SourceId};

    fn canvas_with(ops: Vec<OpKind>) -> PageCanvas {
        let mut c = PageCanvas::default();
        for (i, kind) in ops.into_iter().enumerate() {
            let name = AduName::new(
                SourceId(1),
                PageId::new(SourceId(1), 0),
                SeqNo(i as u64),
            );
            c.apply(
                name,
                DrawOp {
                    timestamp: SimTime::from_secs(i as u64),
                    kind,
                },
            );
        }
        c
    }

    #[test]
    fn horizontal_line_is_contiguous() {
        let mut r = Raster::new(10, 3);
        r.line(Point { x: 0, y: 1 }, Point { x: 9, y: 1 }, '*');
        for x in 0..10 {
            assert_eq!(r.at(x, 1), Some('*'));
        }
        assert_eq!(r.ink(), 10);
    }

    #[test]
    fn diagonal_line_hits_endpoints() {
        let mut r = Raster::new(10, 10);
        r.line(Point { x: 9, y: 0 }, Point { x: 0, y: 9 }, '*');
        assert_eq!(r.at(9, 0), Some('*'));
        assert_eq!(r.at(0, 9), Some('*'));
        assert_eq!(r.ink(), 10);
    }

    #[test]
    fn circle_is_symmetric_and_hollow() {
        let mut r = Raster::new(21, 21);
        r.circle(Point { x: 10, y: 10 }, 5, 'o');
        assert_eq!(r.at(15, 10), Some('o'));
        assert_eq!(r.at(5, 10), Some('o'));
        assert_eq!(r.at(10, 15), Some('o'));
        assert_eq!(r.at(10, 5), Some('o'));
        assert_eq!(r.at(10, 10), Some(' '), "hollow center");
    }

    #[test]
    fn text_and_clipping() {
        let mut r = Raster::new(5, 2);
        r.text(Point { x: 3, y: 0 }, "hello");
        assert_eq!(r.at(3, 0), Some('h'));
        assert_eq!(r.at(4, 0), Some('e'));
        // The rest clipped silently.
        assert_eq!(r.ink(), 2);
        // Out-of-range draws don't panic.
        r.line(Point { x: -5, y: -5 }, Point { x: 99, y: 99 }, '*');
    }

    #[test]
    fn rect_and_polyline_render() {
        let c = canvas_with(vec![
            OpKind::Rect {
                a: Point { x: 1, y: 1 },
                b: Point { x: 5, y: 3 },
                color: Color::BLACK,
            },
            OpKind::Polyline {
                points: vec![
                    Point { x: 0, y: 5 },
                    Point { x: 3, y: 5 },
                    Point { x: 3, y: 7 },
                ],
                color: Color::BLUE,
            },
        ]);
        let r = render_page(&c, 10, 9);
        // Rectangle corners.
        assert_eq!(r.at(1, 1), Some('#'));
        assert_eq!(r.at(5, 3), Some('#'));
        assert_eq!(r.at(3, 2), Some(' '), "rect is hollow");
        // Polyline passes through the elbow.
        assert_eq!(r.at(3, 5), Some('.'));
        assert_eq!(r.at(3, 7), Some('.'));
    }

    #[test]
    fn render_page_respects_deletes() {
        let line = OpKind::Line {
            from: Point { x: 0, y: 0 },
            to: Point { x: 4, y: 0 },
            color: Color::BLUE,
        };
        let c1 = canvas_with(vec![line.clone()]);
        let with_ink = render_page(&c1, 10, 3);
        assert!(with_ink.ink() > 0);
        let target = AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(0));
        let c2 = canvas_with(vec![line, OpKind::Delete { target }]);
        let blank = render_page(&c2, 10, 3);
        assert_eq!(blank.ink(), 0, "deleted line leaves no ink");
    }

    #[test]
    fn framed_output_shape() {
        let r = Raster::new(4, 2);
        let s = r.to_string_framed();
        assert_eq!(s, "+----+\n|    |\n|    |\n+----+\n");
    }
}

//! The whiteboard canvas state (Section II-C).
//!
//! "Wb separates the drawing into pages … Any member can create a page and
//! any member can draw on any page." Each page accumulates drawops keyed by
//! their persistent names; rendering sorts by (timestamp, name) so all
//! members converge to the same picture regardless of arrival order.
//! Deletes are applied as *patches*: a delete that arrives before its
//! target simply shadows it when it does arrive.

use crate::drawop::{DrawOp, OpKind};
use srm::{AduName, PageId};
use std::collections::{BTreeMap, BTreeSet};

/// The drawops of one page.
#[derive(Clone, Debug, Default)]
pub struct PageCanvas {
    ops: BTreeMap<AduName, DrawOp>,
    deleted: BTreeSet<AduName>,
}

impl PageCanvas {
    /// Apply a drawop under its name. Idempotent; re-application of the
    /// same name is a no-op ("the name always refers to the same data").
    pub fn apply(&mut self, name: AduName, op: DrawOp) {
        if let OpKind::Delete { target } = op.kind {
            self.deleted.insert(target);
        }
        self.ops.entry(name).or_insert(op);
    }

    /// The visible (non-deleted, non-delete) drawops in render order:
    /// sorted by timestamp, ties broken by name.
    pub fn render(&self) -> Vec<(&AduName, &DrawOp)> {
        let mut visible: Vec<(&AduName, &DrawOp)> = self
            .ops
            .iter()
            .filter(|(name, op)| !op.is_delete() && !self.deleted.contains(name))
            .collect();
        visible.sort_by_key(|(name, op)| (op.timestamp, **name));
        visible
    }

    /// Total drawops held (including deletes and deleted ops).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been applied.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether `name` has been deleted (possibly before it arrived).
    pub fn is_deleted(&self, name: &AduName) -> bool {
        self.deleted.contains(name)
    }
}

/// The whole whiteboard: every page this member has seen.
#[derive(Clone, Debug, Default)]
pub struct Whiteboard {
    pages: BTreeMap<PageId, PageCanvas>,
}

impl Whiteboard {
    /// Empty whiteboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a drawop delivered under ADU `name` (drawops live on
    /// `name.page`).
    pub fn apply(&mut self, name: AduName, op: DrawOp) {
        self.pages.entry(name.page).or_default().apply(name, op);
    }

    /// The canvas of `page`, if anything has been drawn there.
    pub fn page(&self, page: &PageId) -> Option<&PageCanvas> {
        self.pages.get(page)
    }

    /// All known pages in order.
    pub fn pages(&self) -> impl Iterator<Item = (&PageId, &PageCanvas)> {
        self.pages.iter()
    }

    /// Number of known pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// A canonical digest of the visible state of every page, for checking
    /// convergence between members in tests: identical whiteboards produce
    /// identical digests regardless of arrival order.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (pid, canvas) in &self.pages {
            mix(pid.creator.0);
            mix(pid.number as u64);
            for (name, op) in canvas.render() {
                mix(name.source.0);
                mix(name.seq.0);
                mix(op.timestamp.as_nanos());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawop::{Color, Point};
    use netsim::SimTime;
    use srm::{SeqNo, SourceId};

    fn name(src: u64, seq: u64) -> AduName {
        AduName::new(SourceId(src), PageId::new(SourceId(1), 0), SeqNo(seq))
    }

    fn line_at(t: u64) -> DrawOp {
        DrawOp {
            timestamp: SimTime::from_secs(t),
            kind: OpKind::Line {
                from: Point { x: 0, y: 0 },
                to: Point {
                    x: t as i32,
                    y: 0,
                },
                color: Color::BLUE,
            },
        }
    }

    fn delete_of(target: AduName, t: u64) -> DrawOp {
        DrawOp {
            timestamp: SimTime::from_secs(t),
            kind: OpKind::Delete { target },
        }
    }

    #[test]
    fn render_sorts_by_timestamp_not_arrival() {
        let mut wb = Whiteboard::new();
        wb.apply(name(1, 1), line_at(20));
        wb.apply(name(1, 0), line_at(10)); // arrives later, drawn earlier
        let page = wb.page(&PageId::new(SourceId(1), 0)).unwrap();
        let order: Vec<u64> = page.render().iter().map(|(n, _)| n.seq.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn idempotent_reapplication() {
        let mut wb = Whiteboard::new();
        wb.apply(name(1, 0), line_at(1));
        wb.apply(name(1, 0), line_at(999)); // ignored: same name
        let page = wb.page(&PageId::new(SourceId(1), 0)).unwrap();
        assert_eq!(page.len(), 1);
        assert_eq!(
            page.render()[0].1.timestamp,
            SimTime::from_secs(1)
        );
    }

    #[test]
    fn delete_removes_target() {
        let mut wb = Whiteboard::new();
        wb.apply(name(1, 0), line_at(1));
        wb.apply(name(1, 1), delete_of(name(1, 0), 2));
        let page = wb.page(&PageId::new(SourceId(1), 0)).unwrap();
        assert!(page.render().is_empty());
        assert!(page.is_deleted(&name(1, 0)));
    }

    #[test]
    fn delete_patches_late_arrival() {
        // The delete arrives before the op it deletes (network reorder /
        // repair): the target must stay invisible when it shows up.
        let mut wb = Whiteboard::new();
        wb.apply(name(1, 1), delete_of(name(1, 0), 2));
        wb.apply(name(1, 0), line_at(1));
        let page = wb.page(&PageId::new(SourceId(1), 0)).unwrap();
        assert!(page.render().is_empty());
    }

    #[test]
    fn digests_converge_across_arrival_orders() {
        let ops = vec![
            (name(1, 0), line_at(1)),
            (name(2, 0), line_at(3)),
            (name(1, 1), delete_of(name(2, 0), 4)),
            (name(2, 1), line_at(2)),
        ];
        let mut a = Whiteboard::new();
        for (n, o) in &ops {
            a.apply(*n, o.clone());
        }
        let mut b = Whiteboard::new();
        for (n, o) in ops.iter().rev() {
            b.apply(*n, o.clone());
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn pages_are_independent() {
        let mut wb = Whiteboard::new();
        let p2 = PageId::new(SourceId(2), 0);
        wb.apply(name(1, 0), line_at(1));
        wb.apply(AduName::new(SourceId(1), p2, SeqNo(0)), line_at(2));
        assert_eq!(wb.page_count(), 2);
        assert_eq!(wb.page(&p2).unwrap().len(), 1);
    }
}

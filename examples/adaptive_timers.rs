//! The adaptive timer algorithm at work (Section VII-A, Figs 12/13).
//!
//! Runs the same duplicate-prone sparse-session scenario twice — once with
//! fixed timer parameters and once with the adaptive algorithm — and prints
//! requests per loss-recovery round side by side, showing the adaptive run
//! converging toward one request per loss.
//!
//! Run with: `cargo run --release --example adaptive_timers`

use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm::SrmConfig;

fn main() {
    const G: usize = 50;
    const ROUNDS: usize = 60;

    let spec = |cfg: SrmConfig| ScenarioSpec {
        topo: TopoSpec::BoundedTree { n: 1000, degree: 4 },
        group_size: Some(G),
        drop: DropSpec::RandomTreeLink,
        cfg,
        seed: 0x0400_0000 ^ ((G as u64) << 20) ^ 3, // a dup-prone Fig 4 draw
        timer_seed: Some(1234),
    };

    let mut fixed = spec(SrmConfig::fixed(G)).build();
    let mut adaptive = spec(SrmConfig::adaptive(G)).build();
    println!(
        "{} members scattered in a 1000-node degree-4 tree; same congested link each round\n",
        G
    );
    println!("round  fixed_requests  adaptive_requests  adaptive_C2(median member)");
    let mut fixed_total = 0u64;
    let mut adaptive_total = 0u64;
    for round in 1..=ROUNDS {
        let rf = run_round(&mut fixed, 100_000.0);
        let ra = run_round(&mut adaptive, 100_000.0);
        fixed_total += rf.requests;
        adaptive_total += ra.requests;
        // Median C2 across the downstream members, which do the adapting.
        let mut c2s: Vec<f64> = adaptive
            .downstream_members
            .iter()
            .map(|&m| adaptive.sim.app(m).unwrap().params().c2)
            .collect();
        c2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med_c2 = c2s.get(c2s.len() / 2).copied().unwrap_or(0.0);
        if round <= 10 || round % 5 == 0 {
            println!(
                "{round:>5}  {:>14}  {:>17}  {med_c2:>10.2}",
                rf.requests, ra.requests
            );
        }
    }
    println!(
        "\ntotals over {ROUNDS} rounds: fixed {fixed_total} requests, adaptive {adaptive_total} requests"
    );
    let ratio = fixed_total as f64 / adaptive_total.max(1) as f64;
    println!("fixed timers sent {ratio:.1}x the requests of the adaptive algorithm");
}

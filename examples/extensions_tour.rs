//! A tour of the framework's extensions beyond the core request/repair
//! machinery: FEC parity (Section VII-B / [38]), separate recovery groups
//! (Section VII-B2), and hierarchical session messages (Section IX-A).
//!
//! Run with: `cargo run --release --example extensions_tour`

use bytes::Bytes;
use netsim::generators::chain;
use netsim::loss::ScriptedDrop;
use netsim::routing::SpTree;
use netsim::{GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::config::RecoveryGroupConfig;
use srm::{FecConfig, HierarchyConfig, PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(1);
const N: usize = 24;

fn session(cfg: SrmConfig, sessions_on: bool) -> (Simulator<SrmAgent>, PageId) {
    let topo = chain(N);
    let mut sim = Simulator::new(topo, 60);
    let page = PageId::new(SourceId(0), 0);
    let trees: Vec<(NodeId, SpTree)> = (0..N as u32)
        .map(|i| (NodeId(i), SpTree::compute(sim.topology(), NodeId(i))))
        .collect();
    for i in 0..N as u32 {
        let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg.clone());
        a.session_enabled = sessions_on;
        a.set_current_page(page);
        for (o, t) in &trees {
            if o.0 != i {
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), t.distance(NodeId(i)));
            }
        }
        sim.install(NodeId(i), a);
        sim.join(NodeId(i), GROUP);
    }
    (sim, page)
}

fn fec_demo() {
    println!("— FEC parity ([38]): single in-block losses never reach the repair machinery —");
    let cfg = SrmConfig {
        fec: Some(FecConfig { k: 4 }),
        ..SrmConfig::fixed(N)
    };
    let (mut sim, page) = session(cfg, false);
    // Drop one packet per block toward the tail of the chain.
    let l = sim.topology().link_between(NodeId(15), NodeId(16)).unwrap();
    sim.set_loss_model(Box::new(ScriptedDrop::new(vec![(l, 2), (l, 7), (l, 12)])));
    for k in 0..12u8 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k; 8]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(2));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(100_000)));
    let requests: u64 = (0..N as u32)
        .map(|i| sim.app(NodeId(i)).unwrap().metrics.requests_sent)
        .sum();
    let fec: u64 = (0..N as u32)
        .map(|i| sim.app(NodeId(i)).unwrap().fec_recoveries)
        .sum();
    let tail = sim.app(NodeId(23)).unwrap();
    println!(
        "  12 ADUs sent, 3 dropped per downstream member; parity reconstructions: {fec}, \
         requests: {requests}, tail store: {} ADUs\n",
        tail.store().len()
    );
    assert_eq!(tail.store().len(), 12);
    assert_eq!(requests, 0);
}

fn recovery_group_demo() {
    println!("— Recovery groups (§VII-B2): persistent local losses get their own group —");
    let cfg = SrmConfig {
        recovery_groups: Some(RecoveryGroupConfig {
            invite_ttl: 4,
            min_losses: 2,
        }),
        ..SrmConfig::fixed(N)
    };
    let (mut sim, page) = session(cfg, false);
    let l = sim.topology().link_between(NodeId(17), NodeId(18)).unwrap();
    sim.set_loss_model(Box::new(ScriptedDrop::new(
        (1..=4).map(|o| (l, o)).collect(),
    )));
    for k in 0..5u8 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(200));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    let creators: Vec<u32> = (0..N as u32)
        .filter(|&i| sim.app(NodeId(i)).unwrap().created_recovery_group)
        .collect();
    let rg = netsim::GroupId(0x4000_0000 + creators[0]);
    println!(
        "  creator(s): {creators:?}; recovery-group members: {:?}\n",
        sim.members(rg)
    );
    assert_eq!(sim.app(NodeId(23)).unwrap().store().len(), 5);
}

fn hierarchy_demo() {
    println!("— Hierarchical session messages (§IX-A): a few representatives speak globally —");
    let cfg = SrmConfig {
        session_hierarchy: Some(HierarchyConfig {
            local_ttl: 3,
            rep_timeout: SimDuration::from_secs(40),
        }),
        ..SrmConfig::fixed(N)
    };
    let (mut sim, _) = session(cfg, true);
    sim.run_until(SimTime::from_secs(600));
    let reps: Vec<u32> = (0..N as u32)
        .filter(|&i| sim.app(NodeId(i)).unwrap().is_representative())
        .collect();
    println!(
        "  {N} members on a chain, local TTL 3 → representatives: {reps:?} ({} of {N})",
        reps.len()
    );
    assert!(reps.len() < N / 2);
}

fn main() {
    fec_demo();
    recovery_group_demo();
    hierarchy_demo();
    println!("\nall three extensions behaved as the paper sketches ✓");
}

//! TTL-scoped local recovery (Section VII-B3).
//!
//! A dumbbell network: a cluster of members behind a long tail circuit
//! suffers a local loss. With global recovery the request and repair flood
//! the whole session; with TTL-scoped two-step recovery they stay on the
//! lossy side. The example prints link crossings for both runs.
//!
//! Run with: `cargo run --release --example local_recovery`

use bytes::Bytes;
use netsim::generators::dumbbell;
use netsim::loss::ScriptedDrop;
use netsim::{GroupId, NodeId, SimDuration, Simulator};
use srm::{PageId, RecoveryScope, SourceId, SrmAgent, SrmConfig};

/// Left hub = n0, right hub = n(left+1); leaves on each side.
const LEFT: usize = 6;
const RIGHT: usize = 6;

fn build(scope: RecoveryScope) -> Simulator<SrmAgent> {
    let group = GroupId(1);
    let mut topo = dumbbell(LEFT, RIGHT, SimDuration::from_secs(5));
    // Mbone-style region boundary: the tail circuit takes threshold 16, so
    // packets need TTL ≥ 16 to cross it (Section VII-B3).
    let bottleneck = topo
        .link_between(NodeId(0), NodeId(LEFT as u32 + 1))
        .unwrap();
    topo.set_threshold(bottleneck, 16);
    let mut sim = Simulator::new(topo, 5150);
    let page = PageId::new(SourceId(1), 0);
    let leaves: Vec<NodeId> = (1..=LEFT as u32)
        .map(NodeId)
        .chain((LEFT as u32 + 2..LEFT as u32 + 2 + RIGHT as u32).map(NodeId))
        .collect();
    for &n in &leaves {
        let cfg = SrmConfig {
            scope,
            ..SrmConfig::fixed(leaves.len())
        };
        let mut a = SrmAgent::new(SourceId(n.0 as u64), group, cfg);
        a.session_enabled = false;
        a.set_current_page(page);
        for &o in &leaves {
            if o != n {
                // Exact distances: 2 within a side, 7 across the dumbbell.
                let same_side = (n.0 <= LEFT as u32) == (o.0 <= LEFT as u32);
                let d = if same_side { 2.0 } else { 2.0 + 5.0 };
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), SimDuration::from_secs_f64(d));
            }
        }
        sim.install(n, a);
        sim.join(n, group);
    }
    sim
}

fn run_once(label: &str, scope: RecoveryScope) {
    let mut sim = build(scope);
    let page = PageId::new(SourceId(1), 0);
    // Member 1 (left side) sends; the copy toward left leaf 2 is dropped on
    // its access link (a loss local to the left side).
    let l2 = sim.topology().link_between(NodeId(0), NodeId(2)).unwrap();
    sim.set_loss_model(Box::new(ScriptedDrop::new(vec![(l2, 1)])));
    sim.exec(NodeId(1), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"slide 1"));
    });
    sim.run_until(sim.now() + SimDuration::from_secs(1));
    sim.exec(NodeId(1), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"slide 2"));
    });
    assert!(sim.run_until_idle(netsim::SimTime::from_secs(100_000)));

    let bottleneck = sim
        .topology()
        .link_between(NodeId(0), NodeId(LEFT as u32 + 1))
        .unwrap();
    let recovered = sim.app(NodeId(2)).unwrap().metrics.all_recovered();
    let recovery_hops: u64 = sim.stats.hops_for(netsim::flow::REQUEST)
        + sim.stats.hops_for(netsim::flow::REPAIR);
    println!(
        "{label:<28} recovered={recovered}  recovery link-crossings={recovery_hops:>3}  \
         bottleneck crossings={}",
        sim.stats.links[bottleneck.index()].packets
    );
}

fn main() {
    println!(
        "dumbbell: {LEFT} members | 5s tail circuit | {RIGHT} members; loss on a left access link\n",
    );
    run_once("global recovery", RecoveryScope::Global);
    // TTL 2 reaches the whole left side (leaf -> hub -> leaf); crossing the
    // tail circuit would need TTL ≥ 16 because of its threshold.
    run_once("TTL-scoped two-step (ttl=2)", RecoveryScope::Ttl(2));
    println!(
        "\nTTL scoping keeps request/repair traffic off the tail circuit, \
         exactly the Section VII-B motivation."
    );
}

//! The SRM toolkit in action (Sections III-D and IX-D): a Usenet-style
//! newswire and a routing-update mesh, both derived from the same generic
//! `SrmTool` base — no wb code involved.
//!
//! Run with: `cargo run --release --example newswire`

use netsim::generators::bounded_degree_tree;
use netsim::loss::BernoulliLoss;
use netsim::{GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{PageId, SourceId, SrmConfig};
use srm_toolkit::{Article, NewsApp, NewsTool, Prefix, RouteApp, RouteTool, RouteUpdate, SrmTool};

const GROUP: GroupId = GroupId(1);
const SEATS: [NodeId; 4] = [NodeId(3), NodeId(12), NodeId(20), NodeId(27)];

fn session<A: srm_toolkit::SrmApplication>(
    seed: u64,
    mk: impl Fn() -> A,
) -> (Simulator<SrmTool<A>>, PageId) {
    let topo = bounded_degree_tree(30, 3);
    let mut sim = Simulator::new(topo, seed);
    let page = PageId::new(SourceId(SEATS[0].0 as u64), 0);
    for &m in &SEATS {
        let mut t = SrmTool::new(SourceId(m.0 as u64), GROUP, SrmConfig::fixed(4), mk());
        t.agent.set_current_page(page);
        sim.install(m, t);
        sim.join(m, GROUP);
    }
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.02, seed)));
    sim.run_until(SimTime::from_secs(120)); // discover peers & distances
    (sim, page)
}

fn newswire() {
    println!("— newswire: threads assemble identically everywhere —");
    let (mut sim, page) = session(31, NewsApp::default);
    let root = sim.exec(SEATS[0], |t, ctx| {
        t.publish(
            ctx,
            page,
            Article {
                subject: "ANN: srm-rs 0.1".into(),
                body: "a Rust reproduction of the SIGCOMM '95 SRM paper".into(),
                references: None,
            }
            .encode(),
        )
    });
    sim.run_until(sim.now() + SimDuration::from_secs(60));
    for (i, text) in [(1usize, "does wb work?"), (2, "what about FEC?")] {
        sim.exec(SEATS[i], |t, ctx| {
            t.publish(
                ctx,
                page,
                Article {
                    subject: "re: ANN: srm-rs 0.1".into(),
                    body: text.into(),
                    references: Some(root),
                }
                .encode(),
            );
        });
    }
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    for &m in &SEATS {
        let app = &sim.app(m).unwrap().app;
        println!(
            "  {m:?}: {} articles, {} replies under the announcement, digest {:016x}",
            app.articles.len(),
            app.replies_to(&root).len(),
            app.digest()
        );
    }
    let d: Vec<u64> = SEATS.iter().map(|&m| sim.app(m).unwrap().app.digest()).collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]));
    println!();
}

fn routewire() {
    println!("— route updates: every node derives the same best-route RIB —");
    let (mut sim, page) = session(32, RouteApp::default);
    let pre = Prefix {
        addr: 0x0a0a_0000,
        len: 16,
    };
    sim.exec(SEATS[0], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 1,
                metric: 25,
                withdrawn: false,
            }
            .encode(),
        );
    });
    sim.exec(SEATS[1], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 2,
                metric: 15,
                withdrawn: false,
            }
            .encode(),
        );
    });
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    for &m in &SEATS {
        let rib = sim.app(m).unwrap().app.rib();
        let r = rib[&pre];
        println!(
            "  {m:?}: 10.10/16 via next-hop {} (metric {}, origin {})",
            r.next_hop, r.metric, r.origin
        );
        assert_eq!(r.next_hop, 2);
    }
    // Withdraw the better route; everyone fails over identically.
    sim.exec(SEATS[1], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 2,
                metric: 15,
                withdrawn: true,
            }
            .encode(),
        );
    });
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    for &m in &SEATS {
        assert_eq!(sim.app(m).unwrap().app.rib()[&pre].next_hop, 1);
    }
    println!("  after withdrawal: all nodes failed over to next-hop 1 ✓");
}

fn main() {
    newswire();
    routewire();
    println!("\ntwo applications, one framework — the §IX-D toolkit claim ✓");
}

//! Quickstart: a five-member SRM session on a simulated star network.
//!
//! One member multicasts data, a packet is dropped on a member's access
//! link, and SRM's receiver-driven request/repair machinery recovers it —
//! watch the requests and repairs in the printed log.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use netsim::generators::star;
use netsim::loss::OneShotLinkDrop;
use netsim::{flow, GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

fn main() {
    const MEMBERS: usize = 5;
    let group = GroupId(1);
    let mut sim = Simulator::new(star(MEMBERS), 2026);

    // Install an SRM agent on every leaf; the hub is a pure router.
    for i in 1..=MEMBERS {
        let mut agent = SrmAgent::new(SourceId(i as u64), group, SrmConfig::fixed(MEMBERS));
        // Everyone will view member 1's first page.
        agent.set_current_page(PageId::new(SourceId(1), 0));
        sim.install(NodeId(i as u32), agent);
        sim.join(NodeId(i as u32), group);
    }

    // Let session messages run for a minute of simulated time so members
    // discover each other and estimate pairwise distances (Section III-A).
    sim.run_until(SimTime::from_secs(60));
    let est = sim.app(NodeId(1)).unwrap().distances();
    println!(
        "after 60s of session messages, member 1 knows {} peers; distance to member 3: {}s",
        est.peer_count(),
        est.distance_to(SourceId(3)).as_secs_f64()
    );

    // Drop the next data packet from member 1 on member 4's access link.
    let l4 = sim.topology().link_between(NodeId(0), NodeId(4)).unwrap();
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l4, NodeId(1), flow::DATA)));

    // Member 1 sends two ADUs; the first is lost toward member 4 and the
    // second exposes the sequence gap.
    let page = PageId::new(SourceId(1), 0);
    sim.exec(NodeId(1), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"draw a blue line"));
    });
    sim.run_until(sim.now() + SimDuration::from_secs(1));
    sim.exec(NodeId(1), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"draw a red circle"));
    });

    // Run the recovery to completion.
    sim.run_until(sim.now() + SimDuration::from_secs(120));

    for i in 1..=MEMBERS as u32 {
        let a = sim.app_mut(NodeId(i)).unwrap();
        let got = a.take_delivered();
        println!(
            "member {i}: store={} ADUs, delivered {} (repairs: {}), sent {} requests / {} repairs",
            a.store().len(),
            got.len(),
            got.iter().filter(|d| d.via_repair).count(),
            a.metrics.requests_sent,
            a.metrics.repairs_sent,
        );
    }

    let m4 = sim.app(NodeId(4)).unwrap();
    assert!(m4.metrics.all_recovered(), "member 4 recovered the loss");
    assert_eq!(m4.store().len(), 2);
    println!("member 4 recovered the dropped ADU via multicast repair ✓");
}

//! A sparse wide-area session (the Fig 4 regime): 40 members scattered in a
//! 1000-node tree, repeated losses on random links, full session-message
//! machinery enabled (distance estimation learned on the wire, not
//! pre-warmed).
//!
//! Demonstrates that the framework is self-contained: members discover each
//! other and their distances purely from session messages, then recover
//! losses with multicast request/repair.
//!
//! Run with: `cargo run --release --example sparse_session`

use bytes::Bytes;
use netsim::generators::{bounded_degree_tree, random_members};
use netsim::loss::BernoulliLoss;
use netsim::{GroupId, SimDuration, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

fn main() {
    const NET: usize = 1000;
    const G: usize = 40;
    let group = GroupId(1);
    let mut rng = StdRng::seed_from_u64(404);
    let topo = bounded_degree_tree(NET, 4);
    let members = random_members(&topo, G, &mut rng);
    let mut sim = Simulator::new(topo, 404);

    let source = members[0];
    let page = PageId::new(SourceId(source.0 as u64), 0);
    for &m in &members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), group, SrmConfig::adaptive(G));
        a.set_current_page(page);
        sim.install(m, a);
        sim.join(m, group);
    }

    // Learn the session from scratch: several minutes of session messages.
    sim.run_until(netsim::SimTime::from_secs(600));
    let known: usize = sim.app(source).unwrap().distances().peer_count();
    println!("after 600s the source has heard {known}/{} peers", G - 1);

    // Now stream 50 ADUs with 1% loss everywhere.
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.01, 17)));
    for k in 0..50 {
        sim.exec(source, |a, ctx| {
            a.send_data(ctx, page, Bytes::from(format!("adu {k}").into_bytes()));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(10));
    }
    // Let recovery finish (session messages catch tail losses).
    sim.run_until(sim.now() + SimDuration::from_secs(3600));

    let mut complete = 0;
    let mut total_requests = 0;
    let mut total_repairs = 0;
    for &m in &members {
        let a = sim.app(m).unwrap();
        if m != source && a.store().len() == 50 {
            complete += 1;
        }
        total_requests += a.metrics.requests_sent;
        total_repairs += a.metrics.repairs_sent;
    }
    println!(
        "{complete}/{} receivers hold all 50 ADUs; session sent {total_requests} requests and \
         {total_repairs} repairs in total",
        G - 1
    );
    println!(
        "bandwidth: data {} hops, recovery {} hops, session {} hops",
        sim.stats.hops_for(netsim::flow::DATA),
        sim.stats.hops_for(netsim::flow::REQUEST) + sim.stats.hops_for(netsim::flow::REPAIR),
        sim.stats.hops_for(netsim::flow::SESSION),
    );
    assert_eq!(complete, G - 1, "every receiver converged");
    println!("all receivers converged under persistent random loss ✓");
}

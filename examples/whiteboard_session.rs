//! A wb whiteboard session: the scenario the paper was designed around.
//!
//! Three members share a whiteboard over a lossy wide-area tree. A presenter
//! draws slides ("pages"); a member's link drops packets; a fourth member
//! joins late and pulls the page history from the session. At the end, all
//! four whiteboards are bit-identical.
//!
//! Run with: `cargo run --release --example whiteboard_session`

use netsim::generators::bounded_degree_tree;
use netsim::loss::BernoulliLoss;
use netsim::{GroupId, NodeId, SimDuration, Simulator};
use srm::SourceId;
use wb::{wb159_config, Color, OpKind, Point, WbApp};

fn main() {
    let group = GroupId(7);
    // A 30-node degree-3 tree; members sit at scattered nodes.
    let topo = bounded_degree_tree(30, 3);
    let mut sim = Simulator::new(topo, 77);
    let seats = [NodeId(3), NodeId(11), NodeId(22)];
    for (i, &node) in seats.iter().enumerate() {
        let app = WbApp::new(SourceId(i as u64 + 1), group, wb159_config());
        sim.install(node, app);
        sim.join(node, group);
    }

    // 2% loss everywhere — wb must still converge.
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.02, 99)));

    // Let the session warm up (membership + distance estimates).
    sim.run_until(netsim::SimTime::from_secs(120));

    // The presenter (member 1 at node 3) creates a page and draws.
    let page = sim.exec(seats[0], |app, ctx| {
        let page = app.create_page();
        app.draw(
            ctx,
            page,
            OpKind::Text {
                at: Point { x: 13, y: 1 },
                text: "SRM: Scalable Reliable Multicast".into(),
                color: Color::BLACK,
            },
        );
        for k in 0..5 {
            app.draw(
                ctx,
                page,
                OpKind::Line {
                    from: Point { x: 4, y: 4 + 2 * k },
                    to: Point { x: 55, y: 4 + 2 * k },
                    color: Color::BLUE,
                },
            );
        }
        page
    });
    // Everyone turns to the presenter's page.
    for &node in &seats[1..] {
        sim.exec(node, |app, _| app.view_page(page));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(300));

    // Member 2 annotates; member 3 deletes a line (the famous blue-line ->
    // red-circle edit works across members because names are persistent).
    sim.exec(seats[1], |app, ctx| {
        app.draw(
            ctx,
            page,
            OpKind::Circle {
                center: Point { x: 30, y: 8 },
                radius: 4,
                color: Color::RED,
            },
        );
    });
    sim.run_until(sim.now() + SimDuration::from_secs(300));

    // A latecomer joins at node 27 and fetches the history.
    let late_seat = NodeId(27);
    let late = WbApp::new(SourceId(9), group, wb159_config());
    sim.install(late_seat, late);
    sim.join(late_seat, group);
    sim.exec(late_seat, |app, ctx| {
        app.view_page(page);
        app.fetch_page(ctx, page);
    });
    // Session messages + loss recovery pull the whole page across.
    sim.run_until(sim.now() + SimDuration::from_secs(900));

    let mut digests = Vec::new();
    for (label, node) in [("m1", seats[0]), ("m2", seats[1]), ("m3", seats[2]), ("late", late_seat)] {
        let app = sim.app(node).unwrap();
        let ops = app.board.page(&page).map(|c| c.render().len()).unwrap_or(0);
        println!(
            "{label}: {ops} visible drawops, digest {:016x}, {} requests sent, {} repairs sent",
            app.board.digest(),
            app.agent.metrics.requests_sent,
            app.agent.metrics.repairs_sent,
        );
        digests.push(app.board.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "all whiteboards converged"
    );
    println!("all four whiteboards converged despite 2% loss ✓\n");
    // Show the latecomer's view of the page.
    let canvas = sim
        .app(late_seat)
        .unwrap()
        .board
        .page(&page)
        .expect("page present");
    println!("the latecomer's rendering of the page:");
    print!("{}", wb::render_page(canvas, 60, 14).to_string_framed());
}

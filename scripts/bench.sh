#!/usr/bin/env bash
# Benchmark pipeline: criterion micro-benchmarks plus the `scale`
# macro-benchmark, distilled into BENCH_4.json at the repo root.
#
# Usage: scripts/bench.sh [--quick] [--skip-criterion] [--label NAME]
#
# BENCH_4.json carries two sections: `benches` — the fresh measurement —
# and `baseline_pre_pr` — the pinned pre-optimisation numbers, carried
# forward automatically from the existing file on every refresh so the
# before/after pairing survives. CI gates regressions against the
# committed file with `scale check` (see scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
SKIP_CRITERION=0
LABEL="post-pr"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --skip-criterion) SKIP_CRITERION=1; shift ;;
    --label) LABEL="$2"; shift 2 ;;
    *) echo "usage: scripts/bench.sh [--quick] [--skip-criterion] [--label NAME]" >&2; exit 2 ;;
  esac
done

if [ "$SKIP_CRITERION" -eq 0 ]; then
  echo "== criterion micro-benchmarks =="
  cargo bench -p srm-bench
fi

echo "== scale macro-benchmark =="
cargo build --release -p srm-bench --bin scale

# Metrics-overhead guard: the obs registry hooks are compiled into the
# transport and simulator hot paths but disabled by default (a single
# branch when off). Before refreshing BENCH_4.json, prove the instrumented
# build still lands within 1.25x of the committed numbers.
if [ -f BENCH_4.json ]; then
  echo "== metrics-overhead guard (instrumented build vs committed BENCH_4.json) =="
  ./target/release/scale check --against BENCH_4.json --tolerance 1.25
fi

# WAL-overhead guard: a durable store attached to every member (in-memory
# backend, so pure framing/CRC/index cost) must keep the Fig-4 recovery
# round within 1.25x of the plain in-memory round.
echo "== WAL-overhead guard (fig4 round, durability on vs off) =="
./target/release/scale durability $QUICK --tolerance 1.25
MERGE=()
if [ -f BENCH_4.json ]; then
  MERGE=(--merge-baseline BENCH_4.json)
fi
./target/release/scale run $QUICK "${MERGE[@]}" --label "$LABEL" --out BENCH_4.json
echo "bench: wrote BENCH_4.json"

echo "== live macro-benchmark (wall-clock UDP datapath) =="
cargo build --release -p srm-bench --bin live

# Live-path regression guard: the fresh datapath (best of five) must stay
# within 1.25x of the committed BENCH_9.json numbers before they are
# refreshed.
if [ -f BENCH_9.json ]; then
  echo "== live-path regression guard (vs committed BENCH_9.json) =="
  ./target/release/live check --against BENCH_9.json --tolerance 1.25 $QUICK
fi
MERGE9=()
if [ -f BENCH_9.json ]; then
  MERGE9=(--merge-baseline BENCH_9.json)
fi
./target/release/live run $QUICK --best 5 "${MERGE9[@]}" --label "$LABEL" --out BENCH_9.json
echo "bench: wrote BENCH_9.json"

#!/usr/bin/env bash
# CI gate: build, test, lint. Run from the repo root.
#
# Note the two test invocations: the root package is both a [workspace]
# and a [package], so a bare `cargo test` covers only the root crate's
# integration tests (the tier-1 gate); `--workspace` adds every member
# crate's unit and integration tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== test (root package / tier-1) =="
cargo test -q

echo "== test (workspace) =="
cargo test --workspace -q

echo "== srm-node (wall-clock transport binary builds) =="
cargo build --release -p srm-transport --bin srm-node

echo "== transport loopback (live-UDP loss recovery) =="
cargo test -q --test transport_loopback

echo "== transport chaos (seeded determinism, wheel churn, blackhole heal) =="
cargo test -q --test transport_chaos

echo "== transport batch equivalence (batched vs portable backends, byte-identical) =="
cargo test -q --test transport_batch

echo "== soak smoke (bounded chaos run, invariant gate; DESIGN.md §9) =="
timeout 60 ./target/release/srm-node soak --nodes 3 --secs 3 --adus 2 --seed 7 \
    --chaos "loss=0.1,dup=0.05,reorder=0.15:30ms,jitter=20ms,burst=0.9@1s+1.5s,blackhole=2@1s+1.5s"

echo "== metrics + monitor loopback (registry snapshots, passive group health) =="
cargo test -q -p srm-transport --test metrics_monitor

echo "== monitor smoke (stats + monitor JSONL end-to-end, schema-validated) =="
cargo build --release -p srm-experiments
./target/release/srm-node send --id 1 --bind 127.0.0.1:7611 \
    --peers 127.0.0.1:7612,127.0.0.1:7619 --members 2 --duration 4 \
    --text ci-smoke --quiet \
    --stats-file target/ci_stats.jsonl --stats-interval 0.5 &
SEND_PID=$!
./target/release/srm-node join --id 2 --bind 127.0.0.1:7612 \
    --peers 127.0.0.1:7611,127.0.0.1:7619 --members 2 --duration 4 --quiet &
JOIN_PID=$!
timeout 30 ./target/release/srm-node monitor --bind 127.0.0.1:7619 \
    --members 2 --duration 5 --refresh 0.5 --quiet --out target/ci_monitor.jsonl
wait $SEND_PID $JOIN_PID
./target/release/srm-experiments monitor \
    --monitor target/ci_monitor.jsonl --stats target/ci_stats.jsonl --validate

echo "== durable store (WAL unit + property tests) =="
cargo test -q -p srm-store

echo "== durable rejoin smoke (kill -9 -> restart -> repair-from-disk, live UDP) =="
STORE_DIR=$(mktemp -d target/ci_store.XXXXXX)
# Phase 1: a durable sender logs one ADU, then dies hard mid-session.
./target/release/srm-node send --id 1 --bind 127.0.0.1:7621 \
    --peers 127.0.0.1:7622 --members 2 --duration 30 --quiet \
    --text durable-smoke --store "$STORE_DIR" --fsync always &
DUR_PID=$!
sleep 2
kill -9 $DUR_PID
wait $DUR_PID 2>/dev/null || true
# Phase 2: it restarts from the log; a fresh late joiner must recover the
# pre-crash ADU via a repair only the rehydrated store can serve.
timeout 30 ./target/release/srm-node join --id 1 --bind 127.0.0.1:7621 \
    --peers 127.0.0.1:7622 --members 2 --duration 8 --quiet \
    --store "$STORE_DIR" &
REJOIN_PID=$!
timeout 30 ./target/release/srm-node join --id 2 --bind 127.0.0.1:7622 \
    --peers 127.0.0.1:7621 --members 2 --duration 8 > target/ci_durable.out &
LATE_PID=$!
wait $REJOIN_PID $LATE_PID
grep -q "durable-smoke" target/ci_durable.out \
    || { echo "durable rejoin smoke: late joiner never recovered the pre-crash ADU" >&2; exit 1; }
grep -q "repair" target/ci_durable.out \
    || { echo "durable rejoin smoke: ADU arrived but not via repair" >&2; exit 1; }
rm -rf "$STORE_DIR"

echo "== golden trace (observability JSONL pins) =="
cargo test -q --test golden_trace

echo "== bench (criterion targets compile) =="
cargo bench --no-run -p srm-bench -q

echo "== bench smoke (scale quick run + report validation) =="
cargo build --release -p srm-bench --bin scale
./target/release/scale run --quick --label ci-smoke --out target/bench_smoke.json
./target/release/scale validate target/bench_smoke.json
./target/release/scale validate BENCH_4.json

echo "== bench regression gate (best-of-5 re-measure vs committed BENCH_4.json) =="
./target/release/scale check --against BENCH_4.json --tolerance 1.25

echo "== live bench smoke (quick run + report validation) =="
cargo build --release -p srm-bench --bin live
./target/release/live run --quick --label ci-smoke --out target/live_smoke.json
./target/release/live validate target/live_smoke.json
./target/release/live validate BENCH_9.json

echo "== live-path regression gate (best-of-5 re-measure vs committed BENCH_9.json) =="
./target/release/live check --against BENCH_9.json --tolerance 1.25

echo "== srm-hub smoke (4 groups via control TCP, delivery + clean drain) =="
cargo build --release -p srm-transport --bin srm-hub
# One hub process hosts four groups; each group has a standalone srm-node
# receiver that prints whatever it delivers. The whole drive — create,
# publish, drain, stop — goes through the line-JSON control TCP port.
timeout 60 ./target/release/srm-hub --bind 127.0.0.1:7641 \
    --control 127.0.0.1:7642 --shards 2 --quiet &
HUB_PID=$!
HUBRX_PIDS=()
for g in 1 2 3 4; do
    timeout 60 ./target/release/srm-node join --id 2 --bind 127.0.0.1:$((7650+g)) \
        --peers 127.0.0.1:7641 --group "$g" --members 2 --duration 12 \
        > "target/ci_hub_g$g.out" &
    HUBRX_PIDS+=($!)
done
sleep 1
exec 9<>/dev/tcp/127.0.0.1/7642
for g in 1 2 3 4; do
    printf '{"cmd":"create","group":%d,"peers":["127.0.0.1:%d"],"members":2}\n' \
        "$g" $((7650+g)) >&9
done
for g in 1 2 3 4; do
    printf '{"cmd":"send","group":%d,"text":"hub-smoke-g%d","count":3}\n' "$g" "$g" >&9
done
sleep 3
for g in 1 2 3 4; do printf '{"cmd":"drain","group":%d}\n' "$g" >&9; done
printf '{"cmd":"stop"}\n' >&9
timeout 30 cat <&9 > target/ci_hub_ctrl.out || true
exec 9<&- 9>&-
wait $HUB_PID
wait "${HUBRX_PIDS[@]}"
for g in 1 2 3 4; do
    grep -q "hub-smoke-g$g" "target/ci_hub_g$g.out" \
        || { echo "srm-hub smoke: group $g receiver never delivered its ADUs" >&2; exit 1; }
done
[ "$(grep -c '"ok":true,"cmd":"create"' target/ci_hub_ctrl.out)" -eq 4 ] \
    || { echo "srm-hub smoke: control plane did not ack 4 creates" >&2; exit 1; }
[ "$(grep -c '"ok":true,"cmd":"drain"' target/ci_hub_ctrl.out)" -eq 4 ] \
    || { echo "srm-hub smoke: control plane did not ack 4 clean drains" >&2; exit 1; }
grep -q '"ok":true,"cmd":"stop"' target/ci_hub_ctrl.out \
    || { echo "srm-hub smoke: hub never acked stop" >&2; exit 1; }

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== rustdoc (no warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI OK"

#!/usr/bin/env bash
# CPU-profile the live UDP datapath with perf(1).
#
# Usage: scripts/profile.sh [BENCH ...]
#
#   BENCH            extra args forwarded to `live run` (default: --quick)
#
# Records the `live` macro-benchmark under `perf record` with DWARF call
# graphs, prints the hottest frames, and — when a FlameGraph toolchain
# (stackcollapse-perf.pl / flamegraph.pl) is on PATH — renders
# target/profile/flame.svg.
#
# Degrades gracefully: containers and locked-down kernels often lack
# perf(1) or forbid perf_event_open; in that case this prints what to
# install and exits 0 so calling scripts never break. The fallback for
# perf-less environments is the benchmark's own instrumentation:
# LIVE_DEBUG=1 ./target/release/live run --quick prints the send/recv
# batch-size and drain histograms that expose most datapath regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v perf >/dev/null 2>&1; then
  cat >&2 <<'EOF'
profile: perf(1) not found on PATH; skipping CPU profile.

  To profile for real, install linux-tools for your kernel (e.g.
  `apt install linux-tools-$(uname -r)`) and re-run. Until then, the
  datapath's built-in instrumentation covers the common cases:

    LIVE_DEBUG=1 ./target/release/live run --quick

  prints per-bench send-batch / recv-batch / drain histogram quantiles
  (p50/p90/p99) — a collapse of recv-batch p90 toward 1 means the
  batching layer degenerated to one syscall per frame.
EOF
  exit 0
fi

cargo build --release -p srm-bench --bin live

OUT_DIR=target/profile
mkdir -p "$OUT_DIR"
DATA="$OUT_DIR/perf.data"

echo "== perf record (live datapath, DWARF call graphs) =="
# 997 Hz: prime sampling rate, avoids lockstep with periodic timers.
perf record -F 997 -g --call-graph dwarf -o "$DATA" -- \
  ./target/release/live run "${@:---quick}"

echo "== hottest frames =="
perf report -i "$DATA" --stdio --percent-limit 1 | head -60

if command -v stackcollapse-perf.pl >/dev/null 2>&1 \
  && command -v flamegraph.pl >/dev/null 2>&1; then
  echo "== flamegraph =="
  perf script -i "$DATA" | stackcollapse-perf.pl | flamegraph.pl \
    > "$OUT_DIR/flame.svg"
  echo "profile: wrote $OUT_DIR/flame.svg"
else
  echo "profile: flamegraph.pl not on PATH; raw data at $DATA" \
    "(render later with: perf script -i $DATA | stackcollapse-perf.pl | flamegraph.pl)"
fi

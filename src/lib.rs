//! # srm-repro — workspace façade
//!
//! Re-exports the crates of the SRM reproduction so the repository-level
//! `examples/` and `tests/` can exercise the whole public API:
//!
//! - [`netsim`]: the deterministic multicast network simulator;
//! - [`srm`]: the Scalable Reliable Multicast framework (the paper's
//!   contribution);
//! - [`wb`]: the distributed whiteboard application;
//! - [`srm_analysis`]: closed-form models of Sections IV and VI;
//! - [`srm_baselines`]: the sender-based ACK and unicast-NACK baselines;
//! - [`srm_sim`]: the JSON scenario runner;
//! - [`srm_toolkit`]: the §IX-D toolkit with news and route-update tools;
//! - [`srm_experiments`]: the figure-regeneration harness.

pub use netsim;
pub use srm;
pub use srm_analysis;
pub use srm_baselines;
pub use srm_sim;
pub use srm_toolkit;
pub use srm_experiments;
pub use wb;

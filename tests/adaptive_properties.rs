//! Property tests on the adaptive timer algorithm: under *any* interleaving
//! of period boundaries, duplicates, sends, delay reports, and
//! far-duplicate observations, the parameters stay inside their clamps and
//! the running averages stay finite and non-negative.

use proptest::prelude::*;
use srm::adaptive::AdaptiveTimers;
use srm::{AdaptiveConfig, AduName, PageId, SeqNo, SourceId, TimerParams};

#[derive(Clone, Debug)]
enum Ev {
    NewPeriod(u64),
    Dup,
    Sent,
    Delay(f64),
    FarDup(f64, f64),
    RepPeriod(u64),
    RepDup,
    RepSent,
    RepDelay(f64),
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u64..40).prop_map(Ev::NewPeriod),
        Just(Ev::Dup),
        Just(Ev::Sent),
        (0.0f64..20.0).prop_map(Ev::Delay),
        (0.0f64..10.0, 0.01f64..10.0).prop_map(|(a, b)| Ev::FarDup(a, b)),
        (0u64..40).prop_map(Ev::RepPeriod),
        Just(Ev::RepDup),
        Just(Ev::RepSent),
        (0.0f64..20.0).prop_map(Ev::RepDelay),
    ]
}

fn item(q: u64) -> AduName {
    AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parameters_always_clamped(
        events in prop::collection::vec(arb_event(), 0..400),
        c1_0 in 0.5f64..2.0,
        c2_0 in 1.0f64..64.0,
    ) {
        let cfg = AdaptiveConfig::default();
        let mut a = AdaptiveTimers::new(cfg, TimerParams {
            c1: c1_0,
            c2: c2_0,
            d1: c1_0,
            d2: c2_0,
        });
        for e in events {
            match e {
                Ev::NewPeriod(q) => a.on_request_timer_set(item(q)),
                Ev::Dup => a.on_duplicate_request(),
                Ev::Sent => a.on_request_sent(),
                Ev::Delay(d) => a.on_request_delay(d),
                Ev::FarDup(t, o) => { a.on_far_duplicate_request(t, o); }
                Ev::RepPeriod(q) => a.on_repair_timer_set(item(q)),
                Ev::RepDup => a.on_duplicate_repair(),
                Ev::RepSent => a.on_repair_sent(),
                Ev::RepDelay(d) => a.on_repair_delay(d),
            }
            let p = a.params;
            prop_assert!(p.c1 >= cfg.min_c1 - 1e-9 && p.c1 <= cfg.max_c1 + 1e-9, "C1={}", p.c1);
            prop_assert!(p.c2 >= cfg.min_c2 - 1e-9 && p.c2 <= cfg.max_c2 + 1e-9, "C2={}", p.c2);
            prop_assert!(p.d1 >= cfg.min_c1 - 1e-9 && p.d1 <= cfg.max_c1 + 1e-9, "D1={}", p.d1);
            prop_assert!(p.d2 >= cfg.min_c2 - 1e-9 && p.d2 <= cfg.max_c2 + 1e-9, "D2={}", p.d2);
            prop_assert!(a.ave_dup_req().is_finite() && a.ave_dup_req() >= 0.0);
            prop_assert!(a.ave_req_delay().is_finite() && a.ave_req_delay() >= 0.0);
            prop_assert!(a.ave_dup_rep().is_finite() && a.ave_dup_rep() >= 0.0);
            prop_assert!(a.ave_rep_delay().is_finite() && a.ave_rep_delay() >= 0.0);
        }
    }

    /// Sustained duplicate pressure always widens C2; sustained quiet with
    /// high delay always narrows it (monotone responses).
    #[test]
    fn monotone_response_to_pressure(rounds in 5usize..60) {
        let mut noisy = AdaptiveTimers::new(AdaptiveConfig::default(), TimerParams {
            c1: 1.0, c2: 5.0, d1: 1.0, d2: 5.0,
        });
        for q in 0..rounds as u64 {
            noisy.on_request_timer_set(item(q));
            for _ in 0..6 { noisy.on_duplicate_request(); }
        }
        prop_assert!(noisy.params.c2 > 5.0, "dups widen C2: {}", noisy.params.c2);

        let mut quiet = AdaptiveTimers::new(AdaptiveConfig::default(), TimerParams {
            c1: 1.0, c2: 5.0, d1: 1.0, d2: 5.0,
        });
        for q in 0..rounds as u64 {
            quiet.on_request_timer_set(item(q));
            quiet.on_request_delay(3.0);
        }
        prop_assert!(quiet.params.c2 < 5.0, "delay narrows C2: {}", quiet.params.c2);
    }
}

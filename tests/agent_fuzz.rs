//! Adversarial input: an SRM agent fed arbitrary bytes, truncated frames,
//! and randomly mutated valid messages must never panic, never wedge the
//! simulation, and must account for every undecodable packet.

use bytes::Bytes;
use netsim::generators::chain;
use netsim::{GroupId, NodeId, SendOptions, SimTime, Simulator};
use proptest::prelude::*;
use srm::wire::{Body, Header, Message, RequestBody};
use srm::{AduName, PageId, SeqNo, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(2);

fn harness() -> Simulator<SrmAgent> {
    let mut sim = Simulator::new(chain(2), 77);
    let mut cfg = SrmConfig::fixed(2);
    // A production deployment bounds re-requests; without a bound, a forged
    // request for nonexistent data would retry forever.
    cfg.max_request_rounds = Some(2);
    let mut a = SrmAgent::new(SourceId(0), GROUP, cfg);
    a.session_enabled = false;
    sim.install(NodeId(0), a);
    sim.join(NodeId(0), GROUP);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn garbage_packets_never_panic(frames in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..120), 1..12)) {
        let mut sim = harness();
        let n = frames.len() as u64;
        for f in frames {
            sim.send_from(NodeId(1), GROUP, Bytes::from(f), SendOptions::default());
        }
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
        let a = sim.app(NodeId(0)).unwrap();
        // Exact accounting: every frame either decoded (rare but possible
        // with random bytes — e.g. a lucky tag byte) or was counted as an
        // error. Nothing vanishes silently.
        prop_assert_eq!(a.metrics.decode_errors + a.metrics.valid_messages, n);
        // And the agent is still functional afterwards.
        let page = PageId::new(SourceId(0), 0);
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from_static(b"ok"));
        });
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn mutated_valid_messages_never_panic(
        flips in prop::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..6),
        seq in 0u64..100,
    ) {
        // Start from a well-formed request and flip random bits.
        let m = Message {
            header: Header {
                sender: SourceId(9),
                timestamp: SimTime::from_secs(1),
            },
            body: Body::Request(RequestBody {
                name: AduName::new(SourceId(9), PageId::new(SourceId(9), 0), SeqNo(seq)),
                dist_to_source: 2.0,
            }),
        };
        let mut bytes = m.encode().to_vec();
        for (idx, bit) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
        }
        let mut sim = harness();
        sim.send_from(NodeId(1), GROUP, Bytes::from(bytes), SendOptions::default());
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
        // Whatever happened (decode error, spurious request state, ignored
        // message), the agent is still functional: it can originate data.
        let page = PageId::new(SourceId(0), 0);
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from_static(b"still alive"));
        });
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    }
}

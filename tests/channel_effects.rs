//! Channel effects beyond the Ideal model: SRM "requires only the basic IP
//! delivery model — best-effort with possible duplication and reordering of
//! packets" (Section I). These tests exercise exactly that: Bernoulli loss
//! matches its configured rate, duplicated packets are deduplicated by the
//! agents, and jitter-induced reordering does not break ADU delivery.

use bytes::Bytes;
use netsim::generators::chain;
use netsim::loss::BernoulliLoss;
use netsim::{
    GroupId, NodeId, RandomEffects, SendOptions, SimDuration, SimTime, Simulator, TraceEvent,
};
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(3);

fn page0() -> PageId {
    PageId::new(SourceId(0), 0)
}

/// A chain of SRM agents, sessions off, distances pre-warmed.
fn srm_chain(n: usize, seed: u64) -> Simulator<SrmAgent> {
    let mut sim = Simulator::new(chain(n), seed);
    let cfg = SrmConfig::fixed(n);
    for i in 0..n {
        let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg.clone());
        a.session_enabled = false;
        a.set_current_page(page0());
        for j in 0..n {
            if i != j {
                a.distances_mut().set_distance(
                    SourceId(j as u64),
                    SimDuration::from_secs((i as i64 - j as i64).unsigned_abs()),
                );
            }
        }
        sim.install(NodeId(i as u32), a);
        sim.join(NodeId(i as u32), GROUP);
    }
    sim
}

/// The empirical drop rate of `BernoulliLoss` converges to the configured
/// probability (measured on raw link crossings, no agents involved).
#[test]
fn bernoulli_loss_converges_to_configured_probability() {
    let mut sim: Simulator<SrmAgent> = Simulator::new(chain(2), 1);
    sim.join(NodeId(1), GROUP);
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.3, 77)));
    let n = 5_000u64;
    for _ in 0..n {
        sim.send_from(
            NodeId(0),
            GROUP,
            Bytes::from_static(b"x"),
            SendOptions::default(),
        );
    }
    assert!(sim.run_until_idle(SimTime::from_secs(10_000)));
    let l = sim
        .topology()
        .link_between(NodeId(0), NodeId(1))
        .expect("chain link");
    let ls = &sim.stats.links[l.index()];
    assert_eq!(ls.drops + ls.packets, n, "every crossing dropped or forwarded");
    let rate = ls.drops as f64 / n as f64;
    assert!(
        (rate - 0.3).abs() < 0.02,
        "empirical loss rate {rate} should be ≈ 0.3"
    );
}

/// With 100% per-hop duplication every member sees each ADU several times;
/// the store keeps exactly one copy and no spurious recovery starts.
#[test]
fn duplicated_packets_are_deduplicated_by_agents() {
    let mut sim = srm_chain(3, 2);
    sim.set_channel_effects(Box::new(RandomEffects::new(1.0, SimDuration::ZERO, 9)));
    for k in 0..5u64 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page0(), Bytes::from_static(b"dup"));
        });
        sim.run_until(SimTime::from_secs(k + 1));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(1_000)));
    for i in [1u32, 2] {
        let a = sim.app(NodeId(i)).unwrap();
        assert_eq!(a.store().len(), 5, "node {i}: one stored copy per ADU");
        assert!(
            a.metrics.data_received > 5,
            "node {i}: duplicates actually arrived ({} receptions)",
            a.metrics.data_received
        );
        assert!(a.metrics.all_recovered(), "node {i}: no stuck recovery");
        assert_eq!(a.metrics.requests_sent, 0, "node {i}: duplication is not loss");
    }
}

/// Heavy per-copy jitter reorders packets in flight; every ADU still
/// arrives and the agents end consistent (late originals or repairs close
/// any gap the reordering faked).
#[test]
fn jitter_reordering_does_not_break_adu_delivery() {
    let mut sim = srm_chain(2, 3);
    sim.trace.enable();
    sim.set_channel_effects(Box::new(RandomEffects::new(
        0.0,
        SimDuration::from_secs(5),
        11,
    )));
    for k in 0..10u32 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page0(), Bytes::from_static(b"jit"));
        });
        sim.run_until(SimTime::from_secs_f64(0.2 * f64::from(k + 1)));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(1_000)));

    // The jitter really reordered deliveries at node 1…
    let arrivals: Vec<u64> = sim
        .trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Deliver { node, pkt, .. } if *node == NodeId(1) => Some(pkt.0),
            _ => None,
        })
        .collect();
    assert!(
        arrivals.windows(2).any(|w| w[0] > w[1]),
        "expected at least one inversion in {arrivals:?}"
    );

    // …and the receiver still ended up with the complete in-order stream.
    let a1 = sim.app(NodeId(1)).unwrap();
    assert_eq!(a1.store().len(), 10, "all ADUs present despite reordering");
    assert!(a1.metrics.all_recovered());
}

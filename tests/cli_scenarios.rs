//! Every sample scenario in `scenarios/` must parse and run to a healthy
//! report — they are the `srm-sim` user's first contact with the project.

use srm_sim::{run, Scenario};
use std::path::PathBuf;

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn load(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Scenario::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn all_sample_scenarios_parse() {
    let mut count = 0;
    for entry in std::fs::read_dir(scenario_dir()).expect("scenarios dir") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            Scenario::from_json(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            count += 1;
        }
    }
    assert!(count >= 3, "sample scenarios present ({count})");
}

#[test]
fn fec_stream_scenario_needs_no_requests() {
    let r = run(&load("fec_stream.json")).expect("runs");
    assert_eq!(r.complete_receivers, r.members - 1);
    assert_eq!(r.total_requests, 0, "parity covers the scripted losses");
    assert!(r.hops.parity > 0);
}

#[test]
fn star_scenario_recovers_shared_loss() {
    let r = run(&load("local_recovery_dumbbell.json")).expect("runs");
    assert_eq!(r.complete_receivers, r.members - 1);
    assert!(r.total_requests >= 1);
    assert!(r.per_member.iter().all(|m| m.all_recovered));
}

#[test]
fn lossy_tree_scenario_converges() {
    // The heavyweight sample: 30 members, 2% Bernoulli loss, live session
    // messages. Converges within its settle budget.
    let r = run(&load("lossy_tree.json")).expect("runs");
    assert_eq!(r.complete_receivers, r.members - 1);
    assert!(r.total_sessions > 0, "session machinery ran");
}

//! Determinism: a simulation is a pure function of its inputs and seeds.
//! The paper's methodology (20 seeded simulations per plotted point,
//! medians and quartiles) is only meaningful if reruns are bit-identical.

use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm::SrmConfig;

fn spec(seed: u64, timer_seed: Option<u64>) -> ScenarioSpec {
    ScenarioSpec {
        topo: TopoSpec::RandomTree { n: 60 },
        group_size: Some(25),
        drop: DropSpec::RandomTreeLink,
        cfg: SrmConfig::adaptive(25),
        seed,
        timer_seed,
    }
}

/// Fingerprint several rounds of a session.
fn fingerprint(seed: u64, timer_seed: Option<u64>, rounds: usize) -> Vec<(u64, u64, String)> {
    let mut s = spec(seed, timer_seed).build();
    (0..rounds)
        .map(|_| {
            let r = run_round(&mut s, 100_000.0);
            let delay = r
                .last_member_delay_over_rtt(&s)
                .map(|d| format!("{d:.12}"))
                .unwrap_or_default();
            (r.requests, r.repairs, delay)
        })
        .collect()
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = fingerprint(42, None, 8);
    let b = fingerprint(42, None, 8);
    assert_eq!(a, b);
}

#[test]
fn different_master_seeds_differ() {
    let a = fingerprint(1, None, 8);
    let b = fingerprint(2, None, 8);
    assert_ne!(a, b, "distinct scenarios should not coincide on 8 rounds");
}

#[test]
fn timer_seed_varies_only_the_randomness() {
    // Same scenario, different timer draws: the affected member set (and
    // hence per-round episode count) is fixed, but timing details differ.
    let mut s1 = spec(7, Some(100)).build();
    let mut s2 = spec(7, Some(200)).build();
    assert_eq!(s1.members, s2.members);
    assert_eq!(s1.source, s2.source);
    assert_eq!(s1.congested_link, s2.congested_link);
    let r1 = run_round(&mut s1, 100_000.0);
    let r2 = run_round(&mut s2, 100_000.0);
    assert_eq!(r1.affected, r2.affected, "same downstream membership");
    // With overwhelming probability the continuous delays differ.
    let d1 = r1.last_member_delay_over_rtt(&s1);
    let d2 = r2.last_member_delay_over_rtt(&s2);
    assert_ne!(d1, d2, "timer seeds drive the draws");
}

#[test]
fn trace_replays_identically() {
    // Beyond aggregates: the full event trace matches across reruns.
    let run = || {
        let mut s = spec(11, Some(5)).build();
        s.sim.trace.enable();
        run_round(&mut s, 100_000.0);
        format!("{:?}", s.sim.trace.events().collect::<Vec<_>>())
    };
    assert_eq!(run(), run());
}

//! Fault injection is deterministic: a scenario plus a [`FaultPlan`] is a
//! pure function of its seeds. Reruns must be byte-identical — in the full
//! event trace *and* in every member's metrics — or the fault scenarios
//! cannot serve as regression oracles.

use netsim::{FaultPlan, SimDuration, SimTime};
use srm::SrmConfig;
use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        topo: TopoSpec::RandomTree { n: 60 },
        group_size: Some(25),
        drop: DropSpec::RandomTreeLink,
        cfg: SrmConfig::adaptive(25),
        seed,
        timer_seed: Some(5),
    }
}

/// Build the scenario, optionally script every fault family on top of it,
/// run three recovery rounds, and render the full trace + per-member
/// metrics as one comparable string.
fn fingerprint(seed: u64, with_faults: bool) -> String {
    let mut s = spec(seed).build();
    s.sim.trace.enable();
    if with_faults {
        let l = s.congested_link;
        let victim = s
            .members
            .iter()
            .copied()
            .find(|&m| m != s.source)
            .expect("more than one member");
        s.sim.set_fault_plan(
            FaultPlan::new()
                .clock_skew(SimTime::from_secs(1), victim, 0.25)
                .loss_burst(
                    SimTime::from_secs(2),
                    None,
                    0.1,
                    SimDuration::from_secs(3),
                )
                .link_down(SimTime::from_secs(4), l)
                .link_up(SimTime::from_secs(9), l)
                .crash(SimTime::from_secs(12), victim)
                .restart(SimTime::from_secs(20), victim),
        );
    }
    for _ in 0..3 {
        run_round(&mut s, 100_000.0);
    }
    let metrics: Vec<String> = s
        .members
        .iter()
        .map(|&m| {
            let a = s.sim.app(m).expect("member installed");
            format!(
                "{m:?}: data={} req={} rep={} sess={} crashes={} recoveries={:?} repairs={:?}",
                a.metrics.data_sent,
                a.metrics.requests_sent,
                a.metrics.repairs_sent,
                a.metrics.session_sent,
                a.metrics.crashes,
                a.metrics.recoveries,
                a.metrics.repairs,
            )
        })
        .collect();
    format!(
        "{:?}\n{}",
        s.sim.trace.events().collect::<Vec<_>>(),
        metrics.join("\n")
    )
}

#[test]
fn faulted_runs_are_bit_identical() {
    let a = fingerprint(42, true);
    let b = fingerprint(42, true);
    assert_eq!(a, b, "same spec + same FaultPlan + same seeds → same bytes");
}

#[test]
fn faults_actually_perturb_the_run() {
    // The guard is only meaningful if the plan changes behaviour: the
    // faulted trace must differ from the unfaulted one beyond the Fault
    // markers themselves.
    let clean = fingerprint(42, false);
    let faulted = fingerprint(42, true);
    assert_ne!(clean, faulted);
}

#[test]
fn different_seeds_give_different_faulted_runs() {
    let a = fingerprint(1, true);
    let b = fingerprint(2, true);
    assert_ne!(a, b);
}

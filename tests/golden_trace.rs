//! Golden-file tests for the observability layer: the JSONL timeline of a
//! small deterministic scenario is pinned byte-for-byte, for both a plain
//! single-drop run and a faulted (source-crash) variant.
//!
//! These pins are what makes the tracing layer trustworthy as a debugging
//! tool: if an instrumentation point moves, disappears, or changes its
//! payload — or if recording starts perturbing the protocol's RNG/timer
//! decisions — the golden bytes change and this test says so.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_trace
//! ```

use srm_experiments::trace_cmd::run_traced;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"))
}

/// Compare `actual` against the pinned golden file, or rewrite the pin when
/// `GOLDEN_UPDATE=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_UPDATE=1 cargo test --test golden_trace",
            path.display()
        )
    });
    if expected != actual {
        // Find the first diverging line for a readable failure.
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or_else(
                || {
                    format!(
                        "line counts differ: golden {} vs actual {}",
                        expected.lines().count(),
                        actual.lines().count()
                    )
                },
                |i| {
                    format!(
                        "first difference at line {}:\n  golden: {}\n  actual: {}",
                        i + 1,
                        expected.lines().nth(i).unwrap_or(""),
                        actual.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "{name} timeline diverged from golden file {}\n{mismatch}\n\
             If the change is intentional, regenerate with \
             GOLDEN_UPDATE=1 cargo test --test golden_trace",
            path.display()
        );
    }
}

#[test]
fn chain_drop_timeline_matches_golden() {
    let run = run_traced("chain-drop").expect("known scenario");
    assert_golden("chain_drop", &run.timeline.to_jsonl());
}

#[test]
fn source_crash_timeline_matches_golden() {
    let run = run_traced("source-crash").expect("known scenario");
    let jsonl = run.timeline.to_jsonl();
    // The faulted variant must carry its fault window in the export.
    assert!(jsonl.contains("\"fault\":\"crash\""), "fault span missing");
    assert_golden("source_crash", &jsonl);
}

/// The issue's acceptance criterion, pinned at the tier-1 level: the traced
/// chain-drop scenario reconstructs a complete request→suppression→repair
/// chain whose timestamps are ordered.
#[test]
fn chain_drop_reconstructs_a_complete_recovery_chain() {
    let run = run_traced("chain-drop").expect("known scenario");
    let chains = run.timeline.chains();
    let c = chains
        .iter()
        .find(|c| c.is_complete())
        .unwrap_or_else(|| panic!("no complete chain in {chains:?}"));
    let repair = c.repair_at.expect("complete chain has a repair");
    let recovered = c.recovered_at.expect("complete chain has a recovery");
    assert!(c.detected_at <= c.request_at);
    assert!(c.request_at <= repair);
    assert!(repair <= recovered);
    assert!(!c.suppressed.is_empty(), "someone must have been suppressed");
    assert!(c.recovered_members >= 1);
    // And the rendering carries the complete-marker the CLI prints.
    assert!(c.render().ends_with("[complete]"));
}

/// Re-running a traced scenario yields identical bytes — the determinism
/// the golden files rely on.
#[test]
fn traced_runs_are_reproducible() {
    let a = run_traced("source-crash").unwrap().timeline.to_jsonl();
    let b = run_traced("source-crash").unwrap().timeline.to_jsonl();
    assert_eq!(a, b);
}

//! srm-hub end-to-end: demux partition, node equivalence, multi-group
//! fan-out, and the control-plane golden transcript.
//!
//! Four angles on the multi-session hub:
//!
//! 1. **Partition property** (proptest): `shard_of` is a total, stable
//!    partition of the group-id space, and the demux's cheap
//!    [`Envelope::precheck`] routes every well-formed frame to exactly the
//!    shard the full decode would — prechecking changes *where* a frame's
//!    fate is decided, never the fate.
//! 2. **Node equivalence**: a hub hosting one group delivers the same
//!    payload bytes to a peer that a standalone `srm-node` sender would —
//!    the hub is a packaging of the same agent, not a different protocol.
//! 3. **Concurrent groups**: one hub hosts 8 groups on loopback, each
//!    with its own receiver node; every group's ADUs arrive, sessions
//!    stay isolated, and passive [`GroupMonitor`]s on two of the groups
//!    reconstruct member health from session messages alone (§III-A).
//! 4. **Control golden**: a scripted line-JSON session replays against
//!    `tests/golden/hub_control.jsonl` byte-for-byte, including malformed
//!    commands and duplicate-group errors.
//!
//! Plus the satellite check that a standalone node counts (rather than
//! silently eats) well-formed frames for groups it never joined.

use bytes::Bytes;
use netsim::GroupId;
use proptest::prelude::*;
use srm::{LivenessConfig, Message, PageId, SourceId, SrmConfig};
use srm_transport::hub::{Hub, HubOptions};
use srm_transport::{
    handle_line, shard_of, Envelope, GroupMonitor, GroupSpec, Harness, Mode, Node, NodeHandle,
    NodeOptions, WallClock,
};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn spec(group: u32, peers: Vec<SocketAddr>, id: u64, members: usize) -> GroupSpec {
    GroupSpec {
        group,
        peers,
        id,
        members,
        rate: None,
        burst: None,
        dist_ms: Some(5),
    }
}

fn spawn_receiver(id: u64, group: u32, members: usize, hub: SocketAddr) -> NodeHandle {
    let opts = NodeOptions::new(SourceId(id), GroupId(group), SrmConfig::fixed(members));
    Node::spawn(
        "127.0.0.1:0".parse().unwrap(),
        Mode::Mesh { peers: vec![hub] },
        opts,
    )
    .expect("receiver node binds")
}

/// Poll `node` until it has delivered `want` ADUs (or the deadline hits);
/// returns the payloads in delivery order.
fn collect_delivered(node: &NodeHandle, want: usize, deadline: Instant) -> Vec<Vec<u8>> {
    let mut got = Vec::new();
    while got.len() < want && Instant::now() < deadline {
        got.extend(node.take_delivered().into_iter().map(|d| d.payload.to_vec()));
        std::thread::sleep(Duration::from_millis(20));
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shard_of` partitions the id space (total, in range, stable), and
    /// demux routing by precheck agrees with routing by full decode for
    /// every well-formed frame; a corrupted magic fails both the same way.
    #[test]
    fn demux_partition_is_total_stable_and_decode_equivalent(
        groups in proptest::collection::vec(0u32..1_000_000, 1..32),
        shards in 1usize..16,
        payload_len in 0usize..64,
    ) {
        for &g in &groups {
            let s = shard_of(g, shards);
            prop_assert!(s < shards, "shard out of range");
            prop_assert_eq!(s, shard_of(g, shards), "must be stable");

            let wire = Envelope {
                src: 7,
                group: g,
                ttl: 3,
                initial_ttl: 5,
                admin_scoped: false,
                flow: 2,
                payload: Bytes::from(vec![0xAB; payload_len]),
            }
            .encode();
            // The cheap routing read and the full decode agree on the key.
            prop_assert_eq!(Envelope::precheck(&wire).ok(), Some(g));
            let view = Envelope::decode_view(&wire).expect("well-formed frame decodes");
            prop_assert_eq!(shard_of(view.group, shards), s);

            // Corrupt magic: precheck refuses, and so does the decode the
            // shard would have attempted — no silent divergence.
            let mut bad = wire.to_vec();
            bad[0] ^= 0xFF;
            prop_assert!(Envelope::precheck(&bad).is_err());
            prop_assert!(Envelope::decode_view(&bad).is_err());
        }
    }
}

/// A hub-hosted group speaks the same bytes as a standalone node: the
/// same ADU texts sent (a) node→node via the single-session runtime and
/// (b) hub→node via a hub-hosted group arrive as identical payload sets.
#[test]
fn hub_group_is_payload_equivalent_to_a_single_group_node() {
    const N: u32 = 6;
    let texts: Vec<String> = (0..N).map(|i| format!("equiv #{i}")).collect();

    // (a) Plain two-node session, member 1 sends.
    let cfg = SrmConfig::fixed(2);
    let h = Harness::loopback(2, GroupId(1), &cfg, |_, _, _| {}).expect("harness binds");
    let page = PageId::new(SourceId(1), 0);
    for t in &texts {
        h.nodes[0].send_data(page, Bytes::from(t.clone().into_bytes()));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut via_node = collect_delivered(&h.nodes[1], N as usize, deadline);
    drop(h.shutdown());

    // (b) Hub hosts group 1 as member 1; a standalone node receives.
    let hub = Hub::spawn("127.0.0.1:0".parse().unwrap(), HubOptions::default()).unwrap();
    let receiver = spawn_receiver(2, 1, 2, hub.local_addr());
    hub.create(spec(1, vec![receiver.local_addr()], 1, 2), false)
        .expect("create hosts the group");
    // `send` with count > 1 suffixes " #i" — the same strings as above.
    hub.send(1, "equiv", N).expect("hub publishes");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut via_hub = collect_delivered(&receiver, N as usize, deadline);

    let st = hub.stats();
    assert_eq!(st.groups.len(), 1);
    assert_eq!(st.groups[0].data_sent, u64::from(N));
    assert_eq!(
        st.frames_attempted,
        st.frames_sent + st.send_errors,
        "hub frame accounting: {st:?}"
    );
    drop(receiver.shutdown());
    hub.shutdown();

    via_node.sort();
    via_hub.sort();
    let mut expected: Vec<Vec<u8>> = texts.iter().map(|t| t.clone().into_bytes()).collect();
    expected.sort();
    assert_eq!(via_node, expected, "single-node session dropped payloads");
    assert_eq!(via_hub, expected, "hub-hosted session dropped payloads");
    assert_eq!(via_node, via_hub, "hub and node payload bytes diverge");
}

/// One hub, eight concurrent groups, one receiver node each; passive
/// monitors on two groups reconstruct the hub member's health purely from
/// what it multicasts. Sessions must not bleed into each other.
#[test]
fn eight_concurrent_groups_deliver_independently_under_one_hub() {
    const GROUPS: u32 = 8;
    const ADUS: u32 = 5;
    let hub = Hub::spawn(
        "127.0.0.1:0".parse().unwrap(),
        HubOptions {
            shards: 4,
            ..HubOptions::default()
        },
    )
    .unwrap();

    // Two passive monitor sockets, listed as extra fan-out peers on their
    // groups (a unicast-mesh monitor must be in the sender's peer list).
    let monitored = [1u32, 2u32];
    let mon_socks: Vec<UdpSocket> = monitored
        .iter()
        .map(|_| {
            let s = UdpSocket::bind("127.0.0.1:0").unwrap();
            s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            s
        })
        .collect();

    let mut receivers = Vec::new();
    for g in 1..=GROUPS {
        let receiver = spawn_receiver(2, g, 2, hub.local_addr());
        let mut peers = vec![receiver.local_addr()];
        if let Some(i) = monitored.iter().position(|&m| m == g) {
            peers.push(mon_socks[i].local_addr().unwrap());
        }
        hub.create(spec(g, peers, 1, 2), false).expect("create group");
        receivers.push(receiver);
    }

    for g in 1..=GROUPS {
        hub.send(g, &format!("g{g}"), ADUS).expect("hub publishes");
    }

    // Every group's receiver gets exactly its own ADUs.
    let deadline = Instant::now() + Duration::from_secs(60);
    for (i, receiver) in receivers.iter().enumerate() {
        let g = i as u32 + 1;
        let mut got = collect_delivered(receiver, ADUS as usize, deadline);
        got.sort();
        let mut expected: Vec<Vec<u8>> = (0..ADUS)
            .map(|a| format!("g{g} #{a}").into_bytes())
            .collect();
        expected.sort();
        assert_eq!(got, expected, "group {g} delivered the wrong set");
    }

    let st = hub.stats();
    assert_eq!(st.groups.len(), GROUPS as usize, "stats must list all groups");
    for g in &st.groups {
        assert_eq!(g.data_sent, u64::from(ADUS), "group {} data_sent", g.group);
    }

    // Receivers only talk back via periodic session messages (≥1 s apart),
    // so give every group time to hear its peer before draining.
    let rx_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let st = hub.stats();
        if st.groups.iter().all(|g| g.rx_frames > 0) {
            break;
        }
        if Instant::now() >= rx_deadline {
            panic!("some group never heard its receiver: {:?}", st.groups);
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drain everything: each group's last act is a session message, which
    // is exactly what the monitors need to finish their picture.
    let drained = hub.drain_all();
    assert_eq!(drained.groups, GROUPS, "every group drains");
    assert_eq!(drained.data_sent, u64::from(GROUPS * ADUS));

    // Feed the monitors from their sockets until they run dry.
    let clock = WallClock::new();
    let cfg = SrmConfig::fixed(2);
    for (i, sock) in mon_socks.iter().enumerate() {
        let g = monitored[i];
        let mut mon = GroupMonitor::new(&cfg, LivenessConfig::default());
        let mut buf = [0u8; 65_535];
        let until = Instant::now() + Duration::from_secs(2);
        while Instant::now() < until {
            match sock.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Ok(env) = Envelope::decode(&buf[..n]) {
                        assert_eq!(env.group, g, "monitor got another group's frame");
                        if let Ok(msg) = Message::decode(env.payload.clone()) {
                            mon.observe(clock.now(), &msg);
                        }
                    }
                }
                Err(_) => break, // timed out: the drain already flushed
            }
        }
        let health = mon.health(clock.now());
        let hub_member = health
            .iter()
            .find(|m| m.member == SourceId(1))
            .unwrap_or_else(|| panic!("monitor on group {g} never heard the hub: {health:?}"));
        assert!(hub_member.frames_heard > 0);
        assert!(
            hub_member.sessions_heard >= 1,
            "drain must leave a final session message behind: {hub_member:?}"
        );
    }

    let st = hub.stats();
    assert_eq!(
        st.frames_attempted,
        st.frames_sent + st.send_errors,
        "hub-wide frame accounting after drain: {st:?}"
    );
    for r in receivers {
        drop(r.shutdown());
    }
    hub.shutdown();
}

/// The control plane's scripted replies, byte-for-byte against the golden
/// transcript — create/join/send/drain/stop plus malformed input and
/// duplicate-group errors. `stats` is checked by shape only (its counters
/// are live).
#[test]
fn control_plane_replies_match_the_golden_transcript() {
    let hub = Hub::spawn(
        "127.0.0.1:0".parse().unwrap(),
        HubOptions {
            shards: 4,
            ..HubOptions::default()
        },
    )
    .unwrap();
    let script = [
        r#"{"cmd":"create","group":1}"#,
        r#"{"cmd":"create","group":1}"#,
        r#"{"cmd":"join","group":1}"#,
        r#"{"cmd":"join","group":2}"#,
        r#"{"cmd":"send","group":1,"text":"hi","count":2}"#,
        r#"{"cmd":"send","group":9,"text":"hi"}"#,
        r#"garbage"#,
        r#"{"cmd":"warp"}"#,
        r#"{"cmd":"create","group":-1}"#,
        r#"{"cmd":"send","group":1}"#,
        r#"{"cmd":"drain","group":1}"#,
        r#"{"cmd":"drain","group":1}"#,
        r#"{"cmd":"stop"}"#,
    ];
    let replies: Vec<String> = script.iter().map(|line| handle_line(&hub, line)).collect();

    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/hub_control.jsonl");
    let golden = std::fs::read_to_string(&golden_path).expect("golden transcript exists");
    let expected: Vec<&str> = golden.lines().collect();
    assert_eq!(
        replies.len(),
        expected.len(),
        "script and golden transcript must pair up"
    );
    for (i, (got, want)) in replies.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            got, want,
            "control reply {i} diverged from {}",
            golden_path.display()
        );
    }

    // `stats` is live, so pin only its shape: ok, cmd, a hub rollup, and
    // a (now empty) group list.
    let stats = handle_line(&hub, r#"{"cmd":"stats"}"#);
    assert!(stats.starts_with(r#"{"ok":true,"cmd":"stats","hub":{"#), "{stats}");
    assert!(stats.ends_with(r#""groups":[]}"#), "{stats}");
    hub.shutdown();
}

/// Satellite check on the standalone node: a well-formed frame for a group
/// this node never joined is counted (`rx_unjoined_group`), not silently
/// dropped.
#[test]
fn node_counts_well_formed_frames_for_unjoined_groups() {
    let opts = NodeOptions::new(SourceId(1), GroupId(1), SrmConfig::fixed(2));
    let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
    let node = Node::spawn(
        "127.0.0.1:0".parse().unwrap(),
        Mode::Mesh { peers: vec![peer] },
        opts,
    )
    .expect("node binds");

    let stray = UdpSocket::bind("127.0.0.1:0").unwrap();
    let frame = Envelope {
        src: 9,
        group: 99, // never joined here
        ttl: 4,
        initial_ttl: 4,
        admin_scoped: false,
        flow: 0,
        payload: Bytes::from_static(b"lost tourist"),
    }
    .encode();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seen = 0;
    while seen == 0 && Instant::now() < deadline {
        stray.send_to(&frame, node.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        seen = node.stats().rx_unjoined_group;
    }
    assert!(seen >= 1, "unjoined-group frames must be counted");
    drop(node.shutdown());
}

//! Section I: SRM "requires only the basic IP delivery model — best-effort
//! with possible duplication and reordering of packets". These tests
//! subject whole sessions to duplication, heavy jitter (reordering), and
//! loss at once, and check that the ADU model absorbs it: exactly-once
//! delivery to the application, convergence, and no spurious recovery
//! storms from out-of-order arrivals.

use bytes::Bytes;
use netsim::effects::RandomEffects;
use netsim::generators::bounded_degree_tree;
use netsim::loss::BernoulliLoss;
use netsim::routing::SpTree;
use netsim::{GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(4);

fn build(seed: u64, members: &[NodeId]) -> (Simulator<SrmAgent>, PageId) {
    let topo = bounded_degree_tree(60, 3);
    let mut sim = Simulator::new(topo, seed);
    let source = members[0];
    let page = PageId::new(SourceId(source.0 as u64), 0);
    let trees: Vec<(NodeId, SpTree)> = members
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), GROUP, SrmConfig::fixed(members.len()));
        a.session_enabled = false; // tests re-enable where needed
        a.set_current_page(page);
        for (o, t) in &trees {
            if *o != m {
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), t.distance(m));
            }
        }
        sim.install(m, a);
        sim.join(m, GROUP);
    }
    (sim, page)
}

#[test]
fn duplication_never_double_delivers() {
    let members = [NodeId(1), NodeId(10), NodeId(25), NodeId(40)];
    let (mut sim, page) = build(3, &members);
    // Every hop duplicates 30% of the time.
    sim.set_channel_effects(Box::new(RandomEffects::new(
        0.3,
        SimDuration::ZERO,
        99,
    )));
    for k in 0..10u8 {
        sim.exec(members[0], |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(10));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    for &m in &members[1..] {
        let a = sim.app_mut(m).unwrap();
        assert_eq!(a.store().len(), 10, "member {m:?} holds each ADU once");
        let delivered = a.take_delivered();
        assert_eq!(
            delivered.len(),
            10,
            "member {m:?}: exactly-once application delivery despite duplication"
        );
    }
}

#[test]
fn reordering_does_not_trigger_request_storms() {
    let members = [NodeId(1), NodeId(10), NodeId(25), NodeId(40)];
    let (mut sim, page) = build(5, &members);
    // Jitter up to 1.5 s per hop: heavy reordering but no loss. With
    // C1 = 2 the request timers leave room for late packets ("the only
    // benefits in setting C1 greater than 0 are to avoid unnecessary
    // requests from out-of-order packets…", Section IV-B).
    sim.set_channel_effects(Box::new(RandomEffects::new(
        0.0,
        SimDuration::from_secs_f64(1.5),
        44,
    )));
    for k in 0..20u8 {
        sim.exec(members[0], |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs_f64(0.3));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(100_000)));
    let mut total_requests = 0;
    for &m in &members {
        let a = sim.app(m).unwrap();
        if m != members[0] {
            assert_eq!(a.store().len(), 20, "member {m:?} complete");
        }
        total_requests += a.metrics.requests_sent;
    }
    // Nothing was lost; late arrivals should rarely beat a C1·d timer.
    assert!(
        total_requests <= 4,
        "reordering alone caused {total_requests} requests"
    );
}

#[test]
fn all_three_impairments_together_still_converge() {
    let members = [NodeId(1), NodeId(10), NodeId(25), NodeId(40), NodeId(55)];
    let (mut sim, page) = build(7, &members);
    sim.set_channel_effects(Box::new(RandomEffects::new(
        0.1,
        SimDuration::from_secs_f64(0.8),
        77,
    )));
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.03, 88)));
    // Periodic session messages cover tail losses.
    for &m in &members {
        sim.app_mut(m).unwrap().session_enabled = true;
    }
    for k in 0..15u8 {
        sim.exec(members[0], |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(15));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(20_000));
    for &m in &members[1..] {
        let a = sim.app(m).unwrap();
        assert_eq!(
            a.store().len(),
            15,
            "member {m:?} converged under loss + dup + reorder"
        );
    }
}

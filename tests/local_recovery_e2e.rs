//! End-to-end local recovery (Section VII-B): TTL scoping with one- and
//! two-step repairs, administrative scoping, scope widening on unanswered
//! requests, and loss-neighborhood discovery from session messages.

use bytes::Bytes;
use netsim::generators::{bounded_degree_tree, chain};
use netsim::loss::ScriptedDrop;
use netsim::routing::SpTree;
use netsim::{flow, GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{PageId, RecoveryScope, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(1);

fn install(
    sim: &mut Simulator<SrmAgent>,
    members: &[NodeId],
    source: NodeId,
    cfg: &SrmConfig,
) -> PageId {
    let page = PageId::new(SourceId(source.0 as u64), 0);
    let trees: Vec<(NodeId, SpTree)> = members
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), GROUP, cfg.clone());
        a.session_enabled = false;
        a.set_current_page(page);
        for (o, t) in &trees {
            if *o != m {
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), t.distance(m));
            }
        }
        sim.install(m, a);
        sim.join(m, GROUP);
    }
    page
}

fn drop_then_reveal(sim: &mut Simulator<SrmAgent>, source: NodeId, page: PageId) {
    sim.exec(source, |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"k"));
    });
    sim.run_until(sim.now() + SimDuration::from_secs_f64(0.01));
    sim.exec(source, |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"k+1"));
    });
}

/// TTL-scoped recovery on a chain: the request (TTL 4) stays local, the
/// two-step repair covers exactly the request's reach, and the far end of
/// the chain never sees recovery traffic.
#[test]
fn ttl_scoped_two_step_repairs_stay_local() {
    let topo = chain(20);
    let mut sim = Simulator::new(topo, 3);
    let members: Vec<NodeId> = (0..20u32).map(NodeId).collect();
    let cfg = SrmConfig {
        scope: RecoveryScope::Ttl(4),
        ..SrmConfig::fixed(20)
    };
    let page = install(&mut sim, &members, NodeId(0), &cfg);
    // Drop on link (9,10): loss neighborhood = nodes 10..19.
    let l = sim.topology().link_between(NodeId(9), NodeId(10)).unwrap();
    sim.set_loss_model(Box::new(netsim::loss::OneShotLinkDrop::new(
        l,
        NodeId(0),
        flow::DATA,
    )));
    sim.trace.enable();
    drop_then_reveal(&mut sim, NodeId(0), page);
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    // Everyone recovered…
    for i in 10..20u32 {
        assert!(
            sim.app(NodeId(i)).unwrap().metrics.all_recovered(),
            "node {i}"
        );
    }
    // …and recovery traffic never reached the head of the chain.
    let l01 = sim.topology().link_between(NodeId(0), NodeId(1)).unwrap();
    let recovery_on_l01 = sim
        .trace
        .events()
        .filter(|e| match e {
            netsim::TraceEvent::Forward { link, .. } => *link == l01,
            _ => false,
        })
        .count();
    // Only the two data packets cross the first link; requests/repairs are
    // TTL-limited well short of it.
    assert_eq!(recovery_on_l01, 2, "no recovery traffic near the source");
    // A two-step relay happened (requestor re-multicast the repair)
    // whenever the repair named a requestor; at minimum repairs flowed.
    let total_relays: u64 = (0..20u32)
        .map(|i| sim.app(NodeId(i)).unwrap().two_step_relays)
        .sum();
    assert!(total_relays >= 1, "two-step second leg fired");
}

/// Scope widening: with a tiny initial TTL no repairer is in reach; the
/// backed-off re-request widens until someone answers (Section VII-B:
/// "If no repair is received before a backed-off request timer expires,
/// then the next request can be sent with a wider scope").
#[test]
fn unanswered_local_request_widens_scope() {
    let topo = chain(12);
    let mut sim = Simulator::new(topo, 5);
    let members: Vec<NodeId> = (0..12u32).map(NodeId).collect();
    let cfg = SrmConfig {
        scope: RecoveryScope::Ttl(1), // far too small to reach a holder
        ..SrmConfig::fixed(12)
    };
    let page = install(&mut sim, &members, NodeId(0), &cfg);
    // Drop on (2,3); the only holders are 0,1,2 — three or more hops from
    // deep downstream members.
    let l = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
    sim.set_loss_model(Box::new(netsim::loss::OneShotLinkDrop::new(
        l,
        NodeId(0),
        flow::DATA,
    )));
    drop_then_reveal(&mut sim, NodeId(0), page);
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    for i in 3..12u32 {
        assert!(
            sim.app(NodeId(i)).unwrap().metrics.all_recovered(),
            "node {i} recovered after widening"
        );
    }
    // The responder saw multiple request rounds from the widening.
    let requests: u64 = (0..12u32)
        .map(|i| sim.app(NodeId(i)).unwrap().metrics.requests_sent)
        .sum();
    assert!(requests >= 2, "widening needed at least two rounds");
}

/// Administrative scoping: requests flagged admin-scoped stop at zone
/// boundaries; recovery succeeds inside the zone without leaking out, and
/// falls back to global scope when the zone has no holder.
#[test]
fn admin_scoped_recovery_and_fallback() {
    // Zones: nodes 0..5 zone 0, nodes 5..10 zone 1 on a chain of 10.
    let mut topo = chain(10);
    for i in 5..10u32 {
        topo.set_zone(NodeId(i), 1);
    }
    let mut sim = Simulator::new(topo, 8);
    let members: Vec<NodeId> = (0..10u32).map(NodeId).collect();
    let cfg = SrmConfig {
        scope: RecoveryScope::Admin,
        ..SrmConfig::fixed(10)
    };
    let page = install(&mut sim, &members, NodeId(0), &cfg);
    // Case 1: drop inside zone 1, holder available inside zone 1 (nodes 5+
    // got the data; drop on (7,8) → holders 5,6,7 share zone 1).
    let l78 = sim.topology().link_between(NodeId(7), NodeId(8)).unwrap();
    sim.set_loss_model(Box::new(netsim::loss::OneShotLinkDrop::new(
        l78,
        NodeId(0),
        flow::DATA,
    )));
    sim.trace.enable();
    drop_then_reveal(&mut sim, NodeId(0), page);
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    for i in 8..10u32 {
        assert!(sim.app(NodeId(i)).unwrap().metrics.all_recovered());
    }
    // No request crossed the zone boundary (4,5).
    let l45 = sim.topology().link_between(NodeId(4), NodeId(5)).unwrap();
    let crossings = sim
        .trace
        .events()
        .filter(|e| matches!(e, netsim::TraceEvent::Forward { link, .. } if *link == l45))
        .count();
    assert_eq!(crossings, 2, "only the two data packets crossed zones");

    // Case 2: drop ON the zone boundary: the whole of zone 1 misses it; no
    // holder inside the zone, so the first (scoped) request goes
    // unanswered and the widened re-request recovers globally.
    let l45b = l45;
    sim.set_loss_model(Box::new(ScriptedDrop::new(vec![(l45b, 1)])));
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"k2"));
    });
    sim.run_until(sim.now() + SimDuration::from_secs_f64(0.01));
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page, Bytes::from_static(b"k3"));
    });
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    for i in 5..10u32 {
        let a = sim.app(NodeId(i)).unwrap();
        assert!(a.metrics.all_recovered(), "node {i} recovered via fallback");
        assert_eq!(a.store().len(), 4);
    }
}

/// Separate-multicast-group local recovery (Section VII-B2): persistent
/// losses make the suffering member allocate a recovery group and invite
/// its neighborhood; later requests and their repairs travel on that group
/// and stay off the rest of the session's links.
#[test]
fn recovery_group_confines_later_rounds() {
    let topo = chain(16);
    let mut sim = Simulator::new(topo, 12);
    let members: Vec<NodeId> = (0..16u32).map(NodeId).collect();
    let cfg = SrmConfig {
        recovery_groups: Some(srm::config::RecoveryGroupConfig {
            invite_ttl: 3,
            min_losses: 2,
        }),
        ..SrmConfig::fixed(16)
    };
    let page = install(&mut sim, &members, NodeId(0), &cfg);
    // Persistent congestion on link (11,12): the tail {12..15} keeps losing
    // packets 1,2,3 (ordinals on that link).
    let l = sim.topology().link_between(NodeId(11), NodeId(12)).unwrap();
    sim.set_loss_model(Box::new(ScriptedDrop::new(vec![(l, 1), (l, 2), (l, 3)])));
    sim.trace.enable();
    for k in 0..4u8 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(120));
    }
    assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
    // Everyone converged.
    for i in 12..16u32 {
        assert_eq!(sim.app(NodeId(i)).unwrap().store().len(), 4, "node {i}");
    }
    // Someone in the tail created a recovery group, and neighbors joined.
    let creators: Vec<u32> = (0..16u32)
        .filter(|&i| sim.app(NodeId(i)).unwrap().created_recovery_group)
        .collect();
    assert!(!creators.is_empty(), "a recovery group was created");
    assert!(
        creators.iter().all(|&i| i >= 10),
        "creators are in the lossy tail: {creators:?}"
    );
    // Later recovery traffic stayed local: the head links saw only the 4
    // data packets, never requests or repairs for the later losses.
    let l01 = sim.topology().link_between(NodeId(0), NodeId(1)).unwrap();
    let head_crossings = sim
        .trace
        .events()
        .filter(|e| matches!(e, netsim::TraceEvent::Forward { link, .. } if *link == l01))
        .count();
    // 4 data packets, plus the first two losses' global rounds (the group
    // forms after min_losses = 2) — but NOT the third loss's round.
    assert!(
        head_crossings <= 12,
        "head of the chain saw little recovery traffic: {head_crossings}"
    );
    // The recovery group actually has a neighborhood in it.
    let creator = creators[0];
    let rg = netsim::GroupId(0x4000_0000 + creator);
    assert!(
        sim.members(rg).len() >= 2,
        "invitees joined the recovery group"
    );
}

/// Loss-neighborhood discovery: members sharing a lossy subtree see each
/// other's fingerprints in session messages and identify the loss as local.
#[test]
fn loss_fingerprints_identify_neighborhoods() {
    let topo = bounded_degree_tree(40, 3);
    let mut sim = Simulator::new(topo, 4);
    let members: Vec<NodeId> = vec![
        NodeId(0),
        NodeId(5),
        NodeId(6), // near each other
        NodeId(30),
        NodeId(35), // elsewhere
    ];
    let mut cfg = SrmConfig::fixed(5);
    cfg.fingerprint_len = 8;
    let page = install(&mut sim, &members, NodeId(0), &cfg);
    // Re-enable sessions for fingerprint exchange.
    for &m in &members {
        sim.app_mut(m).unwrap().session_enabled = true;
    }
    // Persistently drop the first three data packets on the link into the
    // subtree holding nodes 5 and 6 but not the others: find the link from
    // the SPT of node 0 toward node 5's parent region. Use the first link
    // of node 5's path from 0 that node 30 does not share.
    let spt = SpTree::compute(sim.topology(), NodeId(0));
    let path5 = spt.path_links(NodeId(5));
    let path30 = spt.path_links(NodeId(30));
    let link = *path5
        .iter()
        .find(|l| !path30.contains(l))
        .expect("divergent path");
    sim.set_loss_model(Box::new(ScriptedDrop::new(
        (1..=3).map(|o| (link, o)).collect(),
    )));
    for k in 0..4u8 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(20));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    // Nodes 5 and 6 (if both behind the lossy link) saw losses; node 30 did
    // not. Check 30's view: peers reporting losses exist, but 30 itself has
    // an empty fingerprint → its loss is not local to it.
    let a30 = sim.app(NodeId(30)).unwrap();
    assert_eq!(a30.loss_rate(), 0.0);
    let a5 = sim.app(NodeId(5)).unwrap();
    assert!(a5.loss_rate() > 0.0, "node 5 experienced losses");
    assert!(a5.metrics.all_recovered());
}

//! Properties of the multicast substrate that the paper's Section II-A
//! bandwidth argument rests on: "Multicast delivery permits a much more
//! efficient use of the available bandwidth, with at most one copy of each
//! packet sent over each link."

use bytes::Bytes;
use netsim::generators::{random_labeled_tree, random_members};
use netsim::routing::SpTree;
use netsim::{Application, Ctx, GroupId, NodeId, Packet, SendOptions, SimTime, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const G: GroupId = GroupId(1);

struct Recorder {
    arrivals: Vec<SimTime>,
}

impl Application for Recorder {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: &Packet) {
        self.arrivals.push(ctx.now);
    }
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any random tree with any membership: every member other than the
    /// sender receives exactly one copy, at exactly its shortest-path
    /// delay, each link carries at most one copy, and the links used are
    /// exactly the union of sender→member paths (the pruned tree).
    #[test]
    fn one_copy_per_link_and_exact_delays(
        seed in 0u64..100_000,
        n in 3usize..40,
        g_frac in 0.2f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_labeled_tree(n, &mut rng);
        let g = ((n as f64 * g_frac) as usize).max(2);
        let members = random_members(&topo, g, &mut rng);
        let sender = members[0];
        let spt = SpTree::compute(&topo, sender);

        let mut sim = Simulator::new(topo, seed);
        for &m in &members {
            sim.install(m, Recorder { arrivals: vec![] });
            sim.join(m, G);
        }
        sim.send_from(sender, G, Bytes::from_static(b"x"), SendOptions::default());
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));

        // Exactly-once delivery at exactly the SPT delay.
        for &m in &members {
            let r = sim.app(m).unwrap();
            if m == sender {
                prop_assert!(r.arrivals.is_empty(), "no self-loopback");
            } else {
                prop_assert_eq!(r.arrivals.len(), 1, "member {:?}", m);
                let expect = spt.distance(m);
                prop_assert_eq!(
                    r.arrivals[0],
                    SimTime::ZERO + expect,
                    "member {:?} delay", m
                );
            }
        }
        // At most one copy per link, and exactly the pruned-tree links.
        let mut expected_links: std::collections::BTreeSet<u32> = Default::default();
        for &m in &members {
            for l in spt.path_links(m) {
                expected_links.insert(l.0);
            }
        }
        for (i, l) in sim.stats.links.iter().enumerate() {
            let on_tree = expected_links.contains(&(i as u32));
            prop_assert_eq!(
                l.packets,
                if on_tree { 1 } else { 0 },
                "link {} crossings", i
            );
        }
    }

    /// Unicast along the same topology takes exactly the path-length hops;
    /// multicast to the full membership never costs more than the sum of
    /// unicasts (the Section II-A bandwidth argument).
    #[test]
    fn multicast_never_beats_unicast_sum(seed in 0u64..100_000, n in 4usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_labeled_tree(n, &mut rng);
        let members: Vec<NodeId> = topo.nodes().collect();
        let sender = NodeId(0);
        let spt = SpTree::compute(&topo, sender);
        let unicast_sum: u64 = members
            .iter()
            .filter(|&&m| m != sender)
            .map(|&m| spt.hop_count(m) as u64)
            .sum();

        let mut sim = Simulator::new(topo, seed);
        for &m in &members {
            sim.install(m, Recorder { arrivals: vec![] });
            sim.join(m, G);
        }
        sim.send_from(sender, G, Bytes::from_static(b"x"), SendOptions::default());
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)));
        let multicast_hops = sim.stats.total_hops();
        prop_assert!(multicast_hops <= unicast_sum, "{multicast_hops} <= {unicast_sum}");
        // On a tree with full membership it is exactly n−1 crossings.
        prop_assert_eq!(multicast_hops, (n - 1) as u64);
    }
}

//! Guard rails for the hot-path overhaul: the zero-copy packet fan-out and
//! lazy tracing must be pure refactorings. These tests pin the observable
//! behaviour of a paper-scale run to exact values and check the sharing
//! invariants of the new [`netsim::Packet`] representation by property.

use bytes::Bytes;
use netsim::{Packet, PacketBody};
use proptest::prelude::*;
use srm::SrmConfig;
use srm_experiments::fig4;
use srm_experiments::round::run_round;

/// FNV-1a over a byte string — stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full observable outcome of a seeded 1000-node Fig-4 recovery round,
/// reduced to one u64: every trace event plus the aggregate counters.
fn fig4_round_hash() -> u64 {
    let mut s = fig4::spec(50, 1, SrmConfig::fixed(50)).build();
    s.sim.trace.enable();
    let r = run_round(&mut s, 100_000.0);
    assert!(r.all_recovered, "the pinned round must recover");
    let mut blob = String::new();
    for e in s.sim.trace.events() {
        blob.push_str(&format!("{e:?}\n"));
    }
    blob.push_str(&format!(
        "sent={} hops={} delivered_data={} events={} requests={} repairs={}",
        s.sim.stats.total_sent(),
        s.sim.stats.total_hops(),
        s.sim.stats.delivered_for(netsim::flow::DATA),
        s.sim.stats.events,
        r.requests,
        r.repairs,
    ));
    fnv1a(blob.as_bytes())
}

/// The seeded 1000-node run is bit-identical run-to-run *and* across the
/// zero-copy/lazy-trace refactor: this constant was pinned against the
/// pre-refactor simulator (whose behaviour the golden traces also freeze),
/// so any RNG-stream or event-order drift in the hot path fails here.
#[test]
fn pinned_1000_node_determinism_hash() {
    let h = fig4_round_hash();
    assert_eq!(
        h, PINNED_FIG4_ROUND_HASH,
        "1000-node round drifted: got {h:#018x}, pinned {PINNED_FIG4_ROUND_HASH:#018x} \
         (a deliberate semantic change must re-pin this constant alongside \
         the golden traces)"
    );
}

const PINNED_FIG4_ROUND_HASH: u64 = 0x7f18_3f7b_0428_9f6d;

/// Tracing stays strictly opt-in: a paper-scale run with the sink disabled
/// records nothing and never allocates event storage.
#[test]
fn disabled_trace_does_not_grow_at_scale() {
    let mut s = fig4::spec(50, 1, SrmConfig::fixed(50)).build();
    assert!(!s.sim.trace.is_enabled());
    let r = run_round(&mut s, 100_000.0);
    assert!(r.all_recovered);
    assert_eq!(s.sim.trace.len(), 0, "disabled sink recorded events");
    assert_eq!(s.sim.trace.capacity(), 0, "disabled sink allocated storage");
}

fn body(ttl: u8, payload: Vec<u8>) -> Packet {
    Packet::new(
        ttl,
        PacketBody {
            id: netsim::PacketId(7),
            src: netsim::NodeId(0),
            group: netsim::GroupId(1),
            dest: None,
            initial_ttl: ttl,
            admin_scoped: false,
            flow: netsim::flow::DATA,
            size: payload.len() as u32 + 16,
            payload: Bytes::from(payload),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fan-out copies share one body but never alias the mutable header:
    /// decrementing one copy's TTL must be invisible to every other copy
    /// and to the shared immutable fields.
    #[test]
    fn shared_payload_never_aliases_mutable_header(
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        hops in 1usize..8,
    ) {
        // The simulator never forwards a TTL-0 packet (it early-returns),
        // so the chain respects that precondition.
        let hops = hops.min(ttl as usize);
        let original = body(ttl, payload.clone());
        let mut copies = vec![original.clone()];
        for _ in 0..hops {
            let next = copies.last().unwrap().forwarded();
            copies.push(next);
        }
        for (i, c) in copies.iter().enumerate() {
            // Every copy shares the one body allocation…
            prop_assert!(c.shares_body(&original));
            // …with the per-copy TTL tracking its own hop count…
            prop_assert_eq!(c.ttl, ttl - i as u8);
            // …and the shared fields untouched by any sibling's decrement.
            prop_assert_eq!(c.initial_ttl, ttl);
            prop_assert_eq!(&c.payload[..], &payload[..]);
        }
        prop_assert_eq!(original.ttl, ttl, "forwarding mutated the original header");
    }
}

//! The headline invariant: *eventual delivery of all data to all group
//! members* (Section III), checked end-to-end across netsim + srm under
//! randomized topologies, memberships, drop locations, and loss processes.

use bytes::Bytes;
use netsim::generators::{bounded_degree_tree, random_labeled_tree, random_members};
use netsim::loss::{BernoulliLoss, OneShotLinkDrop, ScriptedDrop};
use netsim::routing::SpTree;
use netsim::{flow, GroupId, NodeId, SimDuration, SimTime, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(1);

/// Install agents with exact pre-warmed distances on the given members.
fn install_members(
    sim: &mut Simulator<SrmAgent>,
    members: &[NodeId],
    source: NodeId,
    cfg: &SrmConfig,
    sessions: bool,
) -> PageId {
    let page = PageId::new(SourceId(source.0 as u64), 0);
    let trees: Vec<(NodeId, SpTree)> = members
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), GROUP, cfg.clone());
        a.session_enabled = sessions;
        a.set_current_page(page);
        for (o, t) in &trees {
            if *o != m {
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), t.distance(m));
            }
        }
        sim.install(m, a);
        sim.join(m, GROUP);
    }
    page
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single data-packet drop on any link of any random tree is
    /// recovered by every member.
    #[test]
    fn single_drop_on_random_tree_always_recovers(
        n in 4usize..40,
        seed in 0u64..1_000_000,
        link_pick in 0usize..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_labeled_tree(n, &mut rng);
        let links = topo.num_links();
        let link = netsim::LinkId((link_pick % links) as u32);
        let members: Vec<NodeId> = topo.nodes().collect();
        let source = NodeId((seed % n as u64) as u32);
        let mut sim = Simulator::new(topo, seed ^ 0xabcd);
        let page = install_members(&mut sim, &members, source, &SrmConfig::fixed(n), false);
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(link, source, flow::DATA)));
        sim.exec(source, |a, ctx| { a.send_data(ctx, page, Bytes::from_static(b"p0")); });
        sim.run_until(sim.now() + SimDuration::from_secs_f64(0.01));
        sim.exec(source, |a, ctx| { a.send_data(ctx, page, Bytes::from_static(b"p1")); });
        prop_assert!(sim.run_until_idle(SimTime::from_secs(1_000_000)), "must quiesce");
        for &m in &members {
            if m == source { continue; }
            let a = sim.app(m).unwrap();
            prop_assert_eq!(a.store().len(), 2, "member {:?} holds both ADUs", m);
            prop_assert!(a.metrics.all_recovered());
        }
    }

    /// Scripted multi-drop patterns (several packets dropped on several
    /// links, including requests/repairs being droppable) still converge,
    /// thanks to retransmit timers and session-message tail-loss detection.
    #[test]
    fn scripted_multi_drop_converges(
        seed in 0u64..100_000,
        drops in prop::collection::vec((0u32..20, 1u64..6), 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_labeled_tree(12, &mut rng);
        let links = topo.num_links() as u32;
        let members: Vec<NodeId> = topo.nodes().collect();
        let source = NodeId(0);
        let mut sim = Simulator::new(topo, seed);
        let cfg = SrmConfig::fixed(12);
        let page = install_members(&mut sim, &members, source, &cfg, true);
        let script: Vec<(netsim::LinkId, u64)> = drops
            .into_iter()
            .map(|(l, o)| (netsim::LinkId(l % links), o))
            .collect();
        sim.set_loss_model(Box::new(ScriptedDrop::new(script)));
        for k in 0..4 {
            sim.exec(source, |a, ctx| {
                a.send_data(ctx, page, Bytes::from(vec![k as u8]));
            });
            sim.run_until(sim.now() + SimDuration::from_secs(5));
        }
        // Session messages run; give the session time to self-heal.
        sim.run_until(sim.now() + SimDuration::from_secs(2000));
        for &m in &members {
            if m == source { continue; }
            let a = sim.app(m).unwrap();
            prop_assert_eq!(a.store().len(), 4, "member {:?}", m);
        }
    }
}

/// Persistent 5% Bernoulli loss on every link — data, requests, repairs,
/// and session messages all lossy — and the session still converges.
#[test]
fn bernoulli_loss_everywhere_converges() {
    let topo = bounded_degree_tree(120, 4);
    let mut rng = StdRng::seed_from_u64(55);
    let members = random_members(&topo, 15, &mut rng);
    let source = members[0];
    let mut sim = Simulator::new(topo, 55);
    let page = install_members(&mut sim, &members, source, &SrmConfig::fixed(15), true);
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.05, 1234)));
    for k in 0..20u8 {
        sim.exec(source, |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(30));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(20_000));
    for &m in &members {
        if m == source {
            continue;
        }
        let a = sim.app(m).unwrap();
        assert_eq!(a.store().len(), 20, "member {m:?} converged");
    }
}

/// "Reliable data delivery is ensured as long as each data item is
/// available from at least one member": the original source leaves, and a
/// late joiner still recovers everything from the remaining members.
#[test]
fn recovery_survives_source_departure() {
    let topo = bounded_degree_tree(40, 4);
    let members: Vec<NodeId> = vec![NodeId(1), NodeId(7), NodeId(20), NodeId(33)];
    let source = NodeId(1);
    let mut sim = Simulator::new(topo, 9);
    let page = install_members(&mut sim, &members, source, &SrmConfig::fixed(4), true);
    for k in 0..5u8 {
        sim.exec(source, |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(2));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(100));
    // The source departs (IP multicast: members leave independently).
    sim.leave(source, GROUP);

    // A newcomer joins and asks for the page.
    let newbie = NodeId(38);
    let mut a = SrmAgent::new(SourceId(38), GROUP, SrmConfig::fixed(5));
    a.set_current_page(page);
    sim.install(newbie, a);
    sim.join(newbie, GROUP);
    sim.exec(newbie, |a, ctx| a.request_page_state(ctx, page));
    sim.run_until(sim.now() + SimDuration::from_secs(5_000));
    let a = sim.app(newbie).unwrap();
    assert_eq!(a.store().len(), 5, "history recovered without the source");
}

/// Network partition and heal (Section II-D): members keep sending during
/// the partition; after it heals, session messages spread the missing state
/// both ways and all members converge.
#[test]
fn partition_heals_and_state_merges() {
    // A chain 0-1-2-3; partition the middle link by dropping everything on
    // it for a while (scripted ordinals 1..=N), then let it heal.
    let topo = netsim::generators::chain(4);
    let members: Vec<NodeId> = topo.nodes().collect();
    let mut sim = Simulator::new(topo, 31);
    let l12 = sim.topology().link_between(NodeId(1), NodeId(2)).unwrap();
    let page_a = install_members(&mut sim, &members, NodeId(0), &SrmConfig::fixed(4), true);
    // Partition: drop the next 200 packets crossing the middle link.
    sim.set_loss_model(Box::new(ScriptedDrop::new(
        (1..=200).map(|o| (l12, o)).collect(),
    )));
    // Both sides originate data during the partition.
    let page_b = PageId::new(SourceId(3), 0);
    for k in 0..3u8 {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page_a, Bytes::from(vec![k]));
        });
        sim.exec(NodeId(3), |a, ctx| {
            a.send_data(ctx, page_b, Bytes::from(vec![0x80 | k]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs(10));
    }
    // Heal and wait: all members view both pages so session reports flow.
    for &m in &members {
        sim.app_mut(m).unwrap().set_current_page(page_a);
    }
    sim.set_loss_model(Box::new(netsim::loss::NoLoss));
    sim.run_until(sim.now() + SimDuration::from_secs(3_000));
    // Page B is only discovered by viewers of page B's session reports; ask
    // for it explicitly from one side (late-browsing model).
    sim.exec(NodeId(0), |a, ctx| a.request_page_state(ctx, page_b));
    sim.exec(NodeId(3), |a, ctx| a.request_page_state(ctx, page_a));
    sim.run_until(sim.now() + SimDuration::from_secs(5_000));
    for &m in &members {
        let a = sim.app(m).unwrap();
        assert_eq!(
            a.store().len(),
            6,
            "member {m:?} holds both sides' partition-era data"
        );
    }
}

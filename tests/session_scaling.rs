//! Session-message machinery end-to-end: bandwidth stays within the
//! configured fraction as the group grows (the vat scaling of Section
//! III-A), distance estimates converge to the true values, and group-size
//! estimation tracks membership.

use netsim::generators::{bounded_degree_tree, random_members};
use netsim::routing::SpTree;
use netsim::{flow, GroupId, NodeId, SimDuration, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(1);

fn session(n_net: usize, g: usize, seed: u64) -> (Simulator<SrmAgent>, Vec<NodeId>) {
    let topo = bounded_degree_tree(n_net, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let members = random_members(&topo, g, &mut rng);
    let mut sim = Simulator::new(topo, seed);
    let page = PageId::new(SourceId(members[0].0 as u64), 0);
    for &m in &members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), GROUP, SrmConfig::fixed(g));
        a.set_current_page(page);
        sim.install(m, a);
        sim.join(m, GROUP);
    }
    (sim, members)
}

/// The aggregate *origination* rate of session messages stays within the
/// configured fraction of the session bandwidth once group discovery
/// settles, for both small and large groups.
#[test]
fn session_rate_scales_with_group_size() {
    for &g in &[5usize, 25, 50] {
        let (mut sim, members) = session(200, g, 42);
        // Warm-up discovery phase.
        sim.run_until(SimTime::from_secs(200));
        let start_msgs: Vec<u64> = members
            .iter()
            .map(|&m| sim.app(m).unwrap().metrics.session_sent)
            .collect();
        let start_t = sim.now();
        sim.run_until(start_t + SimDuration::from_secs(1000));
        // Charge each member's messages at its measured on-wire size (the
        // scheduler tracks the last emitted message's encoded length).
        let bytes: f64 = members
            .iter()
            .zip(&start_msgs)
            .map(|(&m, &start)| {
                let a = sim.app(m).unwrap();
                (a.metrics.session_sent - start) as f64 * a.session_msg_bytes()
            })
            .sum();
        let cfg = SrmConfig::fixed(g);
        let bytes_per_sec = bytes / 1000.0;
        let cap = cfg.session_fraction * cfg.session_bandwidth;
        assert!(
            bytes_per_sec <= cap * 1.6,
            "g={g}: session origination rate {bytes_per_sec} B/s exceeds cap {cap} (with jitter slack)"
        );
        // And it is not absurdly *under* the cap for large groups (the
        // scaling divides the budget, it should be used).
        if g >= 25 {
            assert!(
                bytes_per_sec >= cap * 0.4,
                "g={g}: rate {bytes_per_sec} too far under cap {cap}"
            );
        }
    }
}

/// The scheduler charges the *encoded on-wire* length of the session
/// message just sent, not the configured nominal estimate — so the 5% cap
/// holds for what actually crosses a socket.
#[test]
fn session_accounting_uses_encoded_wire_length() {
    use srm::wire::{Body, Header, Message, SessionBody};

    let (mut sim, members) = session(10, 3, 7);
    let m0 = members[0];
    let nominal = SrmConfig::fixed(3).session_msg_bytes;
    assert_eq!(sim.app(m0).unwrap().session_msg_bytes(), nominal);

    sim.exec(m0, |a, ctx| a.send_session_now(ctx));
    let a = sim.app(m0).unwrap();
    // Rebuild the message this fresh member must have emitted (no data,
    // no peers heard, nothing lost) and compare encoded lengths; the
    // timestamp does not change the length (fixed-width field).
    let equivalent = Message {
        header: Header {
            sender: a.id,
            timestamp: SimTime::ZERO,
        },
        body: Body::Session(SessionBody {
            page: a.current_page(),
            state: a.store().page_state(a.current_page()),
            echoes: vec![],
            loss_rate: 0.0,
            loss_fingerprint: vec![],
        }),
    };
    let expected = equivalent.encode().len() as f64;
    assert_eq!(a.session_msg_bytes(), expected);
    assert_ne!(
        a.session_msg_bytes(),
        nominal,
        "measured size must replace the nominal estimate"
    );
}

/// After a few session-message rounds, every member's distance estimate to
/// every other member equals the true shortest-path delay (symmetric
/// unit-delay links make the NTP formula exact).
#[test]
fn distance_estimates_converge_to_truth() {
    let (mut sim, members) = session(100, 8, 7);
    sim.run_until(SimTime::from_secs(400));
    let trees: Vec<(NodeId, SpTree)> = members
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in &members {
        let a = sim.app(m).unwrap();
        for (o, tree) in &trees {
            if *o == m {
                continue;
            }
            let est = a.distances().distance_to(SourceId(o.0 as u64));
            let truth = tree.distance(m);
            assert!(
                a.distances().has_estimate(SourceId(o.0 as u64)),
                "{m:?} estimates {o:?}"
            );
            assert_eq!(est, truth, "{m:?} -> {o:?}");
        }
    }
}

/// Group-size estimates (distinct peers heard) reach G − 1 on all members.
#[test]
fn group_size_estimation_tracks_membership() {
    let (mut sim, members) = session(100, 12, 3);
    sim.run_until(SimTime::from_secs(600));
    for &m in &members {
        assert_eq!(
            sim.app(m).unwrap().distances().peer_count(),
            11,
            "member {m:?} heard everyone"
        );
    }
}

/// Hierarchical session messages (Section IX-A): on a long chain with
/// every node a member, representative election settles on a small
/// dominating set, every member has a representative within the local
/// scope, and aggregate session bandwidth drops well below the flat
/// scheme's.
#[test]
fn hierarchy_elects_sparse_representatives() {
    use srm::HierarchyConfig;
    const N: usize = 30;
    let build = |hier: bool| {
        let topo = netsim::generators::chain(N);
        let mut sim: Simulator<SrmAgent> = Simulator::new(topo, 88);
        let page = PageId::new(SourceId(0), 0);
        for i in 0..N as u32 {
            let mut cfg = SrmConfig::fixed(N);
            if hier {
                cfg.session_hierarchy = Some(HierarchyConfig {
                    local_ttl: 3,
                    rep_timeout: SimDuration::from_secs(40),
                });
            }
            let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg);
            a.set_current_page(page);
            sim.install(NodeId(i), a);
            sim.join(NodeId(i), GROUP);
        }
        sim.run_until(SimTime::from_secs(600));
        sim
    };
    let flat = build(false);
    let hier = build(true);

    // Election settled on a proper subset.
    let reps: Vec<u32> = (0..N as u32)
        .filter(|&i| hier.app(NodeId(i)).unwrap().is_representative())
        .collect();
    assert!(!reps.is_empty(), "someone represents");
    assert!(
        reps.len() <= N / 2,
        "representatives are a minority: {reps:?}"
    );
    // Coverage: every member is within local_ttl hops of a representative.
    for i in 0..N as i32 {
        let covered = reps.iter().any(|&r| (r as i32 - i).abs() <= 3);
        assert!(covered, "member {i} has a rep within 3 hops of {reps:?}");
    }
    // Bandwidth: session link-crossings shrink substantially.
    let flat_hops = flat.stats.hops_for(flow::SESSION);
    let hier_hops = hier.stats.hops_for(flow::SESSION);
    assert!(
        (hier_hops as f64) < 0.6 * flat_hops as f64,
        "hierarchy saves session bandwidth: {hier_hops} vs {flat_hops}"
    );
}

/// Session traffic does not leak onto links with no members behind them
/// (pruned multicast forwarding).
#[test]
fn session_traffic_respects_pruning() {
    let (mut sim, members) = session(200, 6, 9);
    sim.run_until(SimTime::from_secs(300));
    // Find a leaf link with no member behind it; it must carry nothing.
    let topo = sim.topology();
    let mut quiet_leaf = None;
    for (l, link) in topo.links() {
        let leaf = if topo.degree(link.a) == 1 {
            Some(link.a)
        } else if topo.degree(link.b) == 1 {
            Some(link.b)
        } else {
            None
        };
        if let Some(n) = leaf {
            if !members.contains(&n) {
                quiet_leaf = Some(l);
                break;
            }
        }
    }
    let l = quiet_leaf.expect("a memberless leaf exists in a 200-node tree");
    assert_eq!(sim.stats.links[l.index()].packets, 0);
    // Sanity: session traffic did flow somewhere.
    assert!(sim.stats.hops_for(flow::SESSION) > 0);
}

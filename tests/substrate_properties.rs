//! Property tests on the simulation substrate: routing optimality, TTL
//! semantics, topology generators, and store invariants — the foundations
//! every experiment result rests on.

use netsim::generators::{prufer_decode, random_connected_graph, random_labeled_tree};
use netsim::routing::SpTree;
use netsim::{NodeId, SimDuration, Topology, TopologyBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{AduName, AduStore, PageId, SeqNo, SourceId};

/// Brute-force all-pairs shortest paths (Floyd–Warshall) for checking.
fn floyd_warshall(topo: &Topology) -> Vec<Vec<f64>> {
    let n = topo.num_nodes();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (_, l) in topo.links() {
        let w = l.delay.as_secs_f64();
        let (a, b) = (l.a.index(), l.b.index());
        d[a][b] = d[a][b].min(w);
        d[b][a] = d[b][a].min(w);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dijkstra SPT distances equal Floyd–Warshall on arbitrary weighted
    /// connected graphs.
    #[test]
    fn spt_distances_are_optimal(seed in 0u64..100_000, n in 3usize..20, extra in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let base = random_connected_graph(n, m, &mut rng);
        // Re-weight with varied delays.
        let mut b = TopologyBuilder::new(n);
        let mut w = 1u64;
        for (_, l) in base.links() {
            w = w % 7 + 1;
            b.link_with(l.a, l.b, SimDuration::from_secs(w), 1);
        }
        let topo = b.build();
        let truth = floyd_warshall(&topo);
        for root in 0..n {
            let spt = SpTree::compute(&topo, NodeId(root as u32));
            for v in 0..n {
                let got = spt.distance(NodeId(v as u32)).as_secs_f64();
                prop_assert!((got - truth[root][v]).abs() < 1e-6,
                    "root {root} -> {v}: {got} vs {}", truth[root][v]);
            }
        }
    }

    /// `ttl_reach` is monotone in TTL, and `min_ttl_to_reach` is exact:
    /// reachable at its value, unreachable one below.
    #[test]
    fn ttl_reach_consistency(seed in 0u64..100_000, n in 3usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_labeled_tree(n, &mut rng);
        let spt = SpTree::compute(&topo, NodeId(0));
        let mut prev = 0usize;
        for ttl in 0..=(n as u8) {
            let reach = spt.ttl_reach(&topo, ttl);
            prop_assert!(reach.len() >= prev, "monotone in ttl");
            prev = reach.len();
        }
        for v in 1..n as u32 {
            let need = spt.min_ttl_to_reach(&topo, NodeId(v)).unwrap();
            prop_assert!(spt.ttl_reach(&topo, need).contains(&NodeId(v)));
            if need > 0 {
                prop_assert!(!spt.ttl_reach(&topo, need - 1).contains(&NodeId(v)));
            }
        }
    }

    /// Prüfer decoding always yields a tree whose node degrees equal
    /// 1 + multiplicity in the sequence.
    #[test]
    fn prufer_degree_property(prufer in prop::collection::vec(0usize..12, 10)) {
        let n = 12;
        let edges = prufer_decode(n, &prufer);
        prop_assert_eq!(edges.len(), n - 1);
        let mut deg = vec![0usize; n];
        for (a, b) in &edges {
            deg[*a] += 1;
            deg[*b] += 1;
        }
        for v in 0..n {
            let mult = prufer.iter().filter(|&&p| p == v).count();
            prop_assert_eq!(deg[v], mult + 1, "degree of {}", v);
        }
        // Connectivity via the builder check.
        let mut b = TopologyBuilder::new(n);
        for (x, y) in edges {
            b.link(NodeId(x as u32), NodeId(y as u32));
        }
        prop_assert!(b.build().is_tree());
    }

    /// AduStore: after any interleaving of inserts and existence notes,
    /// `missing_on_page` is exactly the names known but not held, and
    /// `page_state` reports the true high-water mark.
    #[test]
    fn store_invariants(ops in prop::collection::vec((0u8..2, 0u64..3, 0u64..30), 1..60)) {
        let page = PageId::new(SourceId(9), 0);
        let mut store = AduStore::new();
        let mut inserted: std::collections::BTreeSet<(u64, u64)> = Default::default();
        let mut known_high: std::collections::BTreeMap<u64, u64> = Default::default();
        for (kind, src, seq) in ops {
            let name = AduName::new(SourceId(src), page, SeqNo(seq));
            if kind == 0 {
                store.insert(name, bytes::Bytes::new());
                inserted.insert((src, seq));
                let e = known_high.entry(src).or_insert(seq);
                *e = (*e).max(seq);
            } else {
                store.note_exists(SourceId(src), page, SeqNo(seq));
                let e = known_high.entry(src).or_insert(seq);
                *e = (*e).max(seq);
            }
        }
        // Expected missing set.
        let mut expect_missing = Vec::new();
        for (&src, &high) in &known_high {
            for q in 0..=high {
                if !inserted.contains(&(src, q)) {
                    expect_missing.push(AduName::new(SourceId(src), page, SeqNo(q)));
                }
            }
        }
        let mut got = store.missing_on_page(page);
        got.sort();
        expect_missing.sort();
        prop_assert_eq!(got, expect_missing);
        // High-water marks.
        for (src, high) in known_high {
            prop_assert_eq!(
                store.highest_known(SourceId(src), page),
                Some(SeqNo(high))
            );
        }
    }

    /// The timer-interval draw respects `[C1·d, (C1+C2)·d]` for arbitrary
    /// parameters, and backoff scales both ends.
    #[test]
    fn timer_interval_bounds(
        c1 in 0.0f64..10.0,
        c2 in 0.0f64..50.0,
        d_ms in 1u64..10_000,
        k in 0u32..5,
        seed in 0u64..10_000,
    ) {
        use srm::timers::TimerInterval;
        let d = SimDuration::from_secs_f64(d_ms as f64 / 1000.0);
        let base = TimerInterval::request(c1, c2, d);
        let b = base.backed_off(2.0, k);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let v = b.draw(&mut rng).as_secs_f64();
            let f = 2f64.powi(k as i32);
            let lo = c1 * d.as_secs_f64() * f;
            let hi = (c1 + c2) * d.as_secs_f64() * f;
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} in [{lo}, {hi}]");
        }
    }
}

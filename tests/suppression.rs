//! End-to-end checks of the request/repair timer theory (Section IV):
//! deterministic suppression on chains, probabilistic suppression on stars,
//! and the level-suppression bound on trees — cross-validated against the
//! closed forms in `srm-analysis`.

use srm_analysis::{chain as chain_model, star as star_model, tree as tree_model};
use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm::{SrmConfig, TimerParams};

fn params(c1: f64, c2: f64, d1: f64, d2: f64) -> SrmConfig {
    SrmConfig {
        timers: TimerParams { c1, c2, d1, d2 },
        backoff: 4.0, // avoid the retransmit race; see checks.rs
        ..SrmConfig::default()
    }
}

#[test]
fn chain_request_and_repair_are_unique_and_timely() {
    // Deterministic timers over a range of failure positions.
    for hops in 1..=8u32 {
        let mut s = ScenarioSpec {
            topo: TopoSpec::Chain { n: 30 },
            group_size: None,
            drop: DropSpec::HopsFromSource(hops),
            cfg: params(1.0, 0.0, 1.0, 0.0),
            seed: 100 + hops as u64,
            timer_seed: None,
        }
        .build();
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered);
        assert_eq!(r.requests, 1, "hops={hops}: deterministic suppression");
        assert_eq!(r.repairs, 1, "hops={hops}");
    }
}

#[test]
fn chain_far_nodes_beat_unicast_rtt() {
    // "the furthest node receives the repair sooner than it would if it had
    // to rely on its own unicast communication with the original source."
    let mut s = ScenarioSpec {
        topo: TopoSpec::Chain { n: 60 },
        group_size: None,
        drop: DropSpec::HopsFromSource(2),
        cfg: params(1.0, 0.0, 1.0, 0.0),
        seed: 7,
        timer_seed: None,
    }
    .build();
    let r = run_round(&mut s, 100_000.0);
    // Find the deepest affected member's delay ratio.
    let deepest = r
        .recovery_over_rtt
        .iter()
        .max_by(|a, b| {
            s.dist_from_source[a.0.index()]
                .partial_cmp(&s.dist_from_source[b.0.index()])
                .unwrap()
        })
        .copied()
        .unwrap();
    assert!(
        deepest.1 < 1.0,
        "deepest member recovers in under its own RTT: {}",
        deepest.1
    );
    // And the closed form predicts the same regime.
    let ana = chain_model::recovery_delay_over_rtt(1.0, 1.0, 1, 40);
    assert!(ana < 1.0);
}

#[test]
fn star_requests_track_probabilistic_model() {
    // Average over sims at two C2 values and compare to 1 + (G-2)/C2.
    let g = 40;
    for c2 in [4.0, 12.0] {
        let mut total = 0u64;
        let sims = 12;
        for rep in 0..sims {
            let mut s = ScenarioSpec {
                topo: TopoSpec::Star { leaves: g },
                group_size: None,
                drop: DropSpec::AdjacentToSource,
                cfg: params(2.0, c2, 1.0, 1.0),
                seed: 9000 + (c2 as u64) * 100 + rep,
                timer_seed: None,
            }
            .build();
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            total += r.requests;
        }
        let mean = total as f64 / sims as f64;
        let ana = star_model::expected_requests(g, c2);
        assert!(
            mean <= ana * 2.0 + 1.5 && mean >= ana * 0.4 - 0.5,
            "c2={c2}: sim {mean} vs analysis {ana}"
        );
    }
}

#[test]
fn star_delay_grows_with_c2_as_predicted() {
    let g = 40;
    let measure = |c2: f64| {
        let mut acc = 0.0;
        let sims = 12;
        for rep in 0..sims {
            let mut s = ScenarioSpec {
                topo: TopoSpec::Star { leaves: g },
                group_size: None,
                drop: DropSpec::AdjacentToSource,
                cfg: params(2.0, c2, 1.0, 1.0),
                seed: 17_000 + (c2 as u64) * 100 + rep,
                timer_seed: None,
            }
            .build();
            let r = run_round(&mut s, 100_000.0);
            acc += r.closest_member_request_delay(&s).unwrap();
        }
        acc / sims as f64
    };
    let d_small = measure(2.0);
    let d_large = measure(60.0);
    let a_small = star_model::expected_request_delay_over_rtt(g, 2.0, 2.0);
    let a_large = star_model::expected_request_delay_over_rtt(g, 2.0, 60.0);
    assert!(d_large > d_small);
    assert!((d_small - a_small).abs() < 0.3, "{d_small} vs {a_small}");
    assert!((d_large - a_large).abs() < 0.5, "{d_large} vs {a_large}");
}

#[test]
fn tree_duplicates_shrink_when_failure_is_near_source() {
    // Section IV-C: duplicates are fewer when the congested link is close
    // to the source. Compare request counts for near vs far failures on a
    // dense bounded tree, averaged over replicates.
    let run_at = |hops: u32| -> f64 {
        let sims = 10;
        let mut total = 0;
        for rep in 0..sims {
            let mut s = ScenarioSpec {
                topo: TopoSpec::BoundedTree { n: 85, degree: 4 },
                group_size: None,
                drop: DropSpec::HopsFromSource(hops),
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2: 4.0,
                        d1: 1.0,
                        d2: 4.0,
                    },
                    ..SrmConfig::default()
                },
                seed: 31_000 + hops as u64 * 100 + rep,
                timer_seed: None,
            }
            .build();
            total += run_round(&mut s, 100_000.0).requests;
        }
        total as f64 / sims as f64
    };
    let near = run_at(1);
    let far = run_at(3);
    // The level-suppression bound says near-source failures expose fewer
    // levels to duplicates; allow slack for randomness but require the
    // trend not to invert badly.
    assert!(
        near <= far + 1.0,
        "near-source failures should not produce more duplicates: near={near} far={far}"
    );
    // Closed-form sanity: the exposed-level bound is monotone in dS.
    assert!(
        tree_model::duplicate_exposed_levels(2.0, 4.0, 1.0, 10)
            <= tree_model::duplicate_exposed_levels(2.0, 4.0, 3.0, 10)
    );
}

//! End-to-end runs of the toolkit's derived applications (Section III-D /
//! IX-D): news threads and route RIBs converging across a lossy session,
//! on the unmodified SRM framework underneath.

use bytes::Bytes;
use netsim::generators::bounded_degree_tree;
use netsim::loss::BernoulliLoss;
use netsim::routing::SpTree;
use netsim::{GroupId, NodeId, SimDuration, Simulator};
use srm::{PageId, SourceId, SrmConfig};
use srm_toolkit::{Article, NewsApp, NewsTool, Prefix, RouteApp, RouteTool, RouteUpdate, SrmTool};

const GROUP: GroupId = GroupId(6);

fn seats() -> Vec<NodeId> {
    vec![NodeId(2), NodeId(9), NodeId(17), NodeId(28)]
}

fn install<A: srm_toolkit::SrmApplication>(
    sim: &mut Simulator<SrmTool<A>>,
    page: PageId,
    mk: impl Fn() -> A,
) {
    let trees: Vec<(NodeId, SpTree)> = seats()
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in &seats() {
        let mut t = SrmTool::new(SourceId(m.0 as u64), GROUP, SrmConfig::fixed(4), mk());
        t.agent.set_current_page(page);
        for (o, tr) in &trees {
            if *o != m {
                t.agent
                    .distances_mut()
                    .set_distance(SourceId(o.0 as u64), tr.distance(m));
            }
        }
        sim.install(m, t);
        sim.join(m, GROUP);
    }
}

#[test]
fn news_threads_converge_under_loss() {
    let topo = bounded_degree_tree(35, 3);
    let mut sim: Simulator<NewsTool> = Simulator::new(topo, 61);
    let page = PageId::new(SourceId(2), 0);
    install(&mut sim, page, NewsApp::default);
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.03, 7)));
    sim.run_until(netsim::SimTime::from_secs(60));

    // Member at n2 posts a root; others reply, building a thread.
    let root = sim.exec(seats()[0], |t, ctx| {
        t.publish(
            ctx,
            page,
            Article {
                subject: "SRM ships".into(),
                body: "reliable multicast for everyone".into(),
                references: None,
            }
            .encode(),
        )
    });
    sim.run_until(sim.now() + SimDuration::from_secs(60));
    let reply = sim.exec(seats()[1], |t, ctx| {
        t.publish(
            ctx,
            page,
            Article {
                subject: "re: SRM ships".into(),
                body: "what about congestion control?".into(),
                references: Some(root),
            }
            .encode(),
        )
    });
    sim.run_until(sim.now() + SimDuration::from_secs(60));
    sim.exec(seats()[2], |t, ctx| {
        t.publish(
            ctx,
            page,
            Article {
                subject: "re: re: SRM ships".into(),
                body: "future work, section IX-C".into(),
                references: Some(reply),
            }
            .encode(),
        );
    });
    // Session messages heal the stragglers.
    sim.run_until(sim.now() + SimDuration::from_secs(4_000));

    let digests: Vec<u64> = seats()
        .iter()
        .map(|&m| sim.app(m).unwrap().app.digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "all thread forests identical: {digests:?}"
    );
    let a = &sim.app(seats()[3]).unwrap().app;
    assert_eq!(a.articles.len(), 3);
    assert_eq!(a.roots(), vec![&root]);
    assert_eq!(a.replies_to(&root).len(), 1);
}

#[test]
fn route_ribs_converge_and_withdrawals_propagate() {
    let topo = bounded_degree_tree(35, 3);
    let mut sim: Simulator<RouteTool> = Simulator::new(topo, 62);
    let page = PageId::new(SourceId(2), 0);
    install(&mut sim, page, RouteApp::default);
    sim.set_loss_model(Box::new(BernoulliLoss::everywhere(0.03, 8)));
    sim.run_until(netsim::SimTime::from_secs(60));

    let pre = Prefix {
        addr: 0x0a00_0000,
        len: 8,
    };
    // Two origins announce the same prefix with different metrics.
    sim.exec(seats()[0], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 100,
                metric: 30,
                withdrawn: false,
            }
            .encode(),
        );
    });
    sim.exec(seats()[1], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 200,
                metric: 10,
                withdrawn: false,
            }
            .encode(),
        );
    });
    sim.run_until(sim.now() + SimDuration::from_secs(2_000));
    for &m in &seats() {
        let rib = sim.app(m).unwrap().app.rib();
        assert_eq!(rib[&pre].next_hop, 200, "member {m:?} picked the 10-metric route");
    }
    // The better origin withdraws; everyone fails over.
    sim.exec(seats()[1], |t, ctx| {
        t.publish(
            ctx,
            page,
            RouteUpdate {
                prefix: pre,
                next_hop: 200,
                metric: 10,
                withdrawn: true,
            }
            .encode(),
        );
    });
    sim.run_until(sim.now() + SimDuration::from_secs(4_000));
    let mut digests = Vec::new();
    for &m in &seats() {
        let app = &sim.app(m).unwrap().app;
        let rib = app.rib();
        assert_eq!(rib[&pre].next_hop, 100, "member {m:?} failed over");
        assert_eq!(rib[&pre].metric, 30);
        digests.push(app.digest());
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn late_joining_tool_pulls_history_through_the_toolkit() {
    // The generic fetch_history path: a blank news node discovers the page
    // catalog, fetches state, and recovers every article.
    let topo = bounded_degree_tree(35, 3);
    let mut sim: Simulator<NewsTool> = Simulator::new(topo, 63);
    let page = PageId::new(SourceId(2), 0);
    install(&mut sim, page, NewsApp::default);
    let root = sim.exec(seats()[0], |t, ctx| {
        t.publish(
            ctx,
            page,
            Article {
                subject: "old news".into(),
                body: "posted before the newcomer joined".into(),
                references: None,
            }
            .encode(),
        )
    });
    sim.run_until(netsim::SimTime::from_secs(120));

    let newbie = NodeId(33);
    let mut t = NewsTool::new(SourceId(33), GROUP, SrmConfig::fixed(5), NewsApp::default());
    t.agent.set_current_page(page);
    sim.install(newbie, t);
    sim.join(newbie, GROUP);
    sim.exec(newbie, |t, ctx| t.fetch_history(ctx));
    sim.run_until(sim.now() + SimDuration::from_secs(3_000));
    let app = &sim.app(newbie).unwrap().app;
    assert!(app.articles.contains_key(&root), "history recovered");
    // A payload that fails the app decoder is counted, not delivered.
    sim.exec(seats()[0], |t, ctx| {
        t.agent.send_data(ctx, page, Bytes::from_static(&[250, 1, 2]));
    });
    sim.run_until(sim.now() + SimDuration::from_secs(200));
    assert!(sim.app(newbie).unwrap().corrupt_items >= 1);
}

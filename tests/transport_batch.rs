//! Backend-equivalence properties for the batched datapath.
//!
//! The whole point of `BatchSocket` is that the backend choice changes
//! *how many syscalls* move the bytes — `recvmmsg`/`sendmmsg`/UDP-GSO
//! versus one `recv_from`/`send_to` per frame — and nothing else. These
//! tests pin that contract from two angles:
//!
//! 1. **Socket-level byte equivalence** (proptest): a seeded, chaos-shaped
//!    frame schedule — loss, duplication, reorder, plus envelope
//!    truncations and bit flips landing at arbitrary points, including
//!    mid-batch — is pushed through a portable sender/receiver pair and an
//!    mmsg pair. After undoing GRO coalescing, the delivered frame
//!    sequences must be byte-identical, and every frame must decode (or
//!    fail to decode) identically.
//! 2. **Session-level equivalence**: the same seeded lossy session run
//!    over each backend must deliver the same ADU set with full frame
//!    accounting — the reactor-visible behaviour is backend-independent
//!    even under repair traffic.
//!
//! Timing note: UDP loopback between two bound sockets preserves order
//! and, at these volumes (well under the receive buffer), loses nothing,
//! so the byte-level test is deterministic. The session-level test asserts
//! outcome equality (delivered sets), not interleavings.

use bytes::Bytes;
use netsim::{GroupId, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srm::{PageId, SourceId, SrmConfig};
use srm_transport::{
    make_backend, BatchOptions, BufferPool, ChaosPlan, ChaosState, Envelope, Harness, RecvFrame,
    SendFrame,
};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Build a chaos-shaped wire schedule: seeded envelopes (with equal-size
/// runs that form GSO batches and odd sizes that break them), then a
/// seeded [`ChaosState`] applying loss / duplication / reorder, then
/// deterministic truncation and bit-flip corruption. The output is the
/// exact byte sequence a sender will push — both backends get the same
/// schedule, so any divergence is the backend's fault.
fn wire_schedule(seed: u64, frames: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clean: Vec<Vec<u8>> = Vec::new();
    while clean.len() < frames {
        // Equal-size runs trigger the GSO path; singletons break it.
        let run = rng.random_range(1..12usize).min(frames - clean.len());
        let payload_len = rng.random_range(0..180usize);
        for _ in 0..run {
            let env = Envelope {
                src: rng.random_range(1..5u32),
                group: 1,
                ttl: 8,
                initial_ttl: 8,
                admin_scoped: false,
                flow: rng.random_range(0..4u32),
                payload: Bytes::from(vec![rng.random_range(0..=255u32) as u8; payload_len]),
            };
            clean.push(env.encode().to_vec());
        }
    }
    // Chaos-shape the schedule: the verdict stream is a pure function of
    // (seed, plan), so the shaped sequence is reproducible.
    let plan = ChaosPlan::new()
        .loss(0.1)
        .duplication(0.1)
        .reorder(0.2, SimDuration::from_millis(5));
    let mut chaos = ChaosState::new(plan, seed ^ 0xC4A05);
    let mut shaped: Vec<Vec<u8>> = Vec::new();
    let mut held: Vec<Vec<u8>> = Vec::new();
    for (i, f) in clean.into_iter().enumerate() {
        let v = chaos.verdict(t(i as u64));
        if !v.deliver {
            continue;
        }
        if v.delay.is_some() {
            // Reorder: hold back, flush later.
            held.push(f);
            continue;
        }
        if v.duplicate {
            shaped.push(f.clone());
        }
        shaped.push(f);
    }
    shaped.extend(held);
    // Corruption spanning batch boundaries: truncate or bit-flip a seeded
    // subset in place, so damaged frames sit amid GSO-able runs.
    let n = shaped.len();
    for i in 0..n {
        if rng.random_bool(0.15) && !shaped[i].is_empty() {
            if rng.random_bool(0.5) {
                let cut = rng.random_range(0..shaped[i].len());
                shaped[i].truncate(cut);
            } else {
                let bit = rng.random_range(0..shaped[i].len() * 8);
                shaped[i][bit / 8] ^= 1 << (bit % 8);
            }
        }
    }
    shaped
}

/// Undo GRO coalescing: one logical frame per plain buffer, `seg_size`
/// strides through a coalesced one.
fn flatten(got: &[RecvFrame]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for r in got {
        match r.seg_size as usize {
            0 => frames.push(r.buf.to_vec()),
            s => frames.extend(r.buf.chunks(s).map(|c| c.to_vec())),
        }
    }
    frames
}

/// Push `schedule` through a sender/receiver backend pair and collect the
/// delivered logical frames. `send_chunk` slices the schedule into
/// `send_batch` calls so corrupted frames land mid-batch, not aligned.
fn roundtrip(
    schedule: &[Vec<u8>],
    force_portable: bool,
    send_chunk: usize,
    recv_max: usize,
) -> Vec<Vec<u8>> {
    let opts = BatchOptions {
        force_portable,
        ..BatchOptions::default()
    };
    let a = UdpSocket::bind("127.0.0.1:0").unwrap();
    let b = UdpSocket::bind("127.0.0.1:0").unwrap();
    // The whole schedule fits the enlarged receive buffer, so sending
    // everything before draining loses nothing and keeps the drain logic
    // trivial (loopback preserves per-sender order).
    srm_transport::configure_socket_buffers(&b, 4 * 1024 * 1024);
    let to: SocketAddr = b.local_addr().unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut tx = make_backend(a, &opts);
    let mut rx = make_backend(b, &opts);
    // A small pool forces the pool-dry heap-copy fallback mid-run (the
    // received buffers are held, so slabs never recycle).
    let pool = BufferPool::new(4, 70_000);
    let mut results = Vec::new();
    let mut got: Vec<RecvFrame> = Vec::new();
    let total: usize = schedule.len();
    let mut received = 0usize;
    for chunk in schedule.chunks(send_chunk.max(1)) {
        let frames: Vec<SendFrame<'_>> =
            chunk.iter().map(|f| SendFrame { dest: to, data: f }).collect();
        results.clear();
        tx.send_batch(&frames, &mut results);
        assert!(results.iter().all(|r| r.is_ok()), "send failed: {results:?}");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total && Instant::now() < deadline {
        let before = got.len();
        match rx.recv_batch(&pool, recv_max, &mut got) {
            Ok(_) => {
                received += got[before..].iter().map(RecvFrame::frame_count).sum::<usize>();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("recv_batch failed: {e}"),
        }
    }
    assert_eq!(received, total, "frames lost on loopback");
    flatten(&got)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The backend-equivalence contract, byte for byte: the same
    /// chaos-shaped, partially-corrupted schedule through both backends
    /// yields identical delivered frame sequences and identical envelope
    /// decode outcomes — GSO/GRO coalescing and `sendmmsg` chunking are
    /// invisible above the socket layer.
    #[test]
    fn backends_deliver_identical_frame_sequences(
        seed in 0u64..100_000,
        frames in 20usize..120,
        send_chunk in 1usize..40,
        recv_max in 1usize..16,
    ) {
        let schedule = wire_schedule(seed, frames);
        prop_assert!(!schedule.is_empty(), "all frames chaos-dropped (vanishingly unlikely)");
        let via_portable = roundtrip(&schedule, true, send_chunk, recv_max);
        let via_batched = roundtrip(&schedule, false, send_chunk, recv_max);
        prop_assert_eq!(&via_portable, &schedule, "portable backend altered the bytes");
        prop_assert_eq!(&via_batched, &schedule, "batched backend altered the bytes");
        // Decode equivalence rides along: same bytes, same envelope fate.
        for (p, b) in via_portable.iter().zip(via_batched.iter()) {
            prop_assert_eq!(Envelope::decode(p), Envelope::decode(b));
        }
    }
}

/// Run one seeded lossy session over a 2-node mesh and return the
/// delivered payload multiset plus the sender's stats.
fn lossy_session(force_portable: bool) -> (Vec<Vec<u8>>, srm_transport::TransportStats) {
    let cfg = SrmConfig::fixed(2);
    let h = Harness::loopback(2, GroupId(1), &cfg, |i, addrs, o| {
        o.batch.force_portable = force_portable;
        o.initial_distances.push((
            SourceId(if i == 0 { 2 } else { 1 }),
            SimDuration::from_millis(10),
        ));
        if i == 0 {
            o.chaos = Some(
                srm_transport::parse_spec("loss=0.2,dup=0.1,reorder=0.15:10ms", addrs)
                    .expect("valid spec"),
            );
        }
    })
    .expect("bind loopback mesh");
    let page = PageId::new(SourceId(1), 0);
    let mut names = Vec::new();
    for i in 0..40u8 {
        names.push(h.nodes[0].send_data(page, Bytes::from(vec![i; 48])));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut delivered = Vec::new();
    while delivered.len() < names.len() && Instant::now() < deadline {
        delivered.extend(h.nodes[1].take_delivered());
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = h.nodes[0].stats();
    drop(h.shutdown());
    let mut payloads: Vec<Vec<u8>> = delivered.iter().map(|d| d.payload.to_vec()).collect();
    payloads.sort();
    (payloads, stats)
}

/// Session-level equivalence: under seeded chaos loss/dup/reorder, both
/// backends must deliver the complete ADU set (SRM repairs whatever the
/// chaos dropped) with the frame-accounting invariant intact.
#[test]
fn lossy_session_delivers_same_set_on_both_backends() {
    let (portable, stats_p) = lossy_session(true);
    let (batched, stats_b) = lossy_session(false);
    assert_eq!(
        portable.len(),
        40,
        "portable backend failed to recover every ADU"
    );
    assert_eq!(portable, batched, "backends delivered different ADU sets");
    for (name, s) in [("portable", &stats_p), ("batched", &stats_b)] {
        assert!(s.frames_accounted(), "{name} backend leaks frames: {s:?}");
        assert_eq!(s.recv_deaths, 0, "{name} recv thread died");
    }
}

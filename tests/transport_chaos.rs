//! Transport-resilience properties and live chaos integration tests.
//!
//! Three layers, matching the resilience design (DESIGN.md §9):
//!
//! 1. **Seeded determinism** — a [`ChaosState`]'s verdict stream, and the
//!    full [`ChaosTransport`] decorator output, are pure functions of
//!    `(seed, plan, frame sequence)`. This is what makes a failing soak
//!    replayable from its seed.
//! 2. **Timer-wheel churn** — lazy cancellation plus compaction keeps both
//!    the tombstone set and the heap bounded under arbitrary
//!    arm/cancel/fire interleavings, checked against a brute-force model.
//! 3. **Live recovery** — a three-node loopback mesh where one member is
//!    blackholed mid-session: peers must notice the silence (liveness
//!    suspect/dead), the data sent into the blackhole must be recovered
//!    after the window heals, and every frame must be accounted for.
//!
//! Determinism note for the live tests: thread scheduling is real, so they
//! assert outcomes made robust by construction (windows longer than the
//! maximum sweep gap, generous settle budgets), never exact interleavings.

use bytes::Bytes;
use netsim::{GroupId, SendOptions, SimDuration, SimTime, TimerId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srm::{Clock, PageId, SourceId, SrmConfig, Transport};
use srm_transport::{
    harvest_timeline, ChaosPlan, ChaosState, ChaosTransport, DelayQueue, Harness, SoakOptions,
    TimerWheel,
};
use std::time::{Duration, Instant};

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Poll `cond` every 20ms until it returns true or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

// ---------------------------------------------------------------------------
// 1. Seeded chaos determinism
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two [`ChaosState`]s with the same seed and plan produce the
    /// identical verdict stream, and every verdict respects the plan's
    /// probability edges (p=0 never triggers, p=1 always does, hold-backs
    /// stay inside `[delay, delay + jitter]`).
    #[test]
    fn chaos_verdicts_replay_from_seed(
        seed in 0u64..1_000_000,
        loss in 0u32..=100,
        dup in 0u32..=100,
        corrupt in 0u32..=100,
        reorder in 0u32..=100,
        delay_ms in 1u64..200,
        jitter_ms in 0u64..100,
        frames in 1usize..200,
    ) {
        let plan = ChaosPlan::new()
            .loss(f64::from(loss) / 100.0)
            .duplication(f64::from(dup) / 100.0)
            .corruption(f64::from(corrupt) / 100.0)
            .reorder(f64::from(reorder) / 100.0, SimDuration::from_millis(delay_ms))
            .jitter(SimDuration::from_millis(jitter_ms));
        let mut a = ChaosState::new(plan.clone(), seed);
        let mut b = ChaosState::new(plan.clone(), seed);
        for i in 0..frames {
            let now = t(i as u64 * 13);
            let va = a.verdict(now);
            prop_assert_eq!(va, b.verdict(now), "frame {} diverged", i);
            if loss == 100 {
                prop_assert!(!va.deliver);
            }
            if loss == 0 {
                prop_assert!(va.deliver);
            }
            if dup == 0 {
                prop_assert!(!va.duplicate);
            }
            if reorder == 0 {
                prop_assert!(va.delay.is_none());
            }
            if let Some(d) = va.delay {
                prop_assert!(d >= plan.reorder_delay);
                prop_assert!(d <= plan.reorder_delay + plan.jitter);
            }
        }
    }
}

/// A driver stand-in that records what actually reaches the wire.
struct MockDriver {
    now: SimTime,
    rng: StdRng,
    sent: Vec<(GroupId, Bytes, u32)>,
    next_timer: u64,
}

impl MockDriver {
    fn new() -> Self {
        MockDriver { now: SimTime::ZERO, rng: StdRng::seed_from_u64(0), sent: Vec::new(), next_timer: 0 }
    }
}

impl Clock for MockDriver {
    fn now(&self) -> SimTime {
        self.now
    }

    fn local_now(&self) -> SimTime {
        self.now
    }
}

impl Transport for MockDriver {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.sent.push((group, payload, opts.flow));
    }

    fn join(&mut self, _group: GroupId) {}

    fn set_timer(&mut self, _delay: SimDuration, _token: u64) -> TimerId {
        self.next_timer += 1;
        TimerId(self.next_timer)
    }

    fn cancel_timer(&mut self, _id: TimerId) {}

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Push `frames` payloads through a freshly seeded [`ChaosTransport`] and
/// return everything observable: immediate sends, queued (held-back)
/// frames, and the action tally.
fn run_decorator(
    plan: &ChaosPlan,
    seed: u64,
    frames: usize,
) -> (Vec<(GroupId, Bytes, u32)>, Vec<(SimTime, Bytes)>, srm_transport::ChaosTally) {
    let mut inner = MockDriver::new();
    let mut state = ChaosState::new(plan.clone(), seed);
    let mut delayq = DelayQueue::new();
    let mut tally = srm_transport::ChaosTally::default();
    let mut log = obs::TransportLog::default();
    let mut chaos = ChaosTransport {
        inner: &mut inner,
        state: &mut state,
        delayq: &mut delayq,
        tally: &mut tally,
        log: &mut log,
    };
    for i in 0..frames {
        chaos.inner.now = t(i as u64 * 17);
        let payload = Bytes::from(format!("frame {i} with room for a body tag"));
        chaos.multicast(GroupId(1), payload, SendOptions::default());
    }
    let mut held = Vec::new();
    while let Some(d) = delayq.pop_due(t(100_000_000)) {
        held.push((d.due, d.payload));
    }
    (inner.sent, held, tally)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decorator-level determinism: same seed + plan + frame sequence ⇒
    /// byte-identical wire output, hold-back schedule, and tally — the
    /// whole observable effect, not just the verdict bits.
    #[test]
    fn chaos_transport_output_replays_from_seed(
        seed in 0u64..1_000_000,
        loss in 0u32..=60,
        dup in 0u32..=40,
        corrupt in 0u32..=40,
        reorder in 0u32..=60,
        frames in 1usize..120,
    ) {
        let plan = ChaosPlan::new()
            .loss(f64::from(loss) / 100.0)
            .duplication(f64::from(dup) / 100.0)
            .corruption(f64::from(corrupt) / 100.0)
            .reorder(f64::from(reorder) / 100.0, SimDuration::from_millis(25))
            .jitter(SimDuration::from_millis(10));
        let (sent_a, held_a, tally_a) = run_decorator(&plan, seed, frames);
        let (sent_b, held_b, tally_b) = run_decorator(&plan, seed, frames);
        prop_assert_eq!(&sent_a, &sent_b);
        prop_assert_eq!(&held_a, &held_b);
        prop_assert_eq!(tally_a, tally_b);
        // Conservation: every frame is dropped, sent now, or held back —
        // duplicates add one copy to whichever path their original took.
        let total = sent_a.len() + held_a.len() + tally_a.dropped as usize;
        prop_assert_eq!(total, frames + tally_a.duplicated as usize);
    }
}

// ---------------------------------------------------------------------------
// 2. Timer wheel under churn
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ModelTimer {
    id: TimerId,
    at: u64,
    token: u64,
    fired: bool,
    cancelled: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary arm/cancel/advance interleavings against a brute-force
    /// model: expired timers fire in (deadline, arm-order), cancelled ones
    /// never fire, cancel-after-fire is harmless, and the tombstone set
    /// obeys the compaction bound after every cancel.
    #[test]
    fn wheel_churn_matches_model_and_stays_bounded(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = TimerWheel::new();
        let mut model: Vec<ModelTimer> = Vec::new();
        let mut now = 0u64;
        let mut next_token = 0u64;
        for _ in 0..steps {
            for _ in 0..rng.random_range(0..8u32) {
                let at = now + rng.random_range(0..100u64);
                let id = w.arm(t(at), next_token);
                model.push(ModelTimer { id, at, token: next_token, fired: false, cancelled: false });
                next_token += 1;
            }
            for _ in 0..rng.random_range(0..8u32) {
                if model.is_empty() {
                    break;
                }
                let i = rng.random_range(0..model.len());
                if !model[i].cancelled {
                    w.cancel(model[i].id);
                    model[i].cancelled = true;
                    // The compaction contract: tombstones either stay under
                    // the small-wheel floor or under half the heap.
                    prop_assert!(
                        w.pending_cancels() <= 64 || w.pending_cancels() <= w.len() / 2,
                        "tombstones {} vs heap {}",
                        w.pending_cancels(),
                        w.len()
                    );
                }
            }
            now += rng.random_range(0..50u64);
            let mut expected: Vec<(u64, u64)> = model
                .iter()
                .filter(|m| !m.fired && !m.cancelled && m.at <= now)
                .map(|m| (m.at, m.token))
                .collect();
            expected.sort_unstable();
            let mut got = Vec::new();
            while let Some(token) = w.pop_expired(t(now)) {
                got.push(token);
            }
            let expected: Vec<u64> = expected.into_iter().map(|(_, tok)| tok).collect();
            prop_assert_eq!(got, expected);
            for m in model.iter_mut() {
                if !m.cancelled && m.at <= now {
                    m.fired = true;
                }
            }
        }
        // Drain the far future: only un-cancelled, un-fired timers remain.
        let live = model.iter().filter(|m| !m.fired && !m.cancelled).count();
        let mut rest = 0;
        while w.pop_expired(t(100_000_000)).is_some() {
            rest += 1;
        }
        prop_assert_eq!(rest, live);
        prop_assert!(w.is_empty());
    }
}

// ---------------------------------------------------------------------------
// 3. Blackhole-and-heal over live loopback UDP
// ---------------------------------------------------------------------------

/// One member of a three-node mesh goes silent behind a scripted
/// all-destination blackhole, publishes an ADU into the void, and heals:
///
/// - peers must notice the silence (liveness `peer_dead` on the timeline)
///   and the revival after heal (`peer_alive`),
/// - the ADU sent during the window must be recovered at every peer after
///   heal (the soak's eventual-delivery invariant, in miniature),
/// - the blackholed frames must be *accounted* — swallowed by the window,
///   not silently lost ([`srm_transport::TransportStats::frames_accounted`]).
///
/// The window `[1s, 5s)` is sized so the dead threshold (1.6 nominal
/// intervals = 1.6s of silence) is crossed with ≥ 2.4s to spare — longer
/// than the maximum session-sweep gap (1.5s) — so a sweep is guaranteed to
/// sample the dead state regardless of jitter draws.
#[test]
fn blackhole_heal_recovers_data_and_tracks_liveness() {
    let cfg = SrmConfig::fixed(3);
    let liveness = srm::LivenessConfig { suspect_after: 0.8, dead_after: 1.6 };
    let started = Instant::now();
    let h = Harness::loopback(3, GroupId(9), &cfg, |i, _addrs, opts| {
        opts.trace = true;
        opts.liveness = Some(liveness);
        if i == 0 {
            opts.chaos = Some(ChaosPlan::new().blackhole_all(t(1_000), t(5_000)));
        }
    })
    .unwrap();

    // Before the window: an ADU that flows normally, making sure every
    // peer has heard member 1 (liveness tracks only peers seen at least
    // once).
    let page = PageId::new(SourceId(1), 0);
    let before = h.nodes[0].send_data(page, Bytes::from_static(b"before the partition"));
    let mut got1 = Vec::new();
    let mut got2 = Vec::new();
    assert!(
        wait_for(10, || {
            got1.extend(h.nodes[1].take_delivered());
            got2.extend(h.nodes[2].take_delivered());
            got1.iter().any(|d| d.name == before) && got2.iter().any(|d| d.name == before)
        }),
        "pre-window ADU did not arrive"
    );

    // Into the window: wait until member 1's clock is inside [1s, 5s),
    // then publish. Every frame of this ADU is swallowed.
    while started.elapsed() < Duration::from_millis(1_600) {
        std::thread::sleep(Duration::from_millis(20));
    }
    let during = h.nodes[0].send_data(page, Bytes::from_static(b"sent into the void"));

    // After heal: session messages resume, peers spot the gap, and SRM
    // recovery delivers the void ADU everywhere.
    assert!(
        wait_for(40, || {
            got1.extend(h.nodes[1].take_delivered());
            got2.extend(h.nodes[2].take_delivered());
            got1.iter().any(|d| d.name == during) && got2.iter().any(|d| d.name == during)
        }),
        "blackholed ADU was not recovered after heal"
    );

    let stats: Vec<_> = h.nodes.iter().map(|n| n.stats()).collect();
    assert!(
        stats[0].blackholed >= 2,
        "the void ADU's fan-out (2 destinations) must be counted: {:?}",
        stats[0]
    );
    for (i, s) in stats.iter().enumerate() {
        assert!(s.frames_accounted(), "member {} leaks frames: {:?}", i + 1, s);
        assert_eq!(s.recv_deaths, 0, "member {} recv thread died", i + 1);
    }

    let mut agents = h.shutdown();
    let jsonl = harvest_timeline(&mut agents).to_jsonl();
    assert!(jsonl.contains("\"ev\":\"blackholed\""), "blackhole events missing from timeline");
    assert!(jsonl.contains("\"ev\":\"peer_dead\""), "peers never declared member 1 dead");
    assert!(jsonl.contains("\"ev\":\"peer_alive\""), "member 1 never revived after heal");
}

/// Library-level soak smoke: a short bounded run under the default mixed
/// chaos spec must satisfy every soak invariant (eventual delivery, no
/// reactor deaths, bounded growth, full frame accounting). The CLI gate in
/// scripts/ci.sh runs the same check through `srm-node soak`.
#[test]
fn bounded_soak_run_passes_all_invariants() {
    let opts = SoakOptions {
        nodes: 3,
        duration: Duration::from_secs(2),
        adus_per_node: 2,
        chaos: "loss=0.08,dup=0.05,reorder=0.1:20ms,jitter=10ms,burst=0.85@500ms+1s".into(),
        seed: 11,
        settle: Duration::from_secs(25),
        trace: false,
        ..SoakOptions::default()
    };
    let report = srm_transport::soak::run(&opts).expect("soak harness failed to start");
    assert_eq!(
        report.violations(),
        Vec::<String>::new(),
        "soak violated invariants:\n{}",
        report.render()
    );
    assert_eq!(report.adus_sent, 6);
}

//! End-to-end SRM recovery over live loopback UDP sockets.
//!
//! These are the wall-clock counterparts of the simulator reliability
//! tests: real datagrams, real monotonic-clock timers, the same agent. A
//! [`LossPolicy`] interposed on the sender's socket forces the loss; the
//! tests then wait (bounded) for the receiver-driven request/repair
//! exchange to restore the data, and inspect the obs timeline for the
//! recovery chain the paper describes.
//!
//! Determinism note: timer *draws* are seeded per node, but thread
//! scheduling is real. The tests therefore assert outcomes (recovery, who
//! repaired) made robust by construction — seeded distance estimates put
//! competing request/repair timers in disjoint ranges — rather than exact
//! event interleavings.

use bytes::Bytes;
use netsim::{flow, GroupId, SimDuration};
use srm::{PageId, SourceId, SrmConfig};
use srm_transport::{harvest_timeline, Harness, LossPolicy};
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(7);

/// Poll `cond` every 20ms until it returns true or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Seed every pairwise distance estimate to `d` so request/repair timers
/// are short and the test's wall-clock bound is tight.
fn seed_uniform_distances(n: usize, opts: &mut srm_transport::NodeOptions, d: SimDuration) {
    for peer in 1..=n as u64 {
        if SourceId(peer) != opts.id {
            opts.initial_distances.push((SourceId(peer), d));
        }
    }
}

/// Two members; the source's first DATA frame is eaten by the lossy socket
/// wrapper. The receiver spots the gap when the next ADU arrives, requests
/// the missing one, and the source repairs it — all over real UDP within a
/// bounded wall-clock wait.
#[test]
fn two_node_loopback_drop_is_recovered() {
    let cfg = SrmConfig::fixed(2);
    let h = Harness::loopback(2, GROUP, &cfg, |i, _addrs, opts| {
        opts.trace = true;
        seed_uniform_distances(2, opts, SimDuration::from_millis(20));
        if i == 0 {
            // Drop the very first DATA frame the source puts on the wire.
            opts.loss = LossPolicy::none().drop_nth(flow::DATA, 0);
        }
    })
    .unwrap();

    let page = PageId::new(SourceId(1), 0);
    let lost = h.nodes[0].send_data(page, Bytes::from_static(b"lost on the wire"));
    let seen = h.nodes[0].send_data(page, Bytes::from_static(b"reveals the gap"));

    let mut got = Vec::new();
    let recovered = wait_for(30, || {
        got.extend(h.nodes[1].take_delivered());
        got.iter().any(|d| d.name == lost)
    });
    assert!(recovered, "dropped ADU was not repaired within 30s");
    assert!(got.iter().any(|d| d.name == seen));
    let repaired = got.iter().find(|d| d.name == lost).unwrap();
    assert!(repaired.via_repair, "lost ADU must arrive as a repair");
    assert_eq!(repaired.payload.as_ref(), b"lost on the wire");
    assert_eq!(h.nodes[0].frames_dropped(), 1);

    let mut agents = h.shutdown();
    assert_eq!(agents[1].metrics.requests_sent, 1);
    assert_eq!(agents[0].metrics.repairs_sent, 1);
    let tl = harvest_timeline(&mut agents);
    let jsonl = tl.to_jsonl();
    assert!(jsonl.contains("\"ev\":\"gap_detected\""));
    assert!(jsonl.contains("\"ev\":\"request_sent\""));
    assert!(jsonl.contains("\"ev\":\"recovered\""));
}

/// The acceptance demo: three members over real UDP, a loss forced on the
/// path to ONE member only, repaired by a NON-SOURCE member.
///
/// Member 1 is the source; its first DATA frame towards member 3 is
/// dropped, while member 2 receives it. Distances are seeded so member 2
/// is near member 3 (10ms) and the source is far (500ms): member 3's
/// request reaches both holders, and member 2's repair timer
/// (D1·d = ~10-20ms) beats the source's (~0.5-1s) by construction, so
/// member 2 answers — the paper's core claim that *any* member holding the
/// data can repair. The obs timeline must show the full chain.
#[test]
fn three_node_loss_repaired_by_non_source() {
    let cfg = SrmConfig::fixed(3);
    let far = SimDuration::from_millis(500);
    let near = SimDuration::from_millis(10);
    let h = Harness::loopback(3, GROUP, &cfg, |i, addrs, opts| {
        opts.trace = true;
        // Single clean recovery round with assumed-converged distances, as
        // the figure experiments run: live session messages would replace
        // the seeded estimates with real loopback distances (microseconds)
        // and collapse the timer separation this test is built on.
        opts.session_enabled = false;
        match i {
            // Source: far from everyone; drops its first DATA frame to
            // member 3 only.
            0 => {
                opts.initial_distances = vec![(SourceId(2), far), (SourceId(3), far)];
                opts.loss = LossPolicy::none().drop_nth_to(flow::DATA, addrs[2], 0);
            }
            // Member 2: near member 3, far from the source.
            1 => {
                opts.initial_distances = vec![(SourceId(1), far), (SourceId(3), near)];
            }
            // Member 3: near member 2, far from the source — its request
            // timer is scaled by the distance to the *source*, its repair
            // will come from whoever fires first.
            2 => {
                opts.initial_distances = vec![(SourceId(1), far), (SourceId(2), near)];
            }
            _ => unreachable!(),
        }
    })
    .unwrap();

    let page = PageId::new(SourceId(1), 0);
    let lost = h.nodes[0].send_data(page, Bytes::from_static(b"adu-0"));
    let follow = h.nodes[0].send_data(page, Bytes::from_static(b"adu-1"));

    // Member 2 gets both originals; member 3 must recover the dropped one.
    let mut got2 = Vec::new();
    assert!(wait_for(10, || {
        got2.extend(h.nodes[1].take_delivered());
        got2.len() >= 2
    }));
    let mut got3 = Vec::new();
    let recovered = wait_for(30, || {
        got3.extend(h.nodes[2].take_delivered());
        got3.iter().any(|d| d.name == lost)
    });
    assert!(recovered, "member 3 did not recover the dropped ADU in 30s");
    assert!(got3.iter().any(|d| d.name == follow));
    assert!(got3.iter().find(|d| d.name == lost).unwrap().via_repair);

    let mut agents = h.shutdown();
    // The repair came from member 2, not the source.
    assert_eq!(
        agents[1].metrics.repairs_sent, 1,
        "non-source member must send the repair"
    );
    assert_eq!(agents[0].metrics.repairs_sent, 0, "source must be suppressed");
    assert_eq!(agents[2].metrics.requests_sent, 1);

    // The trace shows the request/repair chain across members.
    let tl = harvest_timeline(&mut agents);
    let events = tl.events();
    let key = srm::observe::adu_key(lost);
    let req = events
        .iter()
        .find(|e| e.adu == key && e.kind.name() == "request_sent")
        .expect("request_sent in timeline");
    assert_eq!(req.member, 3);
    let rep = events
        .iter()
        .find(|e| e.adu == key && e.kind.name() == "repair_sent")
        .expect("repair_sent in timeline");
    assert_eq!(rep.member, 2);
    let rec = events
        .iter()
        .find(|e| e.member == 3 && e.adu == key && e.kind.name() == "recovered")
        .expect("recovered in timeline");
    assert!(rec.at >= req.at, "recovery follows the request");
    // And it exports as JSONL, as `srm-node --trace` writes it.
    let jsonl = tl.to_jsonl();
    assert!(jsonl.contains("\"ev\":\"repair_sent\""));
}

//! Whiteboard convergence under adversity: arbitrary drawing activity from
//! several members, with losses, must leave every member with an identical
//! board — the paper's consistency story (unique persistent names +
//! idempotent drawops + delete patching).

use netsim::generators::random_labeled_tree;
use netsim::loss::BernoulliLoss;
use netsim::{GroupId, NodeId, SimDuration, SimTime, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::{SourceId};
use wb::{wb159_config, Color, OpKind, Point, WbApp};

const GROUP: GroupId = GroupId(5);

/// A scripted member action.
#[derive(Clone, Debug)]
enum Action {
    Line { member: usize, x: i32, y: i32 },
    DeleteRecent { member: usize },
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, -100i32..100, -100i32..100)
                .prop_map(|(member, x, y)| Action::Line { member, x, y }),
            (0usize..4).prop_map(|member| Action::DeleteRecent { member }),
        ],
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn boards_converge_for_any_script(
        actions in arb_actions(),
        topo_seed in 0u64..10_000,
        loss_millis in 0u64..40, // loss probability in thousandths (0-4%)
    ) {
        let mut rng = StdRng::seed_from_u64(topo_seed);
        let topo = random_labeled_tree(16, &mut rng);
        let seats = [NodeId(1), NodeId(5), NodeId(9), NodeId(13)];
        let mut sim = Simulator::new(topo, topo_seed ^ 0x77);
        for (i, &seat) in seats.iter().enumerate() {
            let app = WbApp::new(SourceId(i as u64 + 1), GROUP, wb159_config());
            sim.install(seat, app);
            sim.join(seat, GROUP);
        }
        sim.set_loss_model(Box::new(BernoulliLoss::everywhere(
            loss_millis as f64 / 1000.0,
            topo_seed ^ 0x99,
        )));
        // Warm up the session.
        sim.run_until(SimTime::from_secs(60));
        // Member 0 creates the shared page; all view it.
        let page = sim.exec(seats[0], |app, _| app.create_page());
        for &seat in &seats {
            sim.exec(seat, |app, _| app.view_page(page));
        }
        // Execute the script with spacing.
        let mut drawn: Vec<srm::AduName> = Vec::new();
        for a in &actions {
            match *a {
                Action::Line { member, x, y } => {
                    let name = sim.exec(seats[member], |app, ctx| {
                        app.draw(ctx, page, OpKind::Line {
                            from: Point { x: 0, y: 0 },
                            to: Point { x, y },
                            color: Color::BLUE,
                        })
                    });
                    drawn.push(name);
                }
                Action::DeleteRecent { member } => {
                    if let Some(&target) = drawn.last() {
                        sim.exec(seats[member], |app, ctx| {
                            app.delete(ctx, target);
                        });
                    }
                }
            }
            sim.run_until(sim.now() + SimDuration::from_secs(3));
        }
        // Let recovery and session-message healing finish.
        sim.run_until(sim.now() + SimDuration::from_secs(4_000));
        let digests: Vec<u64> = seats
            .iter()
            .map(|&s| sim.app(s).unwrap().board.digest())
            .collect();
        prop_assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "boards diverged: {digests:?} (actions {actions:?})"
        );
        // No corrupt ops ever surfaced.
        for &s in &seats {
            prop_assert_eq!(sim.app(s).unwrap().corrupt_ops, 0);
        }
    }
}

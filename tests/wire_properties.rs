//! Property tests for the wire formats: every representable message and
//! drawop survives encode → decode unchanged, and corrupted inputs never
//! panic (they fail cleanly).

use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use proptest::prelude::*;
use srm::wire::{
    Body, DataBody, Echo, Header, Message, PageRequestBody, RecoveryInviteBody, RequestBody,
    SessionBody,
};
use srm::{AduName, PageId, Parity, SeqNo, SourceId};
use srm_transport::Envelope;
use wb::{Color, DrawOp, OpKind, Point};

fn arb_name() -> impl Strategy<Value = AduName> {
    (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(s, pc, pn, q)| {
        AduName::new(SourceId(s), PageId::new(SourceId(pc), pn), SeqNo(q))
    })
}

// Times survive the wire with ~nanosecond granularity; keep values in a
// sane range so f64 conversion is exact.
fn arb_time() -> impl Strategy<Value = SimTime> {
    (0u64..1_000_000_000).prop_map(|ms| SimTime::from_secs_f64(ms as f64 / 1000.0))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (any::<u64>(), arb_time()).prop_map(|(s, t)| Header {
        sender: SourceId(s),
        timestamp: t,
    })
}

fn arb_body() -> impl Strategy<Value = Body> {
    prop_oneof![
        (
            arb_name(),
            any::<bool>(),
            prop::option::of(any::<u64>()),
            0.0f64..1e6,
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(name, is_repair, ans, d, payload)| {
                Body::Data(DataBody {
                    name,
                    is_repair,
                    answering: ans.map(SourceId),
                    dist_to_requestor: d,
                    payload: Bytes::from(payload),
                })
            }),
        (arb_name(), 0.0f64..1e6).prop_map(|(name, d)| Body::Request(RequestBody {
            name,
            dist_to_source: d,
        })),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..20),
            prop::collection::vec((any::<u64>(), 0u64..1_000_000, 0u64..1_000_000), 0..10),
            0.0f32..1.0,
            prop::collection::vec(arb_name(), 0..8),
        )
            .prop_map(|(pc, pn, state, echoes, lr, fp)| {
                Body::Session(SessionBody {
                    page: PageId::new(SourceId(pc), pn),
                    state: state
                        .into_iter()
                        .map(|(s, q)| (SourceId(s), SeqNo(q)))
                        .collect(),
                    echoes: echoes
                        .into_iter()
                        .map(|(p, t, d)| Echo {
                            peer: SourceId(p),
                            their_ts: SimTime::from_secs_f64(t as f64 / 1000.0),
                            delay: SimDuration::from_secs_f64(d as f64 / 1000.0),
                        })
                        .collect(),
                    loss_rate: lr,
                    loss_fingerprint: fp,
                })
            }),
        (any::<u64>(), any::<u32>()).prop_map(|(pc, pn)| Body::PageRequest(PageRequestBody {
            page: PageId::new(SourceId(pc), pn),
        })),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..200),
        )
            .prop_map(|(s, pc, pn, bs, k, xor)| {
                Body::Parity(Parity {
                    source: SourceId(s),
                    page: PageId::new(SourceId(pc), pn),
                    block_start: SeqNo(bs),
                    k,
                    xor_len: xor.len() as u32,
                    xor_payload: Bytes::from(xor),
                })
            }),
        any::<u32>().prop_map(|g| Body::RecoveryInvite(RecoveryInviteBody { group: g })),
        Just(Body::PageCatalogRequest),
        prop::collection::vec((any::<u64>(), any::<u32>()), 0..20).prop_map(|pages| {
            Body::PageCatalog(
                pages
                    .into_iter()
                    .map(|(pc, pn)| PageId::new(SourceId(pc), pn))
                    .collect(),
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip(h in arb_header(), b in arb_body()) {
        let m = Message { header: h, body: b };
        let enc = m.encode();
        let dec = Message::decode(enc).expect("roundtrip decode");
        prop_assert_eq!(dec, m);
    }

    #[test]
    fn decode_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Message::decode(Bytes::from(data)); // may Err, must not panic
    }

    #[test]
    fn decode_never_panics_on_truncation(h in arb_header(), b in arb_body(), cut in 0usize..600) {
        let m = Message { header: h, body: b };
        let enc = m.encode();
        let cut = cut.min(enc.len());
        let _ = Message::decode(enc.slice(0..cut));
    }

    // Real sockets feed the decoder bytes a router or a buggy peer may
    // have mangled: any single bit flip must decode cleanly (Ok or Err),
    // never panic, and never allocate absurdly (the MAX_LIST guard).
    #[test]
    fn decode_never_panics_on_bitflip(
        h in arb_header(),
        b in arb_body(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let m = Message { header: h, body: b };
        let mut bad = m.encode().to_vec();
        let i = pos.index(bad.len());
        bad[i] ^= 1 << bit;
        let _ = Message::decode(Bytes::from(bad));
    }
}

// The transport envelope wraps every message on a real socket; it gets the
// same treatment as the message format it carries.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn envelope_roundtrip(
        src in any::<u32>(),
        group in any::<u32>(),
        ttl in any::<u8>(),
        initial_ttl in any::<u8>(),
        admin in any::<bool>(),
        flow in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let e = Envelope {
            src,
            group,
            ttl,
            initial_ttl,
            admin_scoped: admin,
            flow,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(Envelope::decode(&e.encode()).expect("roundtrip"), e);
    }

    #[test]
    fn envelope_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Envelope::decode(&data);
    }
}

fn arb_point() -> impl Strategy<Value = Point> {
    (any::<i32>(), any::<i32>()).prop_map(|(x, y)| Point { x, y })
}

fn arb_color() -> impl Strategy<Value = Color> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Color { r, g, b })
}

fn arb_op() -> impl Strategy<Value = DrawOp> {
    let kind = prop_oneof![
        (arb_point(), arb_point(), arb_color())
            .prop_map(|(from, to, color)| OpKind::Line { from, to, color }),
        (arb_point(), any::<u32>(), arb_color())
            .prop_map(|(center, radius, color)| OpKind::Circle { center, radius, color }),
        (arb_point(), "[a-zA-Z0-9 ]{0,50}", arb_color())
            .prop_map(|(at, text, color)| OpKind::Text { at, text, color }),
        arb_name().prop_map(|target| OpKind::Delete { target }),
        (arb_point(), arb_point(), arb_color())
            .prop_map(|(a, b, color)| OpKind::Rect { a, b, color }),
        (prop::collection::vec(arb_point(), 0..30), arb_color())
            .prop_map(|(points, color)| OpKind::Polyline { points, color }),
    ];
    (arb_time(), kind).prop_map(|(timestamp, kind)| DrawOp { timestamp, kind })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn drawop_roundtrip(op in arb_op()) {
        let enc = op.encode();
        let dec = DrawOp::decode(enc).expect("roundtrip");
        prop_assert_eq!(dec, op);
    }

    #[test]
    fn drawop_single_bitflip_detected(op in arb_op(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let enc = op.encode();
        let i = pos.index(enc.len());
        let mut bad = enc.to_vec();
        bad[i] ^= 1 << bit;
        // Either the checksum catches it or a structural check does — but
        // it must never decode into a *different* op silently... with a
        // 64-bit FNV tag, silent acceptance of a flipped bit would be a
        // checksum bug for these sizes.
        match DrawOp::decode(Bytes::from(bad)) {
            Ok(got) => prop_assert_eq!(got, op.clone()),
            Err(_) => {}
        }
    }

    #[test]
    fn drawop_garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = DrawOp::decode(Bytes::from(data));
    }
}
